#!/usr/bin/env sh
# Repository CI gate: formatting, lints, full test suite.
#
# Usage: ./ci.sh
# Runs entirely offline against the vendored dependency stubs (see
# vendor/README.md); no network or registry access is required.

set -eu

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy (telemetry crate, standalone)"
cargo clippy -p ragnar-telemetry --all-targets --offline -- -D warnings

echo "== cargo clippy (topology crate, standalone)"
cargo clippy -p ragnar-topology --all-targets --offline -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --workspace --offline

echo "== cargo bench --no-run (benches stay compilable)"
cargo bench --no-run --workspace --offline

echo "== chaos smoke: seeded fault plans through fig4_contention"
for chaos_seed in 1 2 3; do
    cargo run --release --offline -p ragnar-bench --bin fig4_contention -- \
        --quick --no-cache --chaos-seed "$chaos_seed" > /dev/null
done

echo "== trace smoke: fig4_contention --trace emits valid JSON, digest unchanged"
trace_out=$(cargo run --release --offline -p ragnar-bench --bin fig4_contention -- \
    --quick --no-cache --trace /tmp/ragnar-ci-trace.json)
baseline_out=$(cargo run --release --offline -p ragnar-bench --bin fig4_contention -- \
    --quick --no-cache)
# The trace file must exist, be non-trivial, and read as a Chrome
# trace_event document.
test -s /tmp/ragnar-ci-trace.json
grep -q '"traceEvents":\[' /tmp/ragnar-ci-trace.json
grep -q '"ph":"X"' /tmp/ragnar-ci-trace.json
# Tracing must not move the artifact digest on the manifest line.
trace_digest=$(printf '%s\n' "$trace_out" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
baseline_digest=$(printf '%s\n' "$baseline_out" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
test -n "$trace_digest"
test "$trace_digest" = "$baseline_digest"
rm -f /tmp/ragnar-ci-trace.json

echo "== cluster smoke: noisy_neighbor digest is thread-count invariant"
nn_t1=$(cargo run --release --offline -p ragnar-bench --bin noisy_neighbor -- \
    --quick --no-cache --threads 1)
nn_t4=$(cargo run --release --offline -p ragnar-bench --bin noisy_neighbor -- \
    --quick --no-cache --threads 4)
nn_t1_digest=$(printf '%s\n' "$nn_t1" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
nn_t4_digest=$(printf '%s\n' "$nn_t4" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
test -n "$nn_t1_digest"
test "$nn_t1_digest" = "$nn_t4_digest"

echo "== cargo clippy (pdes crate, standalone)"
cargo clippy -p pdes --all-targets --offline -- -D warnings

echo "== cargo clippy (packet-path crates, standalone)"
cargo clippy -p sim-core --all-targets --offline -- -D warnings
cargo clippy -p rnic-model --all-targets --offline -- -D warnings
cargo clippy -p rdma-verbs --all-targets --offline -- -D warnings

echo "== packet arena: zero allocations per hop, copy only on chaos duplication"
cargo test --release -q --offline -p rdma-verbs --test packet_arena

echo "== nic_storm smoke: arena ledger clean, digest backend-invariant"
storm_cal=$(cargo run --release --offline -p ragnar-bench --example storm -- 3 calendar)
storm_ref=$(cargo run --release --offline -p ragnar-bench --example storm -- 3 reference)
storm_cal_digest=$(printf '%s\n' "$storm_cal" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
storm_ref_digest=$(printf '%s\n' "$storm_ref" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
test -n "$storm_cal_digest"
test "$storm_cal_digest" = "$storm_ref_digest"

echo "== cargo clippy (chaos crate, standalone)"
cargo clippy -p ragnar-chaos --all-targets --offline -- -D warnings

echo "== PDES determinism smoke: noisy_neighbor digest is worker-count invariant"
nn_w1=$(cargo run --release --offline -p ragnar-bench --bin noisy_neighbor -- \
    --quick --no-cache --workers 1)
nn_w8=$(cargo run --release --offline -p ragnar-bench --bin noisy_neighbor -- \
    --quick --no-cache --workers 8)
nn_w1_digest=$(printf '%s\n' "$nn_w1" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
nn_w8_digest=$(printf '%s\n' "$nn_w8" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
test -n "$nn_w1_digest"
test "$nn_w1_digest" = "$nn_w8_digest"
# The sequential oracle (workers 1) and the thread-invariance run above
# must also agree with each other.
test "$nn_w1_digest" = "$nn_t1_digest"

echo "== supervisor smoke: induced worker crashes heal without moving the digest"
# A seeded exec-fault plan panics/stalls PDES workers mid-window; the
# supervised pool quarantines them and replays the poisoned windows, so
# the digest must stay pinned to the unfaulted sequential oracle.
nn_chaos=$(cargo run --release --offline -p ragnar-bench --bin noisy_neighbor -- \
    --quick --no-cache --workers 8 --exec-chaos-seed 61)
nn_chaos_digest=$(printf '%s\n' "$nn_chaos" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
test -n "$nn_chaos_digest"
test "$nn_chaos_digest" = "$nn_w1_digest"

echo "== monitor smoke: a clean run under online invariant monitors is digest-pinned"
nn_mon=$(cargo run --release --offline -p ragnar-bench --bin noisy_neighbor -- \
    --quick --no-cache --monitors abort-run)
nn_mon_digest=$(printf '%s\n' "$nn_mon" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
test -n "$nn_mon_digest"
test "$nn_mon_digest" = "$nn_t1_digest"

echo "== profile smoke: --profile leaves the digest pinned"
prof_out=$(cargo run --release --offline -p ragnar-bench --bin fig4_contention -- \
    --quick --no-cache --profile)
prof_digest=$(printf '%s\n' "$prof_out" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
test -n "$prof_digest"
test "$prof_digest" = "$baseline_digest"
# The profiler actually collected something.
printf '%s\n' "$prof_out" | grep -q '^profile: '

echo "== run-report smoke: report.json / report.md carry the documented shape"
cargo run --release --offline -p ragnar-bench --bin fig4_contention -- \
    --quick --force --metrics --profile > /dev/null
test -s results/fig4_contention/report.json
test -s results/fig4_contention/report.md
for key in '"cells":' '"counters":' '"histograms":' '"slo":' '"timing":' '"profile":'; do
    grep -q "$key" results/fig4_contention/report.json
done
grep -q 'Engine phase profile' results/fig4_contention/report.md
grep -q 'Merged latency histograms' results/fig4_contention/report.md

echo "== bench-diff gate: identical reports pass, injected regression trips non-zero"
cp results/fig4_contention/report.json /tmp/ragnar-ci-baseline.json
cargo run --release --offline -p ragnar-bench --bin bench_diff -- \
    /tmp/ragnar-ci-baseline.json results/fig4_contention/report.json > /dev/null
# Perturb one deterministic counter; the 0%-threshold diff must fail.
sed 's/"retries":[0-9]*/"retries":7/' /tmp/ragnar-ci-baseline.json \
    > /tmp/ragnar-ci-regressed.json
if cargo run --release --offline -p ragnar-bench --bin bench_diff -- \
    /tmp/ragnar-ci-baseline.json /tmp/ragnar-ci-regressed.json > /dev/null; then
    echo "bench-diff failed to flag an injected regression"
    exit 1
fi
rm -f /tmp/ragnar-ci-baseline.json /tmp/ragnar-ci-regressed.json

echo "== cargo clippy (harness crate, standalone)"
cargo clippy -p ragnar-harness --all-targets --offline -- -D warnings

echo "CI OK"
