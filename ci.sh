#!/usr/bin/env sh
# Repository CI gate: formatting, lints, full test suite.
#
# Usage: ./ci.sh
# Runs entirely offline against the vendored dependency stubs (see
# vendor/README.md); no network or registry access is required.

set -eu

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --workspace --offline

echo "== cargo bench --no-run (benches stay compilable)"
cargo bench --no-run --workspace --offline

echo "== chaos smoke: seeded fault plans through fig4_contention"
for chaos_seed in 1 2 3; do
    cargo run --release --offline -p ragnar-bench --bin fig4_contention -- \
        --quick --no-cache --chaos-seed "$chaos_seed" > /dev/null
done

echo "CI OK"
