//! Chaos property suite: randomized seeded fault plans against the
//! transport invariant oracles.
//!
//! Every plan is pure data generated from a seed, so each failure here
//! reproduces with nothing but the seed printed in the assertion. The
//! oracles (ISSUE 4):
//!
//! 1. **Exactly-once completion** — every posted WR produces one CQE
//!    (`Success`, `RemoteError`, `RetryExceeded` or `Flushed`), never
//!    zero, never two ([`WrLedger`]).
//! 2. **Placement** — a write whose CQE says `Success` left exactly its
//!    payload in remote memory; a `Success` atomic executed exactly once.
//! 3. **Time monotonicity** — sim time never runs backwards and no CQE
//!    completes before it was posted or after "now".
//! 4. **Fabric conservation** — at quiescence
//!    `sent + duplicates == delivered + dropped + icrc_dropped`
//!    ([`FabricStats::conserved`]): faults may destroy packets, but only
//!    through the accounted channels.

use ragnar::chaos::{FaultPlan, PlanParams, WrLedger};
use ragnar::sim::SimTime;
use ragnar::verbs::{
    AccessFlags, ConnectOptions, CqeStatus, DeviceProfile, FaultEvent, FaultKind, LinkSelector,
    MrHandle, QpHandle, RecvWqe, Simulation, VerbsError, WorkRequest,
};

/// Ops posted per client: 4 writes, 4 reads, 3 atomics, 3 sends.
const WRITES: u64 = 4;
const READS: u64 = 4;
const ATOMICS: u64 = 3;
const SENDS: u64 = 3;
const OPS_PER_CLIENT: u64 = WRITES + READS + ATOMICS + SENDS;
const PAYLOAD_LEN: u64 = 64;

struct Fleet {
    sim: Simulation,
    server_mr: MrHandle,
    /// Client-side QP handles (requesters).
    qps: Vec<QpHandle>,
    /// Server-side handles of the same connections (for recv posting).
    server_qps: Vec<QpHandle>,
}

/// Three hosts (one server, two clients), one connection per client.
fn fleet(seed: u64) -> Fleet {
    let mut sim = Simulation::new(seed);
    let server = sim.add_host(DeviceProfile::connectx5());
    let clients = [
        sim.add_host(DeviceProfile::connectx5()),
        sim.add_host(DeviceProfile::connectx5()),
    ];
    let pd_s = sim.alloc_pd(server);
    let server_mr = sim.register_mr(server, pd_s, 1 << 21, AccessFlags::remote_all());
    let mut qps = Vec::new();
    let mut server_qps = Vec::new();
    for c in clients {
        let pd_c = sim.alloc_pd(c);
        let (qp, sqp) = sim.connect(
            c,
            pd_c,
            server,
            pd_s,
            ConnectOptions {
                max_send_queue: 64,
                ..ConnectOptions::default()
            },
        );
        qps.push(qp);
        server_qps.push(sqp);
    }
    Fleet {
        sim,
        server_mr,
        qps,
        server_qps,
    }
}

/// Deterministic payload for one write WR.
fn payload(wr_id: u64) -> Vec<u8> {
    (0..PAYLOAD_LEN)
        .map(|i| (wr_id.wrapping_mul(37).wrapping_add(i) % 251) as u8)
        .collect()
}

/// Server-MR offset a write WR targets (distinct per WR, clear of the
/// atomic counter at offset 0).
fn write_offset(wr_id: u64) -> u64 {
    4096 + wr_id * 128
}

/// Posts the mixed workload; returns the ledger of posted wr_ids.
fn post_workload(fl: &mut Fleet) -> WrLedger {
    let mr = fl.server_mr;
    let mut ledger = WrLedger::new();
    for (ci, &qp) in fl.qps.clone().iter().enumerate() {
        let base = ci as u64 * 1000;
        let mut id = base;
        for _ in 0..WRITES {
            let data = payload(id);
            fl.sim.write_memory(qp.host, 0x10_0000 + id * 256, &data);
            fl.sim
                .post_send(
                    qp,
                    WorkRequest::write(
                        id,
                        0x10_0000 + id * 256,
                        mr.addr(write_offset(id)),
                        mr.key,
                        PAYLOAD_LEN,
                    ),
                )
                .expect("post write");
            ledger.posted(id);
            id += 1;
        }
        for _ in 0..READS {
            fl.sim
                .post_send(
                    qp,
                    WorkRequest::read(id, 0x20_0000 + id * 256, mr.addr(0x8000), mr.key, 256),
                )
                .expect("post read");
            ledger.posted(id);
            id += 1;
        }
        for _ in 0..ATOMICS {
            fl.sim
                .post_send(
                    qp,
                    WorkRequest::fetch_add(id, 0x30_0000, mr.addr(0), mr.key, 1),
                )
                .expect("post atomic");
            ledger.posted(id);
            id += 1;
        }
        for s in 0..SENDS {
            // Matching recv first, so sends can't exhaust the RNR budget.
            fl.sim
                .post_recv(
                    fl.server_qps[ci],
                    RecvWqe {
                        wr_id: 90_000 + base + s,
                        local_addr: 0x60_0000 + (base + s) * 256,
                        len: 256,
                    },
                )
                .expect("post recv");
            fl.sim
                .write_memory(qp.host, 0x40_0000 + id * 256, &payload(id));
            fl.sim
                .post_send(qp, WorkRequest::send(id, 0x40_0000 + id * 256, PAYLOAD_LEN))
                .expect("post send");
            ledger.posted(id);
            id += 1;
        }
        assert_eq!(id - base, OPS_PER_CLIENT);
    }
    ledger
}

/// Runs one seeded plan through the oracles. Returns (trace digest,
/// completion statuses in drain order) for the determinism test.
fn chaos_round(plan_seed: u64, intensity: f64) -> (u64, Vec<(u64, CqeStatus)>) {
    let plan = FaultPlan::generate(
        plan_seed,
        &PlanParams {
            hosts: 3,
            intensity,
            ..PlanParams::default()
        },
    );
    let mut fl = fleet(plan_seed ^ 0x5EED);
    fl.sim
        .memory_mut(fl.server_mr.host)
        .write_u64(fl.server_mr.addr(0), 0);
    fl.sim.install_fault_plan(&plan);
    let mut ledger = post_workload(&mut fl);

    // Far past the 500 µs fault horizon plus full retry exhaustion.
    let mut trail = Vec::new();
    let mut last_now = SimTime::ZERO;
    let drain = |sim: &mut Simulation, ledger: &mut WrLedger, last_now: &mut SimTime| {
        assert!(
            sim.now() >= *last_now,
            "sim time ran backwards [plan {plan_seed}]"
        );
        *last_now = sim.now();
        let mut out = Vec::new();
        for (_, cqe) in sim.take_completions() {
            // Oracle 3: completions live inside [posted_at, now].
            assert!(
                cqe.posted_at <= cqe.completed_at && cqe.completed_at <= sim.now(),
                "CQE time out of range [plan {plan_seed}]: {cqe:?}"
            );
            if cqe.is_recv {
                continue; // recv-side bookkeeping is the responder's
            }
            ledger
                .completed(cqe.wr_id, cqe.status)
                .unwrap_or_else(|v| panic!("oracle violation [plan {plan_seed}]: {v}"));
            out.push(cqe);
        }
        out
    };
    for cqe in drain(&mut fl.sim, &mut ledger, &mut last_now) {
        trail.push((cqe.wr_id, cqe.status));
    }
    fl.sim.run_until(SimTime::from_millis(30));
    for cqe in drain(&mut fl.sim, &mut ledger, &mut last_now) {
        trail.push((cqe.wr_id, cqe.status));
    }

    // Recovery ladder: any QP the plan pushed into Error comes back and
    // serves a fresh read on the (now quiet) fabric.
    let mut recovered = Vec::new();
    for &qp in &fl.qps {
        if fl.sim.qp_in_error(qp) {
            fl.sim
                .recover_qp(qp)
                .unwrap_or_else(|e| panic!("recover_qp [plan {plan_seed}]: {e}"));
            let id = 80_000 + u64::from(qp.host.0);
            fl.sim
                .post_send(
                    qp,
                    WorkRequest::read(
                        id,
                        0x50_0000,
                        fl.server_mr.addr(0x8000),
                        fl.server_mr.key,
                        64,
                    ),
                )
                .expect("post after recovery");
            ledger.posted(id);
            recovered.push(qp);
        }
    }
    fl.sim.run_until(SimTime::from_millis(40));
    for cqe in drain(&mut fl.sim, &mut ledger, &mut last_now) {
        trail.push((cqe.wr_id, cqe.status));
    }
    for &qp in &recovered {
        assert!(
            !fl.sim.qp_in_error(qp),
            "QP stayed in error [plan {plan_seed}]"
        );
        let id = 80_000 + u64::from(qp.host.0);
        assert_eq!(
            ledger.status(id),
            Some(CqeStatus::Success),
            "post-recovery read failed [plan {plan_seed}]"
        );
    }

    // Oracle 1: every posted WR completed exactly once.
    ledger
        .check_complete()
        .unwrap_or_else(|v| panic!("oracle violation [plan {plan_seed}]: {v}"));

    // Oracle 2a: successful writes placed exactly their payload.
    for (wr_id, status) in ledger.completions() {
        if status == CqeStatus::Success && wr_id % 1000 < WRITES {
            assert_eq!(
                fl.sim.read_memory(
                    fl.server_mr.host,
                    fl.server_mr.addr(write_offset(wr_id)),
                    PAYLOAD_LEN
                ),
                payload(wr_id),
                "write {wr_id} misplaced data [plan {plan_seed}]"
            );
        }
    }
    // Oracle 2b: the atomic counter saw each Success fetch-add exactly
    // once; fatally-failed atomics may or may not have landed (their Ack
    // can be the lost packet), but never more than posted.
    let success_atomics = ledger
        .completions()
        .filter(|&(id, st)| {
            st == CqeStatus::Success
                && (WRITES + READS..WRITES + READS + ATOMICS).contains(&(id % 1000))
        })
        .count() as u64;
    let counter = fl
        .sim
        .nic(fl.server_mr.host)
        .memory()
        .read_u64(fl.server_mr.addr(0));
    let posted_atomics = ATOMICS * fl.qps.len() as u64;
    assert!(
        (success_atomics..=posted_atomics).contains(&counter),
        "atomic counter {counter} outside [{success_atomics}, {posted_atomics}] [plan {plan_seed}]"
    );

    // Oracle 4: the fabric books balance once the queue is quiet.
    let stats = fl.sim.fabric_stats();
    assert!(
        stats.conserved(),
        "fabric conservation violated [plan {plan_seed}]: {stats:?}"
    );
    assert!(stats.sent > 0, "workload never touched the wire");

    let digest = fl.sim.fault_trace_digest().expect("plan installed");
    (digest, trail)
}

#[test]
fn oracles_hold_across_sixty_randomized_plans() {
    // ≥50 randomized plans (ISSUE 4 acceptance), at three intensities.
    for seed in 0..60u64 {
        let intensity = [0.25, 0.5, 1.0][(seed % 3) as usize];
        chaos_round(seed, intensity);
    }
}

#[test]
fn identical_plans_reproduce_identical_fault_traces() {
    for seed in [3u64, 19, 44] {
        let (d1, t1) = chaos_round(seed, 1.0);
        let (d2, t2) = chaos_round(seed, 1.0);
        assert_eq!(d1, d2, "fault trace digest drifted for plan {seed}");
        assert_eq!(t1, t2, "completion trail drifted for plan {seed}");
    }
}

#[test]
fn clean_fabric_reports_no_fault_state() {
    let mut fl = fleet(7);
    let mut ledger = post_workload(&mut fl);
    fl.sim.run_until(SimTime::from_millis(10));
    for (_, cqe) in fl.sim.take_completions() {
        if !cqe.is_recv {
            ledger.completed(cqe.wr_id, cqe.status).expect("once");
            assert_eq!(cqe.status, CqeStatus::Success);
        }
    }
    ledger.check_complete().expect("all complete");
    assert_eq!(fl.sim.fault_trace_digest(), None);
    assert_eq!(fl.sim.fault_stats(), None);
    let stats = fl.sim.fabric_stats();
    assert!(stats.conserved() && stats.dropped == 0 && stats.icrc_dropped == 0);
}

#[test]
fn long_link_down_errors_qp_and_recovery_restores_service() {
    // A hand-written plan: the fabric dies outright for 10 ms — long
    // enough that every backed-off retransmission (the last at 6.3 ms)
    // falls inside the outage — so the requester QP must take a
    // RetryExceeded at 12.7 ms, land in Error, flush its queue, and come
    // back via recover_qp on the then-healthy fabric.
    let plan = FaultPlan {
        seed: 1,
        events: vec![FaultEvent {
            link: LinkSelector::Any,
            from: SimTime::ZERO,
            until: SimTime::from_millis(10),
            kind: FaultKind::LinkDown,
        }],
    };
    let mut fl = fleet(11);
    fl.sim.install_fault_plan(&plan);
    let qp = fl.qps[0];
    let mr = fl.server_mr;
    fl.sim
        .post_send(
            qp,
            WorkRequest::read(1, 0x1000, mr.addr(0x8000), mr.key, 64),
        )
        .expect("post");
    fl.sim
        .post_send(
            qp,
            WorkRequest::read(2, 0x2000, mr.addr(0x8000), mr.key, 64),
        )
        .expect("post");
    fl.sim.run_until(SimTime::from_millis(40));
    let mut done = fl.sim.take_completions();
    done.sort_by_key(|(_, c)| c.wr_id);
    assert_eq!(done.len(), 2);
    assert_eq!(done[0].1.status, CqeStatus::RetryExceeded);
    assert_eq!(done[1].1.status, CqeStatus::Flushed, "queued WR flushed");
    assert!(fl.sim.qp_in_error(qp));
    assert_eq!(
        fl.sim
            .post_send(
                qp,
                WorkRequest::read(3, 0x3000, mr.addr(0x8000), mr.key, 64)
            )
            .expect_err("error-state QP rejects"),
        VerbsError::QpInError
    );

    // Retry exhaustion already carried sim time past the outage window
    // (run_until never advances "now" beyond the last event, so a fresh
    // post happens at the exhaustion instant): recover and serve again.
    fl.sim.recover_qp(qp).expect("recover");
    fl.sim
        .post_send(
            qp,
            WorkRequest::read(3, 0x3000, mr.addr(0x8000), mr.key, 64),
        )
        .expect("post after recovery");
    fl.sim.run_until(SimTime::from_millis(55));
    let redone = fl.sim.take_completions();
    assert_eq!(redone.len(), 1);
    assert_eq!(redone[0].1.status, CqeStatus::Success);
    // The injector saw and dropped wire traffic during the outage.
    let stats = fl.sim.fault_stats().expect("plan installed");
    assert!(stats.dropped > 0, "link-down dropped packets: {stats:?}");
    assert!(fl.sim.fabric_stats().conserved());
}

#[test]
fn corruption_consumes_bandwidth_but_never_corrupts_data() {
    // ICRC semantics: corrupt packets burn wire bandwidth and are
    // discarded at the receiver; retransmission makes the data whole.
    let plan = FaultPlan {
        seed: 9,
        events: vec![FaultEvent {
            link: LinkSelector::Any,
            // Only the first transmissions fall in the window (the first
            // retransmit checks land at 100 µs); redriven copies travel
            // a clean wire, so no message can exhaust its retry budget.
            from: SimTime::ZERO,
            until: SimTime::from_micros(200),
            kind: FaultKind::Corrupt { prob: 0.5 },
        }],
    };
    let mut fl = fleet(13);
    fl.sim.install_fault_plan(&plan);
    let qp = fl.qps[0];
    let mr = fl.server_mr;
    let data: Vec<u8> = (0..9000u32).map(|i| (i % 249) as u8).collect();
    fl.sim.write_memory(qp.host, 0x10_0000, &data);
    let n = 10u64;
    for i in 0..n {
        fl.sim
            .post_send(
                qp,
                WorkRequest::write(
                    i,
                    0x10_0000,
                    mr.addr(0x1_0000 + i * 16384),
                    mr.key,
                    data.len() as u64,
                ),
            )
            .expect("post");
    }
    fl.sim.run_until(SimTime::from_secs(60));
    let done = fl.sim.take_completions();
    assert_eq!(done.len() as u64, n);
    for (_, cqe) in &done {
        assert_eq!(cqe.status, CqeStatus::Success, "wr {}", cqe.wr_id);
    }
    for i in 0..n {
        assert_eq!(
            fl.sim
                .read_memory(mr.host, mr.addr(0x1_0000 + i * 16384), data.len() as u64),
            data,
            "payload {i} survived ICRC drops intact"
        );
    }
    let stats = fl.sim.fabric_stats();
    assert!(stats.icrc_dropped > 0, "corruption exercised: {stats:?}");
    assert!(stats.conserved());
    assert!(
        fl.sim.nic(mr.host).counters().icrc_rx_dropped > 0,
        "receiver counted ICRC drops"
    );
}
