//! Workspace-level integration tests: every layer of the reproduction
//! exercised through the umbrella `ragnar` crate, the way a downstream
//! user would drive it.

use ragnar::attacks::covert::sync::{async_decode, strip_preamble};
use ragnar::attacks::covert::{inter_mr, intra_mr, parse_bits, random_bits, UliChannelConfig};
use ragnar::attacks::re::contention::{measure_pair, FlowSpec, PairConfig};
use ragnar::attacks::side::snoop::{collect_pools, mean_trace, SnoopConfig};
use ragnar::attacks::Testbed;
use ragnar::classifier::{Dataset, MlpClassifier, TrainConfig};
use ragnar::defense::{window_signatures, HarmonicMonitor, Verdict};
use ragnar::sim::SimTime;
use ragnar::verbs::{
    AccessFlags, ConnectOptions, DeviceKind, DeviceProfile, Opcode, Simulation, WorkRequest,
};

#[test]
fn full_stack_data_movement() {
    let mut sim = Simulation::new(11);
    let a = sim.add_host(DeviceProfile::connectx6());
    let b = sim.add_host(DeviceProfile::connectx6());
    let pd_a = sim.alloc_pd(a);
    let pd_b = sim.alloc_pd(b);
    let la = sim.register_mr(a, pd_a, 1 << 21, AccessFlags::remote_all());
    let rb = sim.register_mr(b, pd_b, 1 << 21, AccessFlags::remote_all());
    let (qp, _) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());

    // Ordered write → read on one QP must observe the write (RC
    // ordering), even under PCIe jitter.
    sim.write_memory(a, la.addr(0), b"ordered");
    sim.post_send(qp, WorkRequest::write(1, la.addr(0), rb.addr(0), rb.key, 7))
        .expect("post write");
    sim.post_send(
        qp,
        WorkRequest::read(2, la.addr(4096), rb.addr(0), rb.key, 7),
    )
    .expect("post read");
    sim.run_until(SimTime::from_millis(1));
    assert_eq!(sim.read_memory(a, la.addr(4096), 7), b"ordered");
    assert_eq!(sim.take_completions().len(), 2);
}

#[test]
fn write_read_ordering_is_robust_across_seeds() {
    // The quickstart regression: WQE fetch jitter must never let a read
    // overtake the write posted before it on the same QP.
    for seed in 0..20 {
        let mut sim = Simulation::new(seed);
        let a = sim.add_host(DeviceProfile::connectx5());
        let b = sim.add_host(DeviceProfile::connectx5());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let la = sim.register_mr(a, pd_a, 1 << 21, AccessFlags::remote_all());
        let rb = sim.register_mr(b, pd_b, 1 << 21, AccessFlags::remote_all());
        let (qp, _) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
        sim.write_memory(a, la.addr(0), b"fence!");
        sim.post_send(
            qp,
            WorkRequest::write(1, la.addr(0), rb.addr(64), rb.key, 6),
        )
        .expect("post");
        sim.post_send(
            qp,
            WorkRequest::read(2, la.addr(8192), rb.addr(64), rb.key, 6),
        )
        .expect("post");
        // And an atomic behind them, also ordered.
        sim.post_send(
            qp,
            WorkRequest::fetch_add(3, la.addr(16384), rb.addr(1024), rb.key, 1),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(
            sim.read_memory(a, la.addr(8192), 6),
            b"fence!",
            "read overtook write at seed {seed}"
        );
    }
}

#[test]
fn key_finding_one_reproduces_on_all_devices() {
    // The write-size crossover exists on every ConnectX generation.
    for kind in DeviceKind::ALL {
        let profile = DeviceProfile::preset(kind);
        let cfg = PairConfig::default();
        let big = measure_pair(
            &profile,
            FlowSpec::client(Opcode::Read, 512, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
            &cfg,
        );
        // The crossover exists on every generation; its depth shrinks
        // with port speed (CX-6's 200 Gbps wire leaves reads more
        // headroom), as in the paper's per-NIC pie charts.
        let floor = match kind {
            DeviceKind::ConnectX6 => 0.10,
            _ => 0.25,
        };
        assert!(
            big.reduction_a() > floor,
            "{kind}: bulk writes should depress reads, got {}",
            big.reduction_a()
        );
    }
}

#[test]
fn covert_channel_cross_device_ordering() {
    // Table V: the inter-MR channel is fastest on CX-6, slowest on CX-4.
    let bits = random_bits(64, 99);
    let mut bw = Vec::new();
    for kind in DeviceKind::ALL {
        let run = inter_mr::run(kind, &bits, &inter_mr::default_config(kind));
        assert!(
            run.report.error_rate() < 0.15,
            "{kind} error {}",
            run.report.error_rate()
        );
        bw.push(run.report.raw_bandwidth_bps);
    }
    assert!(bw[2] > bw[1] && bw[1] > bw[0], "CX-6 > CX-5 > CX-4: {bw:?}");
}

#[test]
fn intra_mr_channel_sends_bytes() {
    // A training preamble leads the payload: the very first bits of a
    // transmission settle the shared queue state, as in any real covert
    // channel deployment.
    let payload = "01000001".repeat(4); // ASCII 'A' x4
    let bits = parse_bits(&format!("10101010{payload}"));
    let run = intra_mr::run(
        DeviceKind::ConnectX5,
        &bits,
        &intra_mr::default_config(DeviceKind::ConnectX5),
    );
    let errors = run
        .report
        .decoded
        .iter()
        .zip(&bits)
        .skip(8)
        .filter(|(a, b)| a != b)
        .count();
    assert!(errors <= 2, "payload errors {errors}/32");
}

#[test]
fn harmonic_cannot_see_the_intra_mr_sender() {
    let bits = random_bits(96, 5);
    let run = intra_mr::run(
        DeviceKind::ConnectX5,
        &bits,
        &intra_mr::default_config(DeviceKind::ConnectX5),
    );
    let sigs = window_signatures(&run.tx_counter_samples);
    assert!(sigs.len() >= 3, "enough monitoring windows");
    assert_eq!(
        HarmonicMonitor::new().judge(&sigs),
        Verdict::Clean,
        "the Grain-IV sender must look stationary to Grain-II/III counters"
    );
}

#[test]
fn snoop_trace_feeds_classifier() {
    // Miniature end-to-end Fig. 13: two candidates, coarse observation
    // set, classify by trained MLP.
    let cfg = SnoopConfig {
        step: 64,
        samples_per_offset: 60,
        reps_per_trace: 40,
        candidates: vec![192, 704],
        ..SnoopConfig::default()
    };
    let mut data = Dataset::new(cfg.observation_offsets().len());
    for (class, &cand) in cfg.candidates.iter().enumerate() {
        let pools = collect_pools(DeviceKind::ConnectX4, cand, &cfg);
        let mut rng = ragnar::sim::SimRng::derive(1, "test-traces");
        for _ in 0..30 {
            data.push(
                &ragnar::attacks::side::snoop::trace_from_pools(&pools, 40, &mut rng),
                class,
            );
        }
    }
    data.normalize_per_sample();
    data.shuffle(3);
    let (train, test) = data.split(0.3);
    let clf = MlpClassifier::train(
        &train,
        &TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
    );
    let (acc, _) = clf.evaluate(&test);
    assert!(acc > 0.85, "two-candidate snooping should be easy: {acc}");
}

#[test]
fn testbed_composes_with_direct_verbs() {
    let mut tb = Testbed::new(DeviceProfile::connectx4(), 2, 3);
    let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
    let qp = tb.connect_client(1, ConnectOptions::default());
    tb.sim.write_memory(tb.server, mr.addr(0), b"via testbed");
    tb.sim
        .post_send(qp, WorkRequest::read(1, 0x1000, mr.addr(0), mr.key, 11))
        .expect("post");
    tb.sim.run_until(SimTime::from_millis(1));
    assert_eq!(
        tb.sim.read_memory(tb.clients[1], 0x1000, 11),
        b"via testbed"
    );
}

#[test]
fn snoop_traces_distinguish_two_candidates() {
    let cfg = SnoopConfig {
        step: 64,
        samples_per_offset: 60,
        ..SnoopConfig::default()
    };
    let a = mean_trace(&collect_pools(DeviceKind::ConnectX4, 320, &cfg));
    let b = mean_trace(&collect_pools(DeviceKind::ConnectX4, 832, &cfg));
    let argmax = |t: &[f64]| {
        t.iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    assert_eq!(argmax(&a), 5, "victim at 320 B peaks at index 5");
    assert_eq!(argmax(&b), 13, "victim at 832 B peaks at index 13");
}

#[test]
fn covert_channel_survives_bystander_traffic() {
    // The paper's stealthiness story includes robustness: a third,
    // innocent tenant hammering the same server must not break the
    // channel.
    let bits = random_bits(96, 41);
    let kind = DeviceKind::ConnectX5;
    let cfg = UliChannelConfig {
        background_traffic_len: Some(1024),
        ..inter_mr::default_config(kind)
    };
    let run = inter_mr::run(kind, &bits, &cfg);
    assert!(
        run.report.error_rate() < 0.2,
        "bystander traffic should only add noise: {}",
        run.report.error_rate()
    );
}

#[test]
fn async_receiver_decodes_without_shared_clock() {
    // The receiver recovers the bit phase from its own ULI samples (the
    // paper assumes shared boundaries; this is the harder, realistic
    // setting).
    let preamble = parse_bits("10101010");
    let payload = random_bits(64, 77);
    let mut bits = preamble.clone();
    bits.extend(&payload);
    let kind = DeviceKind::ConnectX4;
    let cfg = inter_mr::default_config(kind);
    let run = inter_mr::run(kind, &bits, &cfg);
    let samples: Vec<_> = run.rx_samples.iter().map(|s| (s.at, s.uli_ns)).collect();
    let (decoded, _clock) = async_decode(&samples, cfg.bit_period, true);
    let got = strip_preamble(&decoded, &preamble).expect("preamble located in async decode");
    let n = got.len().min(payload.len());
    assert!(
        n + 2 >= payload.len(),
        "almost all payload windows recovered"
    );
    let errors = got[..n]
        .iter()
        .zip(&payload[..n])
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        (errors as f64) / (n as f64) < 0.1,
        "async decode error rate {errors}/{n}"
    );
}
