//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored copy of the
//! real `rand`, so this crate re-implements exactly the API surface the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] and [`Rng::random_range`]. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically strong enough
//! for every simulation and test in this repository, and fully
//! deterministic for a given seed (the repository's reproducibility
//! contract). Stream values differ from the real `rand`'s ChaCha-based
//! `StdRng`, which only shifts the sampled noise, not any invariant.

#![warn(missing_docs)]

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // guaranteeing a non-zero state for every seed.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Low-level entropy source, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next raw 64-bit value from the stream.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

/// Types samplable by [`Rng::random`] from the standard distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`'s stream.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced by the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let av = a.next_u64();
        assert_eq!(av, b.next_u64());
        assert_ne!(av, c.next_u64());
    }

    #[test]
    fn float_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for i in 0..1000u64 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(0usize..=i as usize);
            assert!(w <= i as usize);
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
