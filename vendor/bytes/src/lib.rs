//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the slice of the `Bytes` API the RNIC model uses: cheaply
//! clonable, immutable byte buffers (`Bytes::new`, `From<Vec<u8>>`, and
//! `Deref<Target = [u8]>`). Backed by `Arc<[u8]>` plus an offset/length
//! view, so both payload clones *and* subrange slices stay O(1) — a
//! message sliced into MTU segments shares one allocation across every
//! segment, just like the real crate.

#![warn(missing_docs)]

use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a new buffer holding the given subrange.
    ///
    /// O(1): the returned buffer refcounts the same backing allocation
    /// and narrows the view, exactly like the real `bytes` crate. No
    /// payload bytes are copied.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: v.into(),
            off: 0,
            len: v.len(),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

// Equality and hashing are by content, not by backing allocation, so a
// zero-copy view compares equal to an owned copy of the same bytes.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(Bytes::new().is_empty());
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&*s, &[2, 3, 4, 5]);
        // The slice borrows the parent's allocation — same backing
        // pointer range, no copy.
        let parent = b.as_ref().as_ptr();
        let view = s.as_ref().as_ptr();
        assert_eq!(view, unsafe { parent.add(2) });
        // Nested slices keep narrowing the same allocation.
        let s2 = s.slice(1..3);
        assert_eq!(&*s2, &[3, 4]);
        assert_eq!(s2.as_ref().as_ptr(), unsafe { parent.add(3) });
    }

    #[test]
    fn slice_bounds() {
        let b = Bytes::from(vec![9u8; 4]);
        assert_eq!(b.slice(..).len(), 4);
        assert_eq!(b.slice(4..4).len(), 0);
        assert_eq!(b.slice(..=1).len(), 2);
    }

    #[test]
    fn eq_and_hash_are_by_content() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let owned = Bytes::from(vec![5u8, 6, 7]);
        let viewed = Bytes::from(vec![4u8, 5, 6, 7, 8]).slice(1..4);
        assert_eq!(owned, viewed);
        let mut h1 = DefaultHasher::new();
        owned.hash(&mut h1);
        let mut h2 = DefaultHasher::new();
        viewed.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
