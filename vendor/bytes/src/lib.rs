//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the slice of the `Bytes` API the RNIC model uses: cheaply
//! clonable, immutable byte buffers (`Bytes::new`, `From<Vec<u8>>`, and
//! `Deref<Target = [u8]>`). Backed by `Arc<[u8]>`, so packet payload
//! clones stay O(1) just like the real crate.

#![warn(missing_docs)]

use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a new buffer holding the given subrange.
    ///
    /// Unlike the real `bytes` crate this copies the subrange rather
    /// than refcounting a view; callers here slice small packet
    /// payloads, where the copy is negligible.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes {
            data: self.data[start..end].into(),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(Bytes::new().is_empty());
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
