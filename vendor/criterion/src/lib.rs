//! Offline vendored stand-in for the `criterion` benchmark framework.
//!
//! Supports the API the `ragnar-bench` benches use — `benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's full statistical pipeline it warms each benchmark up once
//! and reports the mean wall time over the configured sample count —
//! enough to compare hot paths release-to-release offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = std::hint::black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let _ = std::hint::black_box(f());
            self.elapsed.push(t0.elapsed());
        }
    }
}

/// A named group of benchmarks sharing sample configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Vec::new(),
        };
        f(&mut b);
        let n = b.elapsed.len().max(1);
        let mean = b.elapsed.iter().sum::<Duration>() / n as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) if mean.as_secs_f64() > 0.0 => {
                format!("  ({:.0} elem/s)", e as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(by)) if mean.as_secs_f64() > 0.0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    by as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: {:>12.3?} per iter over {} samples{}",
            self.name, name, mean, n, rate
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness-less bench binary is run with
            // test-runner flags; skip the actual measurement then.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}
