//! Offline vendored no-op implementations of serde's derive macros.
//!
//! The workspace derives `serde::Serialize` / `serde::Deserialize` on its
//! model types so they stay serialization-ready, but nothing in-tree
//! performs serde-based (de)serialization — the experiment harness writes
//! its artifacts through its own minimal JSON encoder. These derives
//! therefore expand to nothing; they exist so the annotated code compiles
//! without network access to the real `serde`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
