//! Offline vendored stand-in for the `serde` facade crate.
//!
//! Provides the `Serialize` / `Deserialize` trait names plus the derive
//! macros (which expand to nothing — see `vendor/serde_derive`). The
//! workspace keeps its types annotated for serialization-readiness while
//! the experiment harness does its own JSON encoding, so marker traits
//! are all that is required to compile offline.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
