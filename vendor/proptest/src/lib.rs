//! Offline vendored stand-in for the `proptest` property-testing
//! framework.
//!
//! Implements the subset of the API the workspace's property tests use:
//! the `proptest!` macro (including `#![proptest_config(..)]`), range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `any::<T>()`, `prop_oneof!`, `Strategy::prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the raw inputs' case number. Sampling is deterministic — the RNG
//! is seeded from the test function's name — so failures reproduce
//! exactly across runs and machines.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Error produced by a single test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG driving strategy sampling (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (the test name), so
    /// every test function gets a distinct but reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types usable with [`any`].
pub trait ArbitraryValue {
    /// Draws an unconstrained value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over every value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Boxes a strategy for use in heterogeneous collections (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies, mirroring `proptest::sample`.

    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Uniform choice from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    pub mod prop {
        //! The `prop::` namespace (`prop::collection`, `prop::sample`).
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property-test functions (subset of proptest's macro grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed on case {}: {}", __case, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), format!($($fmt)+), l, r
                    )));
                }
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// A uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2.0f64..2.0, mut v in prop::collection::vec(0u8..5, 1..6)) {
            v.sort_unstable();
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y was {}", y);
            prop_assert!(v.len() < 6 && !v.is_empty());
        }

        #[test]
        fn oneof_and_select(pick in prop_oneof![(0u32..3).prop_map(|v| v * 2), Just(9u32)],
                            s in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(pick == 9 || pick < 6);
            prop_assert_ne!(s, "c");
            prop_assume!(pick != 4);
            prop_assert_eq!(pick % 2, if pick == 9 { 1 } else { 0 });
        }
    }
}
