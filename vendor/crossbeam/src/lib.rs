//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Implements the `deque` work-stealing API surface the experiment
//! harness's executor uses (`Injector`, `Worker`, `Stealer`, `Steal`).
//! The real crate's lock-free Chase–Lev deques are replaced by mutexed
//! ring buffers — same semantics, and the coarser locking is invisible
//! here because harness tasks are whole experiment configs (milliseconds
//! of work per lock acquisition, not nanoseconds).

#![warn(missing_docs)]

pub mod deque {
    //! Work-stealing double-ended queues (mutex-backed stand-in).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// Extracts the task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A global FIFO injector queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.q.lock().expect("injector poisoned").push_back(task);
        }

        /// Steals one task from the front of the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().expect("injector poisoned").is_empty()
        }
    }

    /// A worker-local FIFO deque with an associated [`Stealer`].
    #[derive(Debug)]
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker deque.
        pub fn new_fifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the local end.
        pub fn push(&self, task: T) {
            self.q.lock().expect("worker poisoned").push_back(task);
        }

        /// Pops a task from the local end (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.q.lock().expect("worker poisoned").pop_front()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().expect("worker poisoned").is_empty()
        }

        /// Creates a [`Stealer`] handle other workers can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// A handle for stealing tasks from another worker's deque.
    #[derive(Debug, Clone)]
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals one task from the opposite end of the owner's deque.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().expect("stealer poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_fifo_and_steal_opposite_end() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(1));
            assert_eq!(s.steal(), Steal::Success(3));
            assert_eq!(w.pop(), Some(2));
            assert!(s.steal().is_empty());
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push("a");
            inj.push("b");
            assert_eq!(inj.steal(), Steal::Success("a"));
            assert_eq!(inj.steal(), Steal::Success("b"));
            assert!(inj.is_empty());
        }
    }
}
