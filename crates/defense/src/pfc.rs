//! Grain-I defense: priority flow control (PFC).
//!
//! Modern RNICs provide native per-traffic-class counters and pause
//! frames, which contain *pressure*-level (Grain-I) attacks: a watchdog
//! that pauses a class whose ingress rate exceeds its share. The paper's
//! taxonomy (§II-D) notes this catches Grain-I floods but is blind to
//! everything finer.

use ragnar_topology::{LinkId, PortCounters};
use rnic_model::{CounterSnapshot, TrafficClass};
use sim_core::{SimDuration, SimTime};

/// A PFC watchdog decision for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseDecision {
    /// The class to pause.
    pub tc: TrafficClass,
    /// How long to pause it.
    pub duration: SimDuration,
}

/// Watches per-TC ingress byte rates and issues pause decisions when a
/// class exceeds its configured share of the port.
#[derive(Debug, Clone)]
pub struct PfcWatchdog {
    /// Port rate in bits per second.
    pub port_rate_bps: u64,
    /// Fraction of the port a single class may use before being paused.
    pub share_limit: f64,
    /// Pause duration issued on violation.
    pub pause: SimDuration,
}

impl PfcWatchdog {
    /// Creates a watchdog.
    ///
    /// # Panics
    ///
    /// Panics if the share limit is outside `(0, 1]`.
    pub fn new(port_rate_bps: u64, share_limit: f64) -> Self {
        assert!(
            share_limit > 0.0 && share_limit <= 1.0,
            "share limit out of range"
        );
        PfcWatchdog {
            port_rate_bps,
            share_limit,
            pause: SimDuration::from_micros(50),
        }
    }

    /// Evaluates one counter window: returns pause decisions for every
    /// class whose ingress rate exceeded its share.
    pub fn evaluate(
        &self,
        earlier: &CounterSnapshot,
        later: &CounterSnapshot,
        window: SimDuration,
    ) -> Vec<PauseDecision> {
        assert!(!window.is_zero(), "empty window");
        let d = later.delta(earlier);
        let mut out = Vec::new();
        for tc in 0..TrafficClass::COUNT {
            let bps = d.rx_bytes_per_tc[tc] as f64 * 8.0 / window.as_secs_f64();
            if bps > self.share_limit * self.port_rate_bps as f64 {
                out.push(PauseDecision {
                    tc: TrafficClass::new(tc as u8),
                    duration: self.pause,
                });
            }
        }
        out
    }

    /// Evaluates one counter window across a whole fabric's links:
    /// for each port whose per-TC ingress rate exceeded its share,
    /// returns the link plus the pause to apply upstream of it. The
    /// snapshots come from `Simulation::link_counters` (or
    /// `FabricRuntime::all_counters`) at the window edges, indexed by
    /// [`LinkId`].
    ///
    /// # Panics
    ///
    /// Panics on an empty window or mismatched snapshot lengths.
    pub fn evaluate_ports(
        &self,
        earlier: &[PortCounters],
        later: &[PortCounters],
        window: SimDuration,
    ) -> Vec<(LinkId, PauseDecision)> {
        assert!(!window.is_zero(), "empty window");
        assert_eq!(
            earlier.len(),
            later.len(),
            "snapshots must cover the same links"
        );
        let mut out = Vec::new();
        for (i, (e, l)) in earlier.iter().zip(later).enumerate() {
            for tc in 0..TrafficClass::COUNT {
                let bytes = l.rx_bytes_per_tc[tc] - e.rx_bytes_per_tc[tc];
                let bps = bytes as f64 * 8.0 / window.as_secs_f64();
                if bps > self.share_limit * self.port_rate_bps as f64 {
                    out.push((
                        LinkId(i as u32),
                        PauseDecision {
                            tc: TrafficClass::new(tc as u8),
                            duration: self.pause,
                        },
                    ));
                }
            }
        }
        out
    }
}

/// Convenience: applies decisions to an RNIC at `now`.
pub fn apply_pauses(nic: &mut rnic_model::Rnic, now: SimTime, decisions: &[PauseDecision]) {
    for d in decisions {
        nic.pause_tc(d.tc, now + d.duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_triggers_pause_only_for_offender() {
        let wd = PfcWatchdog::new(25_000_000_000, 0.6);
        let a = CounterSnapshot::default();
        let mut b = CounterSnapshot::default();
        // TC0 floods: 2.5 MB in 1 ms = 20 Gbps (> 60 % of 25 G).
        b.rx_bytes_per_tc[0] = 2_500_000;
        // TC1 modest: 100 KB in 1 ms = 0.8 Gbps.
        b.rx_bytes_per_tc[1] = 100_000;
        let decisions = wd.evaluate(&a, &b, SimDuration::from_millis(1));
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].tc, TrafficClass::new(0));
    }

    #[test]
    fn quiet_traffic_not_paused() {
        let wd = PfcWatchdog::new(25_000_000_000, 0.6);
        let a = CounterSnapshot::default();
        let mut b = CounterSnapshot::default();
        b.rx_bytes_per_tc[3] = 10_000;
        assert!(wd.evaluate(&a, &b, SimDuration::from_millis(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "share limit")]
    fn invalid_share_rejected() {
        let _ = PfcWatchdog::new(25_000_000_000, 1.5);
    }

    #[test]
    fn port_sweep_flags_only_the_hot_link() {
        let wd = PfcWatchdog::new(100_000_000_000, 0.5);
        let earlier = vec![PortCounters::default(); 4];
        let mut later = vec![PortCounters::default(); 4];
        // Link 2, TC1 floods: 80 Gbps over a 1 ms window.
        later[2].rx_bytes_per_tc[1] = 10_000_000;
        // Link 0 hums along well under the share.
        later[0].rx_bytes_per_tc[1] = 100_000;
        let decisions = wd.evaluate_ports(&earlier, &later, SimDuration::from_millis(1));
        assert_eq!(decisions.len(), 1);
        let (link, d) = decisions[0];
        assert_eq!(link, LinkId(2));
        assert_eq!(d.tc, TrafficClass::new(1));
        assert_eq!(d.duration, wd.pause);
    }

    #[test]
    #[should_panic(expected = "same links")]
    fn mismatched_port_snapshots_rejected() {
        let wd = PfcWatchdog::new(100_000_000_000, 0.5);
        let _ = wd.evaluate_ports(
            &[PortCounters::default()],
            &[PortCounters::default(); 2],
            SimDuration::from_millis(1),
        );
    }
}
