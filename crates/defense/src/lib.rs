//! # ragnar-defense — the defenses Ragnar is evaluated against
//!
//! The paper's granularity taxonomy (§II-D) maps each defense to the
//! attack grain it can see:
//!
//! * [`pfc`] — native Grain-I per-traffic-class counters and pause
//!   frames: contain pressure floods, blind to anything finer.
//! * [`harmonic`] — a HARMONIC-style (NSDI'24) monitor over Grain-II
//!   opcode/size counters and Grain-III resource counters. It flags the
//!   §V-B priority channel (whose sender modulates message sizes) but
//!   passes the inter-/intra-MR channels, whose Grain-II/III statistics
//!   are stationary — the paper's central stealthiness claim.
//! * [`mitigation`] — the §VII latency-noise countermeasure and its
//!   security/performance trade-off.
//! * [`roc`] — detector operating characteristics: the quantitative form
//!   of the paper's stealthiness argument.
//!
//! Integration tests in `ragnar-bench` run the real covert channels
//! against these monitors to reproduce Table I's "Defended" column.

#![warn(missing_docs)]

pub mod harmonic;
pub mod mitigation;
pub mod pfc;
pub mod roc;

pub use harmonic::{window_signatures, HarmonicMonitor, Verdict, WindowSignature};
pub use mitigation::{noise_sweep, NoisePoint};
pub use pfc::{apply_pauses, PauseDecision, PfcWatchdog};
pub use roc::{detection_at_fpr, roc_sweep, RocPoint};
