//! Detector operating characteristics: how well can a HARMONIC-style
//! monitor separate covert senders from honest tenants as its threshold
//! varies?
//!
//! The paper's stealthiness argument is qualitative ("HARMONIC does not
//! take Grain-IV metrics into account"). This study makes it
//! quantitative: sweep the detector threshold and report, per channel,
//! the detection rate achievable at each false-positive rate over a
//! population of honest workloads.

use crate::harmonic::{HarmonicMonitor, Verdict, WindowSignature};
use ragnar_telemetry::{ActorId, Target};

/// One operating point of the detector.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct RocPoint {
    /// Grain-II coefficient-of-variation threshold in force.
    pub threshold: f64,
    /// Fraction of covert-sender observations flagged.
    pub detection_rate: f64,
    /// Fraction of honest observations flagged.
    pub false_positive_rate: f64,
}

/// Sweeps thresholds over labelled signature sets.
///
/// `covert` and `honest` each hold one windowed-signature series per
/// observed tenant.
///
/// # Panics
///
/// Panics if either population is empty.
pub fn roc_sweep(
    covert: &[Vec<WindowSignature>],
    honest: &[Vec<WindowSignature>],
    thresholds: &[f64],
) -> Vec<RocPoint> {
    assert!(
        !covert.is_empty() && !honest.is_empty(),
        "both populations must be non-empty"
    );
    let tracer = ragnar_telemetry::tracer();
    thresholds
        .iter()
        .map(|&threshold| {
            let monitor = HarmonicMonitor {
                grain2_cv_threshold: threshold,
                grain3_cv_threshold: threshold * 1.5,
                ..HarmonicMonitor::default()
            };
            let flagged = |series: &[Vec<WindowSignature>]| {
                series
                    .iter()
                    .filter(|s| monitor.judge(s) != Verdict::Clean)
                    .count() as f64
                    / series.len() as f64
            };
            let point = RocPoint {
                threshold,
                detection_rate: flagged(covert),
                false_positive_rate: flagged(honest),
            };
            if tracer.enabled(Target::Defense) {
                tracer.instant(
                    Target::Defense,
                    "roc_point",
                    ActorId::GLOBAL,
                    0,
                    &[
                        ("threshold", point.threshold.into()),
                        ("detection_rate", point.detection_rate.into()),
                        ("false_positive_rate", point.false_positive_rate.into()),
                    ],
                );
            }
            point
        })
        .collect()
}

/// Best detection rate achievable at or below the given false-positive
/// budget, or `None` if no threshold satisfies it.
pub fn detection_at_fpr(points: &[RocPoint], max_fpr: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.false_positive_rate <= max_fpr)
        .map(|p| p.detection_rate)
        .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnic_model::Opcode;
    use sim_core::SimTime;

    fn sig(at_us: u64, reads: u64, mean_size: f64, tpu: u64) -> WindowSignature {
        let mut requests_per_opcode = [0u64; Opcode::COUNT];
        requests_per_opcode[Opcode::Read.index()] = reads;
        WindowSignature {
            at: SimTime::from_micros(at_us),
            requests_per_opcode,
            mean_tx_packet_size: mean_size,
            tpu_lookups: tpu,
            pcie_bytes: (mean_size * reads as f64) as u64,
        }
    }

    /// A sender that flips sizes (Grain-II modulation, detectable).
    fn modulating(jitter: f64) -> Vec<WindowSignature> {
        (0..12)
            .map(|i| {
                let size = if i % 2 == 0 { 128.0 } else { 2048.0 } + jitter * i as f64;
                sig(i * 100, 100, size, 100)
            })
            .collect()
    }

    /// A constant-profile tenant (honest or a Grain-IV sender).
    fn constant(base: f64, wobble: f64) -> Vec<WindowSignature> {
        (0..12)
            .map(|i| sig(i * 100, 100, base + wobble * ((i % 3) as f64 - 1.0), 100))
            .collect()
    }

    #[test]
    fn roc_orders_sensitivity() {
        let covert: Vec<_> = (0..10).map(|i| modulating(i as f64)).collect();
        let honest: Vec<_> = (0..10).map(|i| constant(512.0, 5.0 + i as f64)).collect();
        let points = roc_sweep(&covert, &honest, &[0.01, 0.1, 0.5, 2.0]);
        // Tighter thresholds detect more — and false-positive more.
        assert!(points[0].detection_rate >= points[3].detection_rate);
        assert!(points[0].false_positive_rate >= points[3].false_positive_rate);
        // A mid threshold separates these populations perfectly.
        let mid = &points[1];
        assert_eq!(mid.detection_rate, 1.0);
        assert_eq!(mid.false_positive_rate, 0.0);
    }

    #[test]
    fn grain_iv_senders_are_inseparable() {
        // A Grain-IV covert sender has the same constant profile as an
        // honest tenant: at any threshold, detecting it costs the same
        // false-positive rate.
        let covert: Vec<_> = (0..10).map(|i| constant(512.0, 5.0 + i as f64)).collect();
        let honest: Vec<_> = (10..20)
            .map(|i| constant(512.0, 5.0 + (i - 10) as f64))
            .collect();
        let points = roc_sweep(&covert, &honest, &[0.001, 0.005, 0.02, 0.1, 0.5]);
        for p in &points {
            assert!(
                (p.detection_rate - p.false_positive_rate).abs() < 0.21,
                "ROC must hug the diagonal for Grain-IV: {p:?}"
            );
        }
        assert_eq!(detection_at_fpr(&points, 0.0), Some(0.0));
    }

    #[test]
    fn detection_at_fpr_picks_best_feasible() {
        let points = vec![
            RocPoint {
                threshold: 0.1,
                detection_rate: 0.9,
                false_positive_rate: 0.3,
            },
            RocPoint {
                threshold: 0.2,
                detection_rate: 0.7,
                false_positive_rate: 0.05,
            },
            RocPoint {
                threshold: 0.4,
                detection_rate: 0.4,
                false_positive_rate: 0.0,
            },
        ];
        assert_eq!(detection_at_fpr(&points, 0.1), Some(0.7));
        assert_eq!(detection_at_fpr(&points, 0.0), Some(0.4));
        assert_eq!(detection_at_fpr(&points[..1], 0.0), None);
    }
}
