//! §VII mitigation study: latency-noise injection and its
//! security/performance trade-off.
//!
//! "Introducing sub-microsecond noise into packet latency can obscure
//! ULI but may still leave detectable traces. Adding full noise for
//! complete masking results in significant performance degradation."
//! This module quantifies both sides: the covert channel's error rate
//! and the victim-visible latency overhead, as a function of the
//! injected noise σ.

use ragnar_core::covert::inter_mr;
use ragnar_core::covert::UliChannelConfig;
use rdma_verbs::DeviceKind;

/// One point of the noise sweep.
#[derive(Debug, Clone)]
pub struct NoisePoint {
    /// Injected TPU noise σ in nanoseconds.
    pub noise_ns: u64,
    /// Inter-MR channel error rate under this noise.
    pub channel_error_rate: f64,
    /// Effective channel bandwidth (bps) under this noise.
    pub effective_bandwidth_bps: f64,
    /// Mean receiver ULI (ns) — the performance cost every tenant pays.
    pub mean_uli_ns: f64,
}

/// Sweeps noise levels against the inter-MR channel on `kind`.
pub fn noise_sweep(kind: DeviceKind, noise_levels_ns: &[u64], bits: usize) -> Vec<NoisePoint> {
    let payload = ragnar_core::covert::random_bits(bits, 0xD1CE);
    noise_levels_ns
        .iter()
        .map(|&noise_ns| {
            let cfg = UliChannelConfig {
                mitigation_noise_ns: noise_ns,
                ..inter_mr::default_config(kind)
            };
            let run = inter_mr::run(kind, &payload, &cfg);
            let mean_uli = if run.rx_samples.is_empty() {
                0.0
            } else {
                run.rx_samples.iter().map(|s| s.uli_ns).sum::<f64>() / run.rx_samples.len() as f64
            };
            NoisePoint {
                noise_ns,
                channel_error_rate: run.report.error_rate(),
                effective_bandwidth_bps: run.report.effective_bandwidth_bps(),
                mean_uli_ns: mean_uli,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_degrades_the_channel_but_costs_latency() {
        // The receiver averages ~40 samples per bit, so masking needs σ
        // large enough that the *window mean* noise swamps the ~300 ns
        // signal — full masking is expensive, as §VII warns.
        let points = noise_sweep(DeviceKind::ConnectX4, &[0, 2500], 96);
        let clean = &points[0];
        let noisy = &points[1];
        assert!(
            noisy.channel_error_rate > clean.channel_error_rate + 0.05,
            "heavy noise should raise channel errors: {} -> {}",
            clean.channel_error_rate,
            noisy.channel_error_rate
        );
        assert!(
            noisy.effective_bandwidth_bps < 0.8 * clean.effective_bandwidth_bps,
            "effective bandwidth should collapse: {} -> {}",
            clean.effective_bandwidth_bps,
            noisy.effective_bandwidth_bps
        );
        assert!(
            noisy.mean_uli_ns > clean.mean_uli_ns,
            "masking noise costs every tenant latency: {} -> {}",
            clean.mean_uli_ns,
            noisy.mean_uli_ns
        );
    }
}
