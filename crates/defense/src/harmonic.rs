//! A HARMONIC-style performance-isolation monitor (Lou et al., NSDI'24),
//! the state-of-the-art defense the paper evaluates against (§II-D,
//! §VII).
//!
//! HARMONIC observes **Grain-II** counters (per-opcode operation counts,
//! message-size profiles) and **Grain-III** resource-utilization counters
//! (translation-unit lookups, PCIe bytes). A tenant whose windowed
//! profile *modulates* — the signature of a covert sender — is flagged.
//! Ragnar's Grain-III/IV channels keep every one of these statistics
//! constant, which is exactly why they bypass the defense (the paper's
//! Table I "Defended" column).

use rnic_model::{CounterSnapshot, Opcode};
use sim_core::SimTime;

/// Per-window Grain-II/III signature of one tenant's traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSignature {
    /// Window end time.
    pub at: SimTime,
    /// Request count per opcode in the window (Grain-II).
    pub requests_per_opcode: [u64; Opcode::COUNT],
    /// Mean transmitted packet size in the window (Grain-II).
    pub mean_tx_packet_size: f64,
    /// Translation-unit lookups in the window (Grain-III).
    pub tpu_lookups: u64,
    /// PCIe bytes moved in the window (Grain-III).
    pub pcie_bytes: u64,
}

/// Builds per-window signatures from periodic counter snapshots.
pub fn window_signatures(samples: &[(SimTime, CounterSnapshot)]) -> Vec<WindowSignature> {
    samples
        .windows(2)
        .map(|w| {
            let (_, ref a) = w[0];
            let (t, ref b) = w[1];
            let d = b.delta(a);
            let mean = if d.tx_packets == 0 {
                0.0
            } else {
                d.tx_bytes as f64 / d.tx_packets as f64
            };
            WindowSignature {
                at: t,
                requests_per_opcode: d.requests_per_opcode,
                mean_tx_packet_size: mean,
                tpu_lookups: d.tpu_lookups,
                pcie_bytes: d.pcie_bytes,
            }
        })
        .collect()
}

/// The monitor's verdict on one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Stationary profile: nothing to report.
    Clean,
    /// The Grain-II profile modulates (message sizes or opcode mix swing
    /// between windows) — flagged for isolation.
    FlaggedGrain2,
    /// The Grain-III resource usage modulates while Grain-II looks
    /// constant.
    FlaggedGrain3,
}

/// A HARMONIC-style detector over windowed signatures.
///
/// A tenant is flagged when the coefficient of variation of its windowed
/// mean packet size (Grain-II) or resource counters (Grain-III) exceeds
/// the configured thresholds. Bit-modulated senders that flip message
/// sizes (the §V-B priority channel) show near-bimodal packet-size
/// windows and are caught; the inter-/intra-MR channels hold every
/// statistic constant and pass.
#[derive(Debug, Clone)]
pub struct HarmonicMonitor {
    /// Max allowed coefficient of variation of the mean packet size.
    pub grain2_cv_threshold: f64,
    /// Max allowed coefficient of variation of TPU lookups per window.
    pub grain3_cv_threshold: f64,
    /// Windows with fewer requests than this are ignored (idle tenant).
    pub min_requests: u64,
}

impl Default for HarmonicMonitor {
    fn default() -> Self {
        HarmonicMonitor {
            grain2_cv_threshold: 0.15,
            grain3_cv_threshold: 0.25,
            min_requests: 4,
        }
    }
}

fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

impl HarmonicMonitor {
    /// Creates a monitor with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Judges a tenant from its windowed signatures.
    pub fn judge(&self, windows: &[WindowSignature]) -> Verdict {
        let active: Vec<&WindowSignature> = windows
            .iter()
            .filter(|w| w.requests_per_opcode.iter().sum::<u64>() >= self.min_requests)
            .collect();
        if active.len() < 3 {
            return Verdict::Clean;
        }
        let sizes: Vec<f64> = active.iter().map(|w| w.mean_tx_packet_size).collect();
        if coefficient_of_variation(&sizes) > self.grain2_cv_threshold {
            return Verdict::FlaggedGrain2;
        }
        // Opcode-mix modulation also counts as Grain-II.
        for op in 0..Opcode::COUNT {
            let counts: Vec<f64> = active
                .iter()
                .map(|w| w.requests_per_opcode[op] as f64)
                .collect();
            if counts.iter().sum::<f64>() > 0.0
                && coefficient_of_variation(&counts) > 2.0 * self.grain2_cv_threshold
            {
                return Verdict::FlaggedGrain2;
            }
        }
        let tpu: Vec<f64> = active.iter().map(|w| w.tpu_lookups as f64).collect();
        let pcie: Vec<f64> = active.iter().map(|w| w.pcie_bytes as f64).collect();
        if coefficient_of_variation(&tpu) > self.grain3_cv_threshold
            || coefficient_of_variation(&pcie) > self.grain3_cv_threshold
        {
            return Verdict::FlaggedGrain3;
        }
        Verdict::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(at_us: u64, reads: u64, tx_bytes: u64, tx_pkts: u64, tpu: u64) -> WindowSignature {
        let mut requests_per_opcode = [0u64; Opcode::COUNT];
        requests_per_opcode[Opcode::Read.index()] = reads;
        WindowSignature {
            at: SimTime::from_micros(at_us),
            requests_per_opcode,
            mean_tx_packet_size: if tx_pkts == 0 {
                0.0
            } else {
                tx_bytes as f64 / tx_pkts as f64
            },
            tpu_lookups: tpu,
            pcie_bytes: tx_bytes,
        }
    }

    #[test]
    fn stationary_profile_is_clean() {
        let windows: Vec<_> = (0..10)
            .map(|i| sig(i * 100, 100, 100 * 512, 100, 100))
            .collect();
        assert_eq!(HarmonicMonitor::new().judge(&windows), Verdict::Clean);
    }

    #[test]
    fn size_modulation_is_flagged() {
        // Alternating 128 B / 2048 B windows — the priority channel.
        let windows: Vec<_> = (0..10)
            .map(|i| {
                let size = if i % 2 == 0 { 128 } else { 2048 };
                sig(i * 100, 100, 100 * size, 100, 100)
            })
            .collect();
        assert_eq!(
            HarmonicMonitor::new().judge(&windows),
            Verdict::FlaggedGrain2
        );
    }

    #[test]
    fn resource_modulation_is_flagged_as_grain3() {
        // Constant sizes, but TPU pressure swings 3×.
        let windows: Vec<_> = (0..10)
            .map(|i| {
                let tpu = if i % 2 == 0 { 50 } else { 150 };
                sig(i * 100, 100, 100 * 512, 100, tpu)
            })
            .collect();
        assert_eq!(
            HarmonicMonitor::new().judge(&windows),
            Verdict::FlaggedGrain3
        );
    }

    #[test]
    fn idle_windows_ignored() {
        let mut windows: Vec<_> = (0..5)
            .map(|i| sig(i * 100, 100, 100 * 512, 100, 100))
            .collect();
        // Idle windows with garbage sizes must not trigger.
        windows.push(sig(600, 1, 9000, 1, 1));
        assert_eq!(HarmonicMonitor::new().judge(&windows), Verdict::Clean);
    }

    #[test]
    fn window_signatures_from_snapshots() {
        let mut a = CounterSnapshot {
            tx_bytes: 1000,
            tx_packets: 10,
            ..CounterSnapshot::default()
        };
        a.requests_per_opcode[Opcode::Read.index()] = 10;
        let mut b = a;
        b.tx_bytes = 3000;
        b.tx_packets = 20;
        b.requests_per_opcode[Opcode::Read.index()] = 25;
        b.tpu_lookups = 7;
        let sigs =
            window_signatures(&[(SimTime::from_micros(0), a), (SimTime::from_micros(100), b)]);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].requests_per_opcode[Opcode::Read.index()], 15);
        assert!((sigs[0].mean_tx_packet_size - 200.0).abs() < 1e-9);
        assert_eq!(sigs[0].tpu_lookups, 7);
    }
}
