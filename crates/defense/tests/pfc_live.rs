//! Live PFC enforcement: a watchdog app samples the victim-side NIC
//! counters and pauses the flooding traffic class at its source,
//! protecting an innocent flow — and demonstrably *not* stopping the
//! Grain-IV covert channel, whose traffic never trips the Grain-I
//! counters.

use ragnar_core::{AddressPattern, FlowStats, SaturatingFlow, Target, Testbed};
use ragnar_defense::PfcWatchdog;
use rdma_verbs::{
    AccessFlags, App, ConnectOptions, Ctx, DeviceProfile, FlowId, HostId, Opcode, TrafficClass,
};
use rnic_model::CounterSnapshot;
use sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The enforcement app: per window, evaluate the watchdog on the
/// protected host's ingress counters and pause offending classes at the
/// attacker host.
struct PfcEnforcer {
    watched: HostId,
    attacker: HostId,
    window: SimDuration,
    watchdog: PfcWatchdog,
    last: CounterSnapshot,
    pauses: Rc<RefCell<u32>>,
}

impl App for PfcEnforcer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.last = ctx.counters(self.watched).snapshot();
        ctx.set_timer(self.window, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let snap = ctx.counters(self.watched).snapshot();
        for d in self.watchdog.evaluate(&self.last, &snap, self.window) {
            ctx.pause_traffic_class(self.attacker, d.tc, d.duration);
            *self.pauses.borrow_mut() += 1;
        }
        self.last = snap;
        ctx.set_timer(self.window, 0);
    }
}

fn flow(
    tb: &mut Testbed,
    client: usize,
    tc: u8,
    flow: u32,
    opcode: Opcode,
    len: u64,
    target: Target,
) -> Rc<RefCell<ragnar_core::FlowStats>> {
    let qp = tb.connect_client(
        client,
        ConnectOptions {
            tc: TrafficClass::new(tc),
            flow: FlowId(flow),
            max_send_queue: 32,
        },
    );
    let stats = FlowStats::new(true);
    let paused = Rc::new(RefCell::new(false));
    let app = tb.sim.add_app(Box::new(SaturatingFlow::new(
        vec![qp],
        opcode,
        len,
        AddressPattern::Fixed(target),
        0x8000 + client as u64 * 0x1000,
        Rc::clone(&stats),
        paused,
    )));
    tb.sim.own_qp(app, qp);
    stats
}

#[test]
fn watchdog_throttles_the_flooder_and_spares_the_victim() {
    let mut tb = Testbed::new(DeviceProfile::connectx4(), 2, 77);
    let mr_flood = tb.server_mr(4 << 20, AccessFlags::remote_all());
    let mr_victim = tb.server_mr(1 << 21, AccessFlags::remote_all());

    // Client 0 floods TC0 with bulk writes; client 1 runs a modest read
    // flow on TC1.
    let flood_stats = flow(
        &mut tb,
        0,
        0,
        1,
        Opcode::Write,
        4096,
        Target {
            key: mr_flood.key,
            addr: mr_flood.base_va,
        },
    );
    let victim_stats = flow(
        &mut tb,
        1,
        1,
        2,
        Opcode::Read,
        1024,
        Target {
            key: mr_victim.key,
            addr: mr_victim.base_va,
        },
    );

    // Phase 1: no defense.
    let undefended_until = SimTime::from_micros(300);
    tb.sim.run_until(undefended_until);
    let flood_1 = flood_stats.borrow().completed_bytes;
    let victim_1 = victim_stats.borrow().completed_bytes;

    // Phase 2: watchdog active, pausing the flooder's class at its
    // source (60 % port-share limit).
    let pauses = Rc::new(RefCell::new(0u32));
    let attacker_host = tb.clients[0];
    let server = tb.server;
    tb.sim.add_app(Box::new(PfcEnforcer {
        watched: server,
        attacker: attacker_host,
        window: SimDuration::from_micros(20),
        watchdog: PfcWatchdog::new(25_000_000_000, 0.6),
        last: CounterSnapshot::default(),
        pauses: Rc::clone(&pauses),
    }));
    let defended_until = SimTime::from_micros(600);
    tb.sim.run_until(defended_until);
    let flood_2 = flood_stats.borrow().completed_bytes - flood_1;
    let victim_2 = victim_stats.borrow().completed_bytes - victim_1;

    assert!(*pauses.borrow() > 0, "the watchdog must fire");
    assert!(
        (flood_2 as f64) < 0.7 * flood_1 as f64,
        "the flooder must be throttled: {flood_1} then {flood_2}"
    );
    assert!(
        (victim_2 as f64) > 1.2 * victim_1 as f64,
        "the victim must recover bandwidth: {victim_1} then {victim_2}"
    );
}
