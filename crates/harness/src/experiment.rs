//! The [`Experiment`] abstraction: a named, parameterised, seedable
//! unit of reproduction that every figure/table of the paper implements.

use crate::cli::Cli;
use crate::value::Value;

/// One point in an experiment's parameter space.
///
/// A config is an ordered set of key → JSON-value pairs. Its
/// [`canonical`](Config::canonical) encoding (keys sorted) is what gets
/// hashed into the cache key and what the per-config seed is derived
/// from, so a config *is* its content — construction order, threads and
/// scheduling cannot change identity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Config {
    entries: Vec<(String, Value)>,
}

impl Config {
    /// An empty config.
    pub fn new() -> Config {
        Config::default()
    }

    /// Builder-style insert.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Config {
        self.set(key, value);
        self
    }

    /// Inserts or replaces a key.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }

    /// Fetches a raw value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Fetches a string field.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Fetches an unsigned integer field.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Value::as_i64).map(|i| i as u64)
    }

    /// Fetches a float field.
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// Fetches a bool field.
    pub fn bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// The canonical JSON encoding: an object with keys sorted
    /// byte-lexicographically. This string is the config's identity for
    /// hashing and seed derivation.
    pub fn canonical(&self) -> String {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(sorted).encode()
    }

    /// A short human-readable `key=value` label for logs and manifests.
    pub fn label(&self) -> String {
        if self.entries.is_empty() {
            return "default".to_string();
        }
        self.entries
            .iter()
            .map(|(k, v)| match v {
                Value::Str(s) => format!("{k}={s}"),
                other => format!("{k}={other}"),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The underlying entries, in insertion order.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Rebuilds a config from a parsed JSON object (cache loads).
    pub fn from_value(v: &Value) -> Option<Config> {
        match v {
            Value::Object(entries) => Some(Config {
                entries: entries.clone(),
            }),
            _ => None,
        }
    }
}

/// The result of running one config: a rendered report fragment plus
/// structured metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Artifact {
    /// Human-readable output for this config (what the figure binaries
    /// used to print).
    pub rendered: String,
    /// Structured measurements, for programmatic consumers and tests.
    pub metrics: Value,
}

impl Artifact {
    /// An artifact that is only rendered text.
    pub fn text(rendered: impl Into<String>) -> Artifact {
        Artifact {
            rendered: rendered.into(),
            metrics: Value::object(),
        }
    }

    /// Builder-style metric insert.
    pub fn with_metric(mut self, key: &str, value: impl Into<Value>) -> Artifact {
        if !matches!(self.metrics, Value::Object(_)) {
            self.metrics = Value::object();
        }
        self.metrics.set(key, value);
        self
    }

    /// Canonical JSON encoding of the whole artifact; its hash is the
    /// basis of the run's determinism digest.
    pub fn to_value(&self) -> Value {
        let mut obj = Value::object();
        obj.set("rendered", self.rendered.as_str());
        obj.set("metrics", self.metrics.clone());
        obj
    }

    /// Rebuilds an artifact from its JSON encoding (cache loads).
    pub fn from_value(v: &Value) -> Option<Artifact> {
        Some(Artifact {
            rendered: v.get("rendered")?.as_str()?.to_string(),
            metrics: v.get("metrics")?.clone(),
        })
    }
}

/// How one config's run ended.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The config produced an artifact.
    Done(Artifact),
    /// The config failed; sweeps record and continue.
    Failed {
        /// The error (or panic) message.
        message: String,
        /// Whether the failure was a caught panic rather than an `Err`.
        panicked: bool,
    },
    /// Every attempt overran the cell watchdog (`--cell-timeout`).
    TimedOut {
        /// The watchdog budget each attempt was given, in ms.
        timeout_ms: u64,
    },
    /// The cell never ran: an earlier cell's monitor demanded a
    /// whole-sweep abort before this one was picked up.
    Skipped {
        /// Why the sweep stopped scheduling cells.
        reason: String,
    },
}

impl Outcome {
    /// The artifact, if the run succeeded.
    pub fn artifact(&self) -> Option<&Artifact> {
        match self {
            Outcome::Done(a) => Some(a),
            _ => None,
        }
    }

    /// Whether the cell counts against the sweep (anything but `Done`).
    pub fn is_failure(&self) -> bool {
        !matches!(self, Outcome::Done(_))
    }
}

/// The full record of one executed (or cache-served) config.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Position of the config in [`Experiment::params`] order; records
    /// are always returned sorted by this, whatever the schedule did.
    pub index: usize,
    /// The config that ran.
    pub config: Config,
    /// The derived per-config seed it ran with.
    pub seed: u64,
    /// The content-addressed cache key.
    pub cache_key: String,
    /// How the run ended.
    pub outcome: Outcome,
    /// Whether the artifact came from the result cache.
    pub from_cache: bool,
    /// Wall time spent producing (or loading) the artifact, in ms.
    pub elapsed_ms: f64,
    /// What the cell's telemetry session observed (`None` when telemetry
    /// was off or the artifact came from the cache). Never part of the
    /// artifact or its digest.
    pub telemetry: Option<ragnar_telemetry::SessionReport>,
    /// How many times the cell actually executed (0 for cache hits and
    /// skipped cells, ≥ 2 when the retry ladder was climbed).
    pub attempts: u32,
    /// Whether the cell exhausted its retry budget and was quarantined
    /// as a repeat offender.
    pub quarantined: bool,
    /// A ready-to-paste minimal-repro command for terminally failed
    /// cells (`None` for successes).
    pub repro: Option<String>,
}

/// A reproducible experiment: the unit the harness schedules, caches
/// and reports on.
///
/// Implementations must be [`Sync`]: `run` is called concurrently from
/// the executor's worker threads with distinct configs.
pub trait Experiment: Sync {
    /// Stable experiment name; doubles as the `results/<name>/` cache
    /// namespace and the CLI binary identity.
    fn name(&self) -> &'static str;

    /// One-line description shown by `--help`.
    fn description(&self) -> &'static str {
        ""
    }

    /// Version of the experiment's *code*. Bump when `run`'s logic
    /// changes so stale cache entries stop matching.
    fn version(&self) -> u32 {
        1
    }

    /// The parameter space to sweep for this invocation. `cli` carries
    /// the shared flags (`--quick`) plus experiment-specific ones
    /// (e.g. fig4's `--full`).
    fn params(&self, cli: &Cli) -> Vec<Config>;

    /// Runs one config with a deterministically derived seed, returning
    /// the artifact or an error message. Panics are caught by the
    /// executor and recorded as failures.
    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String>;

    /// Renders the final report from all records, in `params()` order.
    /// The default concatenates each artifact's rendered fragment.
    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        for record in records {
            if let Outcome::Done(artifact) = &record.outcome {
                out.push_str(&artifact.rendered);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_order_insensitive() {
        let a = Config::new().with("b", 2u64).with("a", 1u64);
        let b = Config::new().with("a", 1u64).with("b", 2u64);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), r#"{"a":1,"b":2}"#);
        // ...but identity still distinguishes values.
        let c = Config::new().with("a", 1u64).with("b", 3u64);
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn config_accessors() {
        let c = Config::new()
            .with("op", "read")
            .with("len", 512u64)
            .with("scale", 0.5)
            .with("on", true);
        assert_eq!(c.str("op"), Some("read"));
        assert_eq!(c.u64("len"), Some(512));
        assert_eq!(c.f64("scale"), Some(0.5));
        assert_eq!(c.bool("on"), Some(true));
        assert_eq!(c.str("missing"), None);
        assert_eq!(c.label(), "op=read len=512 scale=0.5 on=true");
    }

    #[test]
    fn artifact_roundtrip() {
        let a = Artifact::text("table\n").with_metric("bps", 63_600u64);
        let back = Artifact::from_value(&a.to_value()).expect("roundtrip");
        assert_eq!(back, a);
    }
}
