//! Content hashing for cache keys and artifact digests.
//!
//! Cache entries are addressed by a 128-bit FNV-1a-style hash over the
//! canonical JSON encodings of (experiment name, config, seed,
//! experiment code version, engine version, store format version).
//! 128 bits come from two independent 64-bit streams with distinct
//! offset bases — far past birthday-collision range for any realistic
//! sweep size, with no dependency on a crypto crate.
//!
//! The engine version (`sim_core::ENGINE_VERSION`) is part of the key
//! so that changes to the simulation core itself — like the calendar
//! queue replacing the global heap — turn every cell cached under the
//! old engine into a miss instead of silently serving stale results.

/// 64-bit FNV-1a with a caller-chosen offset basis.
fn fnv1a64(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Hashes arbitrary bytes to a 32-hex-char content id.
pub fn content_hash(bytes: &[u8]) -> String {
    let a = fnv1a64(0xCBF2_9CE4_8422_2325, bytes);
    // Second stream: different basis, and fold the first digest in so
    // the halves never agree by construction.
    let b = fnv1a64(0x9E37_79B9_7F4A_7C15 ^ a, bytes);
    format!("{a:016x}{b:016x}")
}

/// Builds the cache key for one (experiment, config, seed) cell.
///
/// `engine_version` is the simulation-core generation
/// ([`sim_core::ENGINE_VERSION`]); the executor always passes the
/// current one, so results computed by an older engine can never be
/// returned as hits.
pub fn cache_key(
    experiment: &str,
    config_canonical: &str,
    seed: u64,
    experiment_version: u32,
    engine_version: u32,
    format_version: u32,
) -> String {
    let material = format!(
        "{experiment}\u{0}{config_canonical}\u{0}{seed}\u{0}v{experiment_version}\u{0}e{engine_version}\u{0}f{format_version}"
    );
    content_hash(material.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_input_sensitive() {
        let k = cache_key("fig4", r#"{"a":1}"#, 7, 1, 1, 1);
        assert_eq!(k, cache_key("fig4", r#"{"a":1}"#, 7, 1, 1, 1));
        assert_eq!(k.len(), 32);
        // Every component of the key material matters.
        assert_ne!(k, cache_key("fig5", r#"{"a":1}"#, 7, 1, 1, 1));
        assert_ne!(k, cache_key("fig4", r#"{"a":2}"#, 7, 1, 1, 1));
        assert_ne!(k, cache_key("fig4", r#"{"a":1}"#, 8, 1, 1, 1));
        assert_ne!(k, cache_key("fig4", r#"{"a":1}"#, 7, 2, 1, 1));
        assert_ne!(k, cache_key("fig4", r#"{"a":1}"#, 7, 1, 2, 1));
        assert_ne!(k, cache_key("fig4", r#"{"a":1}"#, 7, 1, 1, 2));
    }

    #[test]
    fn engine_bump_invalidates_heap_era_keys() {
        // Results cached under the heap-based engine (version 1) must be
        // misses for the calendar engine (version 2) and onward.
        let heap_era = cache_key("fig4_contention", r#"{"n":4}"#, 0, 1, 1, 1);
        let current = cache_key(
            "fig4_contention",
            r#"{"n":4}"#,
            0,
            1,
            sim_core::ENGINE_VERSION,
            1,
        );
        assert_ne!(heap_era, current);
    }

    #[test]
    fn content_hash_differs_on_small_changes() {
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\x00"));
    }
}
