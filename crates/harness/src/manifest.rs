//! Run manifests: the per-invocation record of what a sweep did.
//!
//! One manifest is written per harness invocation to
//! `results/<experiment>/manifest.json` (latest wins) and appended to
//! `results/<experiment>/manifest-history.jsonl`, so both "what just
//! happened" and "how did this change over time" stay answerable. The
//! manifest carries wall time, per-stage timings, run/cached/failed
//! counts and the run's artifact digest — the digest is how the
//! determinism guarantee (same artifacts at any `--threads`) is
//! checked end to end.

use std::io::{self, Write as _};
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::experiment::{Outcome, RunRecord};
use crate::hash::content_hash;
use crate::value::Value;

/// Summary of one harness invocation.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Experiment name.
    pub experiment: String,
    /// Master seed the sweep ran with.
    pub seed: u64,
    /// Worker thread count used.
    pub threads: usize,
    /// Total configs in the sweep.
    pub total: usize,
    /// Configs actually executed this invocation.
    pub executed: usize,
    /// Configs served from the result cache.
    pub cached: usize,
    /// Configs that did not produce an artifact (error, panic, timeout
    /// or skip); this is what drives the process exit code.
    pub failed: usize,
    /// Configs whose every attempt overran the cell watchdog.
    pub timed_out: usize,
    /// Configs never started because the sweep aborted first.
    pub skipped: usize,
    /// Configs quarantined after exhausting their retry budget.
    pub quarantined: usize,
    /// Whether a `[monitor-abort]` violation stopped the sweep early.
    pub aborted: bool,
    /// End-to-end wall time of the invocation, ms.
    pub wall_ms: f64,
    /// Per-stage wall timings `(stage, ms)` in execution order.
    pub stages: Vec<(String, f64)>,
    /// Hash over every artifact hash in config order — identical runs
    /// produce identical digests, whatever the thread count.
    pub artifact_digest: String,
    /// Unix timestamp (ms) when the invocation started.
    pub started_unix_ms: u64,
    /// Per-cell wall-time / cache-hit / event-count stats, config order.
    pub cells: Vec<CellStat>,
    /// Telemetry events accepted across all cells (0 with telemetry off).
    pub telemetry_events: u64,
}

/// One cell's slice of the manifest.
#[derive(Debug, Clone)]
pub struct CellStat {
    /// The config's human label.
    pub label: String,
    /// Whether the artifact came from the result cache.
    pub from_cache: bool,
    /// Wall time producing (or loading) the artifact, ms.
    pub elapsed_ms: f64,
    /// Telemetry events the cell's session accepted.
    pub events: u64,
    /// Events evicted from the trace ring (0 unless the cell overflowed).
    pub dropped_events: u64,
    /// Samples recorded across the cell's metrics histograms.
    pub metric_samples: u64,
    /// How many times the cell executed (0 = cache hit or skipped).
    pub attempts: u32,
    /// Whether the cell was quarantined as a repeat offender.
    pub quarantined: bool,
    /// Ready-to-paste minimal-repro command for failed cells.
    pub repro: Option<String>,
}

impl Manifest {
    /// Builds a manifest from the sweep's records and timings.
    pub fn from_records(
        experiment: &str,
        seed: u64,
        threads: usize,
        records: &[RunRecord],
        stages: Vec<(String, f64)>,
        wall_ms: f64,
    ) -> Manifest {
        let cached = records.iter().filter(|r| r.from_cache).count();
        let failed = records.iter().filter(|r| r.outcome.is_failure()).count();
        let timed_out = records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::TimedOut { .. }))
            .count();
        let skipped = records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Skipped { .. }))
            .count();
        let quarantined = records.iter().filter(|r| r.quarantined).count();
        let aborted = records.iter().any(|r| match &r.outcome {
            Outcome::Failed { message, .. } => message.starts_with("[monitor-abort]"),
            Outcome::Skipped { .. } => true,
            _ => false,
        });
        // Digest: artifact content hashes in config order, failures
        // folded in by message so they also reproduce.
        let mut material = String::new();
        for r in records {
            match &r.outcome {
                Outcome::Done(a) => {
                    material.push_str(&content_hash(a.to_value().encode().as_bytes()));
                }
                Outcome::Failed { message, .. } => {
                    material.push_str("failed:");
                    material.push_str(message);
                }
                Outcome::TimedOut { timeout_ms } => {
                    material.push_str(&format!("timed-out:{timeout_ms}"));
                }
                Outcome::Skipped { reason } => {
                    material.push_str("skipped:");
                    material.push_str(reason);
                }
            }
            material.push('\n');
        }
        let cells: Vec<CellStat> = records
            .iter()
            .map(|r| {
                let (events, dropped, samples) = match &r.telemetry {
                    Some(t) => (
                        t.total_events,
                        t.dropped_events,
                        t.metrics
                            .as_ref()
                            .map(|m| m.histogram_samples())
                            .unwrap_or(0),
                    ),
                    None => (0, 0, 0),
                };
                CellStat {
                    label: r.config.label(),
                    from_cache: r.from_cache,
                    elapsed_ms: r.elapsed_ms,
                    events,
                    dropped_events: dropped,
                    metric_samples: samples,
                    attempts: r.attempts,
                    quarantined: r.quarantined,
                    repro: r.repro.clone(),
                }
            })
            .collect();
        let telemetry_events = cells.iter().map(|c| c.events).sum();
        Manifest {
            experiment: experiment.to_string(),
            seed,
            threads,
            total: records.len(),
            executed: records.len() - cached - skipped,
            cached,
            failed,
            timed_out,
            skipped,
            quarantined,
            aborted,
            wall_ms,
            stages,
            artifact_digest: content_hash(material.as_bytes()),
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            cells,
            telemetry_events,
        }
    }

    /// Fraction of configs served from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cached as f64 / self.total as f64
        }
    }

    /// The manifest as a JSON value.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.set("experiment", self.experiment.as_str());
        v.set("seed", self.seed);
        v.set("threads", self.threads);
        v.set("configs_total", self.total);
        v.set("configs_executed", self.executed);
        v.set("configs_cached", self.cached);
        v.set("configs_failed", self.failed);
        v.set("configs_timed_out", self.timed_out);
        v.set("configs_skipped", self.skipped);
        v.set("configs_quarantined", self.quarantined);
        v.set("aborted", self.aborted);
        v.set("wall_ms", self.wall_ms);
        let mut stages = Value::object();
        for (name, ms) in &self.stages {
            stages.set(name, *ms);
        }
        v.set("stage_ms", stages);
        v.set("artifact_digest", self.artifact_digest.as_str());
        v.set("started_unix_ms", self.started_unix_ms);
        v.set("cache_hit_rate", self.cache_hit_rate());
        v.set("telemetry_events", self.telemetry_events);
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                let mut cell = Value::object();
                cell.set("label", c.label.as_str());
                cell.set("from_cache", c.from_cache);
                cell.set("elapsed_ms", c.elapsed_ms);
                cell.set("events", c.events);
                cell.set("dropped_events", c.dropped_events);
                cell.set("metric_samples", c.metric_samples);
                cell.set("attempts", u64::from(c.attempts));
                cell.set("quarantined", c.quarantined);
                if let Some(repro) = &c.repro {
                    cell.set("repro", repro.as_str());
                }
                cell
            })
            .collect();
        v.set("cells", Value::Array(cells));
        v
    }

    /// Writes `manifest.json` (replace) and appends to
    /// `manifest-history.jsonl` under `results/<experiment>/`.
    pub fn write(&self, results_root: &Path) -> io::Result<()> {
        let dir = results_root.join(&self.experiment);
        std::fs::create_dir_all(&dir)?;
        let encoded = self.to_value().encode();
        std::fs::write(dir.join("manifest.json"), &encoded)?;
        let mut history = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("manifest-history.jsonl"))?;
        writeln!(history, "{encoded}")?;
        Ok(())
    }

    /// One-line console summary.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "[{}] {} configs in {:.1} ms on {} threads — {} run, {} cached ({:.0}% hit), {} failed; digest {}",
            self.experiment,
            self.total,
            self.wall_ms,
            self.threads,
            self.executed,
            self.cached,
            self.cache_hit_rate() * 100.0,
            self.failed,
            &self.artifact_digest[..16.min(self.artifact_digest.len())],
        );
        if self.timed_out > 0 {
            line.push_str(&format!("; {} timed out", self.timed_out));
        }
        if self.quarantined > 0 {
            line.push_str(&format!("; {} quarantined", self.quarantined));
        }
        if self.aborted {
            line.push_str(&format!("; ABORTED ({} skipped)", self.skipped));
        }
        if self.telemetry_events > 0 {
            line.push_str(&format!("; {} trace events", self.telemetry_events));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Artifact, Config};

    fn record(i: usize, rendered: &str, cached: bool) -> RunRecord {
        RunRecord {
            index: i,
            config: Config::new().with("i", i as u64),
            seed: i as u64,
            cache_key: format!("k{i}"),
            outcome: Outcome::Done(Artifact::text(rendered)),
            from_cache: cached,
            elapsed_ms: 1.0,
            telemetry: None,
            attempts: if cached { 0 } else { 1 },
            quarantined: false,
            repro: None,
        }
    }

    fn with_outcome(mut r: RunRecord, outcome: Outcome) -> RunRecord {
        r.from_cache = false;
        r.outcome = outcome;
        r
    }

    #[test]
    fn counts_and_digest_are_content_based() {
        let a = vec![record(0, "x", false), record(1, "y", true)];
        let m1 = Manifest::from_records("unit", 1, 4, &a, vec![], 10.0);
        assert_eq!((m1.total, m1.executed, m1.cached, m1.failed), (2, 1, 1, 0));
        // Same artifacts, different scheduling metadata → same digest.
        let b = vec![record(0, "x", true), record(1, "y", false)];
        let m2 = Manifest::from_records("unit", 1, 1, &b, vec![], 99.0);
        assert_eq!(m1.artifact_digest, m2.artifact_digest);
        // Different artifact content → different digest.
        let c = vec![record(0, "x", false), record(1, "z", false)];
        let m3 = Manifest::from_records("unit", 1, 4, &c, vec![], 10.0);
        assert_ne!(m1.artifact_digest, m3.artifact_digest);
    }

    #[test]
    fn supervision_outcomes_are_counted_and_folded_into_the_digest() {
        let mut quarantined =
            with_outcome(record(1, "", false), Outcome::TimedOut { timeout_ms: 50 });
        quarantined.attempts = 3;
        quarantined.quarantined = true;
        quarantined.repro = Some("unit --seed 1 --force --only \"i=1\"".to_string());
        let records = vec![
            record(0, "x", false),
            quarantined,
            with_outcome(
                record(2, "", false),
                Outcome::Skipped {
                    reason: "[monitor-abort] planted".to_string(),
                },
            ),
        ];
        let m = Manifest::from_records("unit", 1, 2, &records, vec![], 10.0);
        assert_eq!((m.total, m.executed, m.failed), (3, 2, 2));
        assert_eq!((m.timed_out, m.skipped, m.quarantined), (1, 1, 1));
        assert!(m.aborted);
        let line = m.summary_line();
        assert!(
            line.contains("1 timed out") && line.contains("ABORTED"),
            "{line}"
        );
        // New outcome kinds are digest material: a different timeout or
        // skip reason is a different run.
        let other = vec![
            record(0, "x", false),
            with_outcome(record(1, "", false), Outcome::TimedOut { timeout_ms: 99 }),
            records[2].clone(),
        ];
        let m2 = Manifest::from_records("unit", 1, 2, &other, vec![], 10.0);
        assert_ne!(m.artifact_digest, m2.artifact_digest);
        // The repro command survives into the JSON cells.
        let v = m.to_value();
        let cells = match v.get("cells") {
            Some(Value::Array(cells)) => cells,
            other => panic!("cells missing: {other:?}"),
        };
        assert_eq!(
            cells[1].get("repro").and_then(Value::as_str),
            Some("unit --seed 1 --force --only \"i=1\"")
        );
        assert_eq!(cells[1].get("attempts").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("aborted").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn write_produces_manifest_and_history() {
        let root =
            std::env::temp_dir().join(format!("ragnar-harness-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let records = vec![record(0, "x", false)];
        let m = Manifest::from_records("unit", 1, 1, &records, vec![("run".into(), 5.0)], 6.0);
        m.write(&root).expect("write");
        m.write(&root).expect("write twice");
        let manifest = std::fs::read_to_string(root.join("unit/manifest.json")).expect("read");
        let v = Value::parse(&manifest).expect("parse");
        assert_eq!(v.get("configs_total").and_then(Value::as_i64), Some(1));
        let history =
            std::fs::read_to_string(root.join("unit/manifest-history.jsonl")).expect("read");
        assert_eq!(history.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }
}
