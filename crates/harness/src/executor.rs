//! The parallel sweep executor.
//!
//! Configs are distributed round-robin over per-worker deques; workers
//! drain their own queue first and then steal from siblings (crossbeam
//! deque topology), so a straggler config never idles the rest of the
//! pool. Determinism is preserved at any thread count because each
//! config's seed is derived from the config's *content*
//! ([`sim_core::derive_seed`] over its canonical encoding), never from
//! scheduling order.
//!
//! The executor is also the harness's supervision layer:
//!
//! * A panicking config is caught, recorded as a failure, and the sweep
//!   continues — one bad combination in a 6000-cell grid costs one
//!   cell, not the run. Panic-hook suppression is scoped to the cell
//!   threads via [`sim_core::supervised_section`]; panics on threads
//!   nobody supervises stay loud.
//! * With [`ExecOptions::cell_timeout`] set, each attempt runs on its
//!   own watchdog-monitored thread; an attempt that overruns its budget
//!   is declared hung and the worker moves on (the hung thread is
//!   joined at sweep end, so process exit waits for it, but scheduling
//!   does not).
//! * With [`ExecOptions::retries`] > 0, a failed or hung attempt is
//!   retried with the *same* seed after a seed-deterministic
//!   exponential backoff ([`retry_backoff`]); a cell that fails every
//!   attempt is quarantined as a repeat offender and its record carries
//!   a ready-to-paste minimal-repro command.
//! * A panic message starting with `[monitor-abort]` (the
//!   [`sim_core::ViolationPolicy::AbortRun`] spelling) trips a
//!   sweep-wide abort: cells not yet started are recorded as
//!   [`Outcome::Skipped`], already-running cells finish, and everything
//!   completed so far is salvaged — per-cell results are persisted as
//!   they finish, so the store and manifest stay crash-consistent.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use std::thread::Scope;
use std::time::{Duration, Instant};

use crossbeam::deque::{Stealer, Worker};
use ragnar_telemetry::{
    ActorId, ArgValue, Event, EventKind, Session, SessionReport, Target, TargetSet,
};

use crate::cache::ResultStore;
use crate::experiment::{Artifact, Config, Experiment, Outcome, RunRecord};
use crate::hash;

/// Events buffered per traced cell before the ring starts evicting the
/// oldest (evictions are counted and reported, never silent).
pub const TRACE_RING_CAPACITY: usize = 1 << 20;

/// How long a sweep must run before the progress reporter speaks up —
/// quick sweeps finish silently.
const PROGRESS_AFTER: Duration = Duration::from_secs(2);

/// Cadence of the progress line once the reporter is engaged.
const PROGRESS_PERIOD: Duration = Duration::from_millis(500);

/// What the executor should observe about each cell. Telemetry never
/// enters configs or cache keys — it is an observer, not an input.
#[derive(Debug, Clone)]
pub struct TelemetrySpec {
    /// Buffer structured trace events per cell.
    pub trace: bool,
    /// Which layers' events to accept when tracing.
    pub filter: TargetSet,
    /// Collect a per-cell metrics report.
    pub metrics: bool,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            trace: false,
            filter: TargetSet::ALL,
            metrics: false,
        }
    }
}

impl TelemetrySpec {
    /// Whether any observation is requested.
    pub fn enabled(&self) -> bool {
        self.trace || self.metrics
    }

    fn session(&self) -> Session {
        if self.trace {
            Session::ring(self.filter, TRACE_RING_CAPACITY, self.metrics)
        } else {
            Session::metrics_only()
        }
    }
}

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker thread count (1 = run inline on the caller).
    pub threads: usize,
    /// Recompute every config even when a cache entry matches.
    pub force: bool,
    /// Per-cell observation. When enabled, cache reads are bypassed so
    /// every cell actually executes under its session (telemetry can
    /// only observe work that happens); cache writes still refresh the
    /// store, and keys are unchanged — artifacts are telemetry-invariant.
    pub telemetry: TelemetrySpec,
    /// Wall-clock watchdog per attempt. `None` (default) trusts cells
    /// to terminate; `Some(budget)` runs each attempt on its own thread
    /// and declares it hung past the budget.
    pub cell_timeout: Option<Duration>,
    /// Extra attempts after a failed or hung first attempt (default 0).
    /// Retries reuse the cell's seed — a deterministic failure fails
    /// every rung of the ladder and ends quarantined.
    pub retries: u32,
    /// Skip cache reads (writes still happen). Set by supervision modes
    /// (`--monitors`, `--exec-chaos-seed`) whose whole point is that the
    /// cell actually executes; keys are unchanged, so the refreshed
    /// entries stay interchangeable with unsupervised ones.
    pub bypass_cache_reads: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: default_threads(),
            force: false,
            telemetry: TelemetrySpec::default(),
            cell_timeout: None,
            retries: 0,
            bypass_cache_reads: false,
        }
    }
}

/// The machine's available parallelism (≥ 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the seed for one config of one experiment.
///
/// Depends only on `(master_seed, experiment name, config content)`, so
/// every schedule — any thread count, any steal pattern, a resumed
/// partial sweep — hands the config the same seed.
pub fn config_seed(master_seed: u64, experiment: &str, config: &Config) -> u64 {
    sim_core::derive_seed(master_seed, &format!("{experiment}/{}", config.canonical()))
}

/// The delay before retry `attempt` (1-based: the sleep after the
/// first failed attempt is `retry_backoff(seed, 1)`).
///
/// Exponential base (25 ms, doubling, capped at 1.6 s) plus a jitter in
/// `[0, base)` derived from the cell seed — a pure function of
/// `(cell_seed, attempt)`, so reschedules are reproducible run over run
/// while distinct cells still decorrelate.
pub fn retry_backoff(cell_seed: u64, attempt: u32) -> Duration {
    let base_ms = 25u64 << attempt.saturating_sub(1).min(6);
    let jitter_ms = sim_core::derive_seed(cell_seed, &format!("retry-jitter/{attempt}")) % base_ms;
    Duration::from_millis(base_ms + jitter_ms)
}

/// Sweep-wide abort latch: set by the first `[monitor-abort]` panic,
/// read by workers before starting each cell.
struct AbortState(Mutex<Option<String>>);

impl AbortState {
    fn reason(&self) -> Option<String> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    fn trip(&self, reason: &str) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_or_insert_with(|| reason.to_string());
    }
}

/// Everything a worker needs to run cells; borrowed for the sweep.
struct SweepCtx<'env> {
    exp: &'env dyn Experiment,
    configs: &'env [Config],
    master_seed: u64,
    store: Option<&'env ResultStore>,
    opts: &'env ExecOptions,
    slots: &'env [Mutex<Option<RunRecord>>],
    completed: &'env AtomicUsize,
    /// Telemetry events accepted across finished cells, for the
    /// progress reporter's events/s figure.
    events: &'env AtomicU64,
    abort: &'env AbortState,
}

/// How one attempt of one cell ended.
enum AttemptEnd {
    /// The attempt ran to completion (success, error or caught panic).
    Finished(
        Result<Result<Artifact, String>, Box<dyn std::any::Any + Send>>,
        Option<SessionReport>,
    ),
    /// The attempt overran the watchdog budget; its thread is still
    /// running and will be joined at sweep end. Carries whatever the
    /// cell's session had observed by the time the watchdog fired — the
    /// salvage path: partial metrics beat no metrics when diagnosing
    /// why a cell hung.
    Hung(Option<SessionReport>),
    /// The attempt thread vanished without reporting (its channel
    /// disconnected) — something outside `catch_unwind`'s reach died.
    Died(Option<SessionReport>),
}

/// Runs one attempt, inline or under the watchdog.
///
/// The telemetry session is owned by the *coordinator* side and only
/// its handles cross into the attempt thread: when the watchdog fires,
/// the coordinator can still harvest everything the cell recorded up to
/// that point (the ring and registry are shared behind locks, so a
/// still-running hung thread cannot corrupt the snapshot).
fn run_attempt<'scope, 'env: 'scope>(
    exp: &'env dyn Experiment,
    config: &'env Config,
    seed: u64,
    opts: &'env ExecOptions,
    scope: &'scope Scope<'scope, 'env>,
) -> AttemptEnd {
    let session = opts.telemetry.enabled().then(|| opts.telemetry.session());
    let handles = session.as_ref().map(|s| (s.tracer(), s.metrics()));
    let body = move || {
        // Mark the thread supervised so the gate hook stays quiet: the
        // executor reports caught panics itself, with cell context.
        let _supervised = sim_core::supervised_section();
        let _guard = handles.map(|(tracer, metrics)| ragnar_telemetry::install(tracer, metrics));
        panic::catch_unwind(AssertUnwindSafe(|| exp.run(config, seed)))
    };
    match opts.cell_timeout {
        None => AttemptEnd::Finished(body(), session.map(Session::finish)),
        Some(budget) => {
            let (tx, rx) = mpsc::channel();
            scope.spawn(move || {
                // The receiver may be long gone (watchdog fired); a dead
                // channel just means the result is discarded.
                let _ = tx.send(body());
            });
            match rx.recv_timeout(budget) {
                Ok(result) => AttemptEnd::Finished(result, session.map(Session::finish)),
                Err(RecvTimeoutError::Timeout) => AttemptEnd::Hung(session.map(Session::finish)),
                Err(RecvTimeoutError::Disconnected) => {
                    AttemptEnd::Died(session.map(Session::finish))
                }
            }
        }
    }
}

/// Appends the executor's supervision verdicts to a cell's trace as
/// synthesized `Target::Harness` instants — one `retry` per extra
/// attempt, a `watchdog_timeout` when every attempt overran the budget,
/// and a `quarantine` marker for repeat offenders. All fields are
/// derived from deterministic per-cell state (attempt counts and
/// outcomes), never from wall-clock, so traces stay byte-identical at
/// any thread count.
fn append_supervisor_events(
    telemetry: &mut SessionReport,
    outcome: &Outcome,
    attempts: u32,
    quarantined: bool,
) {
    let mut push = |name: &'static str, args: Vec<(&'static str, ArgValue)>| {
        telemetry.events.push(Event {
            target: Target::Harness,
            name,
            actor: ActorId::GLOBAL,
            ts_ps: 0,
            kind: EventKind::Instant,
            args,
        });
        telemetry.total_events += 1;
    };
    for attempt in 2..=attempts {
        push(
            "retry",
            vec![("attempt", ArgValue::U64(u64::from(attempt)))],
        );
    }
    if let Outcome::TimedOut { timeout_ms } = outcome {
        push(
            "watchdog_timeout",
            vec![
                ("timeout_ms", ArgValue::U64(*timeout_ms)),
                ("attempts", ArgValue::U64(u64::from(attempts))),
            ],
        );
    }
    if quarantined {
        push(
            "quarantine",
            vec![("attempts", ArgValue::U64(u64::from(attempts)))],
        );
    }
}

/// Runs one cell end to end: cache probe, attempt ladder, record.
fn run_cell<'scope, 'env: 'scope>(
    ctx: &SweepCtx<'env>,
    index: usize,
    scope: &'scope Scope<'scope, 'env>,
) {
    let config = &ctx.configs[index];
    let exp = ctx.exp;
    let opts = ctx.opts;
    let seed = config_seed(ctx.master_seed, exp.name(), config);
    let key = hash::cache_key(
        exp.name(),
        &config.canonical(),
        seed,
        exp.version(),
        sim_core::ENGINE_VERSION,
        crate::cache::FORMAT_VERSION,
    );
    let t0 = Instant::now();

    let finish = |record: RunRecord| {
        *ctx.slots[index].lock().expect("slot poisoned") = Some(record);
        ctx.completed.fetch_add(1, Ordering::Relaxed);
    };
    let record =
        |outcome: Outcome, from_cache: bool, telemetry: Option<SessionReport>, attempts: u32| {
            let failed = outcome.is_failure();
            RunRecord {
                index,
                config: config.clone(),
                seed,
                cache_key: key.clone(),
                outcome,
                from_cache,
                elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                telemetry,
                attempts,
                quarantined: failed && attempts >= 2,
                repro: (failed && attempts > 0).then(|| {
                    format!(
                        "{} --seed {} --force --only \"{}\"",
                        exp.name(),
                        ctx.master_seed,
                        config.label()
                    )
                }),
            }
        };

    // A tripped abort skips everything not yet started; cells already
    // in flight on other workers run to completion and are kept.
    if let Some(reason) = ctx.abort.reason() {
        finish(record(Outcome::Skipped { reason }, false, None, 0));
        return;
    }

    if !opts.force && !opts.telemetry.enabled() && !opts.bypass_cache_reads {
        if let Some(hit) = ctx.store.and_then(|s| s.load(&key)) {
            finish(record(Outcome::Done(hit.artifact), true, None, 0));
            return;
        }
    }

    let max_attempts = opts.retries.saturating_add(1);
    let mut attempt = 0u32;
    let (outcome, telemetry) = loop {
        attempt += 1;
        match run_attempt(exp, config, seed, opts, scope) {
            AttemptEnd::Finished(Ok(Ok(artifact)), telemetry) => {
                if let Some(s) = ctx.store {
                    // A failed persist degrades caching, not correctness.
                    let _ = s.store(
                        &key,
                        config,
                        seed,
                        exp.version(),
                        &artifact,
                        t0.elapsed().as_secs_f64() * 1e3,
                    );
                }
                break (Outcome::Done(artifact), telemetry);
            }
            AttemptEnd::Finished(Ok(Err(message)), telemetry) => {
                if attempt >= max_attempts {
                    break (
                        Outcome::Failed {
                            message,
                            panicked: false,
                        },
                        telemetry,
                    );
                }
            }
            AttemptEnd::Finished(Err(payload), telemetry) => {
                let message = sim_core::panic_payload_message(payload.as_ref());
                let abort = message.starts_with("[monitor-abort]");
                if abort {
                    ctx.abort.trip(&message);
                }
                // An abort verdict is a judgement about the sweep, not a
                // flaky cell: never retried.
                if abort || attempt >= max_attempts {
                    break (
                        Outcome::Failed {
                            message,
                            panicked: true,
                        },
                        telemetry,
                    );
                }
            }
            AttemptEnd::Hung(telemetry) => {
                if attempt >= max_attempts {
                    let timeout_ms = opts.cell_timeout.map(|d| d.as_millis() as u64).unwrap_or(0);
                    // Salvage whatever the hung attempt observed: its
                    // partial session report rides on the record (and
                    // into a sidecar tagged incomplete) instead of
                    // vanishing with the stuck thread.
                    break (Outcome::TimedOut { timeout_ms }, telemetry);
                }
            }
            AttemptEnd::Died(telemetry) => {
                break (
                    Outcome::Failed {
                        message: "attempt thread died before reporting a result".to_string(),
                        panicked: true,
                    },
                    telemetry,
                );
            }
        }
        std::thread::sleep(retry_backoff(seed, attempt));
    };
    let mut telemetry = telemetry;
    if opts.telemetry.trace {
        let quarantined = outcome.is_failure() && attempt >= 2;
        if let Some(t) = telemetry.as_mut() {
            append_supervisor_events(t, &outcome, attempt, quarantined);
        }
    }
    if let Some(t) = &telemetry {
        ctx.events.fetch_add(t.total_events, Ordering::Relaxed);
    }
    finish(record(outcome, false, telemetry, attempt));
}

/// Runs every config of `exp`, in parallel, through the cache.
///
/// Records are returned in `configs` order regardless of scheduling.
/// When `store` is `Some`, finished cells are persisted and matching
/// cells are served from disk (unless `opts.force`).
pub fn execute(
    exp: &dyn Experiment,
    configs: &[Config],
    master_seed: u64,
    store: Option<&ResultStore>,
    opts: &ExecOptions,
) -> Vec<RunRecord> {
    let slots: Vec<Mutex<Option<RunRecord>>> = configs.iter().map(|_| Mutex::new(None)).collect();
    let threads = opts.threads.clamp(1, configs.len().max(1));

    // Per-worker deques seeded round-robin, plus every sibling's stealer.
    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    for (i, _) in configs.iter().enumerate() {
        workers[i % threads].push(i);
    }

    // Panics inside `run` are part of normal sweep operation; the gate
    // hook silences them on exactly the supervised cell threads (see
    // `sim_core::supervise`) — unsupervised threads keep the loud
    // default, unlike the old globally-swallowing hook swap.
    sim_core::install_panic_gate();
    let completed = AtomicUsize::new(0);
    let events = AtomicU64::new(0);
    let abort = AbortState(Mutex::new(None));
    let ctx = SweepCtx {
        exp,
        configs,
        master_seed,
        store,
        opts,
        slots: &slots,
        completed: &completed,
        events: &events,
        abort: &abort,
    };

    std::thread::scope(|scope| {
        // Progress reporter: silent for quick sweeps, then a periodic
        // stderr line (cells done, events/s, ETA) for long ones. It only
        // reads counters — progress is wall-clock and must never become
        // trace or artifact material.
        {
            let ctx = &ctx;
            let total = configs.len();
            scope.spawn(move || {
                let started = Instant::now();
                loop {
                    let done = ctx.completed.load(Ordering::Relaxed);
                    if done >= total {
                        break;
                    }
                    let elapsed = started.elapsed();
                    if elapsed >= PROGRESS_AFTER && done > 0 {
                        let secs = elapsed.as_secs_f64();
                        let rate = done as f64 / secs;
                        let eta_s = (total - done) as f64 / rate;
                        // Trace-event throughput only exists with
                        // telemetry on; otherwise the line is cells+ETA.
                        let events = ctx.events.load(Ordering::Relaxed);
                        let rate_part = if events > 0 {
                            format!("{:.0} ev/s, ", events as f64 / secs)
                        } else {
                            String::new()
                        };
                        ragnar_telemetry::progress(format!(
                            "{}/{} cells ({rate_part}ETA {:.0}s)",
                            done, total, eta_s
                        ));
                    }
                    std::thread::sleep(PROGRESS_PERIOD);
                }
            });
        }
        for worker in &workers {
            let ctx = &ctx;
            let stealers = &stealers;
            scope.spawn(move || {
                loop {
                    // Own deque first, then steal from siblings.
                    let task = worker
                        .pop()
                        .or_else(|| stealers.iter().find_map(|s| s.steal().success()));
                    match task {
                        Some(index) => run_cell(ctx, index, scope),
                        None => {
                            // All deques observed empty: if every config
                            // is accounted for, we are done; otherwise a
                            // sibling still holds in-flight work that
                            // might never produce more tasks here, so
                            // yield and re-scan.
                            if ctx.completed.load(Ordering::Relaxed) >= configs.len() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every config produces a record")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Cli;
    use crate::experiment::Artifact;
    use std::collections::HashMap;

    struct Parity;

    impl Experiment for Parity {
        fn name(&self) -> &'static str {
            "parity-unit"
        }
        fn params(&self, _cli: &Cli) -> Vec<Config> {
            (0..64u64).map(|i| Config::new().with("i", i)).collect()
        }
        fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
            let i = config.u64("i").expect("i");
            if i == 13 {
                panic!("unlucky combination");
            }
            if i == 21 {
                return Err("known-bad cell".to_string());
            }
            Ok(Artifact::text(format!("cell {i}\n")).with_metric("seed", seed))
        }
    }

    fn configs() -> Vec<Config> {
        Parity.params(&Cli::default())
    }

    #[test]
    fn records_in_order_with_isolated_failures() {
        let cfgs = configs();
        let records = execute(
            &Parity,
            &cfgs,
            1,
            None,
            &ExecOptions {
                threads: 8,
                ..Default::default()
            },
        );
        assert_eq!(records.len(), 64);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.config.u64("i"), Some(i as u64));
        }
        match &records[13].outcome {
            Outcome::Failed { message, panicked } => {
                assert!(panicked);
                assert!(message.contains("unlucky"));
            }
            other => panic!("expected panic failure, got {other:?}"),
        }
        assert!(records[13]
            .repro
            .as_deref()
            .is_some_and(|r| r.contains("--only") && r.contains("i=13")));
        assert!(!records[13].quarantined, "no retries -> no quarantine");
        match &records[21].outcome {
            Outcome::Failed { message, panicked } => {
                assert!(!panicked);
                assert_eq!(message, "known-bad cell");
            }
            other => panic!("expected error failure, got {other:?}"),
        }
        assert_eq!(
            records
                .iter()
                .filter(|r| matches!(r.outcome, Outcome::Done(_)))
                .count(),
            62
        );
        assert!(records
            .iter()
            .all(|r| r.attempts == 1 && r.repro.is_some() == r.outcome.is_failure()));
    }

    #[test]
    fn seeds_depend_on_content_not_schedule() {
        let cfgs = configs();
        let serial = execute(
            &Parity,
            &cfgs,
            7,
            None,
            &ExecOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let parallel = execute(
            &Parity,
            &cfgs,
            7,
            None,
            &ExecOptions {
                threads: 8,
                ..Default::default()
            },
        );
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                a.outcome.artifact().map(|x| x.to_value().encode()),
                b.outcome.artifact().map(|x| x.to_value().encode()),
            );
        }
        // Distinct master seeds shift every cell's seed.
        let other = execute(
            &Parity,
            &cfgs,
            8,
            None,
            &ExecOptions {
                threads: 1,
                ..Default::default()
            },
        );
        assert!(serial.iter().zip(&other).all(|(a, b)| a.seed != b.seed));
    }

    #[test]
    fn backoff_is_seeded_exponential_and_deterministic() {
        for attempt in 1..=8u32 {
            assert_eq!(
                retry_backoff(42, attempt),
                retry_backoff(42, attempt),
                "backoff must be a pure function"
            );
        }
        // Exponential envelope: base doubles per rung (cap at rung 7),
        // jitter stays below one base.
        for attempt in 1..=6u32 {
            let base = 25u64 << (attempt - 1);
            let d = retry_backoff(7, attempt).as_millis() as u64;
            assert!((base..2 * base).contains(&d), "attempt {attempt}: {d} ms");
        }
        assert_eq!(retry_backoff(7, 7), retry_backoff(7, 7));
        assert!(retry_backoff(7, 60) < Duration::from_millis(2 * 25 * 64 + 1));
        // Different cells decorrelate their jitter.
        assert!((1..=8u32).any(|a| retry_backoff(1, a) != retry_backoff(2, a)));
    }

    /// A transiently-failing cell heals on retry with the same seed; a
    /// deterministic failure climbs the whole ladder and is quarantined.
    struct Flaky {
        attempts_seen: Mutex<HashMap<u64, u32>>,
    }

    impl Experiment for Flaky {
        fn name(&self) -> &'static str {
            "flaky-unit"
        }
        fn params(&self, _cli: &Cli) -> Vec<Config> {
            (0..6u64).map(|i| Config::new().with("i", i)).collect()
        }
        fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
            let i = config.u64("i").expect("i");
            // Count the attempt and release the lock before any panic,
            // so a wobble never poisons the counter for other cells.
            let n = {
                let mut seen = self
                    .attempts_seen
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let n = seen.entry(i).or_insert(0);
                *n += 1;
                *n
            };
            if i == 3 && n == 1 {
                panic!("transient wobble");
            }
            if i == 5 {
                return Err("deterministically bad".to_string());
            }
            Ok(Artifact::text(format!("cell {i} seed {seed}\n")))
        }
    }

    #[test]
    fn flaky_cell_heals_and_repeat_offender_is_quarantined() {
        let exp = Flaky {
            attempts_seen: Mutex::new(HashMap::new()),
        };
        let cfgs = exp.params(&Cli::default());
        let records = execute(
            &exp,
            &cfgs,
            3,
            None,
            &ExecOptions {
                threads: 2,
                retries: 1,
                ..Default::default()
            },
        );
        // The wobbly cell healed on its second attempt.
        assert!(matches!(records[3].outcome, Outcome::Done(_)));
        assert_eq!(records[3].attempts, 2);
        assert!(!records[3].quarantined);
        assert!(records[3].repro.is_none());
        // The deterministic failure burned every attempt and is
        // quarantined with a paste-ready repro.
        assert!(matches!(records[5].outcome, Outcome::Failed { .. }));
        assert_eq!(records[5].attempts, 2);
        assert!(records[5].quarantined);
        let repro = records[5].repro.as_deref().expect("repro command");
        assert!(
            repro.contains("flaky-unit") && repro.contains("--only \"i=5\""),
            "got: {repro}"
        );
        assert!(repro.contains("--seed 3") && repro.contains("--force"));
        // Healthy cells ran exactly once.
        assert!(records[..3].iter().all(|r| r.attempts == 1));
    }

    /// A cell that sleeps past the watchdog budget is recorded as
    /// `TimedOut` while the rest of the sweep completes normally.
    struct Sleeper;

    impl Experiment for Sleeper {
        fn name(&self) -> &'static str {
            "sleeper-unit"
        }
        fn params(&self, _cli: &Cli) -> Vec<Config> {
            (0..4u64).map(|i| Config::new().with("i", i)).collect()
        }
        fn run(&self, config: &Config, _seed: u64) -> Result<Artifact, String> {
            ragnar_telemetry::metrics().counter_add("sleeper.started", 1);
            if config.u64("i") == Some(2) {
                std::thread::sleep(Duration::from_millis(400));
            }
            Ok(Artifact::text("ok\n"))
        }
    }

    #[test]
    fn hung_cell_times_out_with_repro_and_sweep_continues() {
        let records = execute(
            &Sleeper,
            &Sleeper.params(&Cli::default()),
            0,
            None,
            &ExecOptions {
                threads: 2,
                cell_timeout: Some(Duration::from_millis(40)),
                retries: 1,
                ..Default::default()
            },
        );
        match &records[2].outcome {
            Outcome::TimedOut { timeout_ms } => assert_eq!(*timeout_ms, 40),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(records[2].attempts, 2, "a hung attempt is retried");
        assert!(records[2].quarantined);
        assert!(records[2]
            .repro
            .as_deref()
            .is_some_and(|r| r.contains("--only \"i=2\"")));
        for (i, r) in records.iter().enumerate() {
            if i != 2 {
                assert!(matches!(r.outcome, Outcome::Done(_)), "cell {i} collateral");
            }
        }
    }

    /// The salvage path: a hung cell's session is harvested by the
    /// coordinator when the watchdog fires, so whatever the cell
    /// recorded before getting stuck survives — with the executor's
    /// supervision verdicts appended as synthesized trace events.
    #[test]
    fn hung_cell_salvages_partial_telemetry() {
        let records = execute(
            &Sleeper,
            &Sleeper.params(&Cli::default()),
            0,
            None,
            &ExecOptions {
                threads: 2,
                cell_timeout: Some(Duration::from_millis(40)),
                telemetry: TelemetrySpec {
                    trace: true,
                    filter: TargetSet::ALL,
                    metrics: true,
                },
                ..Default::default()
            },
        );
        assert!(matches!(records[2].outcome, Outcome::TimedOut { .. }));
        let t = records[2].telemetry.as_ref().expect("salvaged telemetry");
        let m = t.metrics.as_ref().expect("salvaged metrics");
        assert!(
            m.counters
                .iter()
                .any(|(k, v)| k == "sleeper.started" && *v >= 1),
            "pre-hang counter lost: {:?}",
            m.counters
        );
        let names: Vec<&str> = t.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"watchdog_timeout"), "got {names:?}");
        // Healthy cells carry no supervision verdicts.
        for i in [0usize, 1, 3] {
            let t = records[i].telemetry.as_ref().expect("telemetry");
            assert!(t
                .events
                .iter()
                .all(|e| !matches!(e.name, "watchdog_timeout" | "retry" | "quarantine")));
        }
    }

    /// Retry and quarantine verdicts appear as synthesized trace
    /// events; a healed cell shows its retry but no quarantine.
    #[test]
    fn supervisor_events_mark_retries_and_quarantine() {
        let exp = Flaky {
            attempts_seen: Mutex::new(HashMap::new()),
        };
        let records = execute(
            &exp,
            &exp.params(&Cli::default()),
            3,
            None,
            &ExecOptions {
                threads: 2,
                retries: 1,
                telemetry: TelemetrySpec {
                    trace: true,
                    filter: TargetSet::ALL,
                    metrics: false,
                },
                ..Default::default()
            },
        );
        let names = |i: usize| -> Vec<&str> {
            records[i]
                .telemetry
                .as_ref()
                .expect("telemetry")
                .events
                .iter()
                .map(|e| e.name)
                .collect()
        };
        // Cell 3 healed on attempt 2: one retry, no quarantine.
        let healed = names(3);
        assert_eq!(healed.iter().filter(|n| **n == "retry").count(), 1);
        assert!(!healed.contains(&"quarantine"), "got {healed:?}");
        // Cell 5 burned the ladder: retry + quarantine.
        let bad = names(5);
        assert!(
            bad.contains(&"retry") && bad.contains(&"quarantine"),
            "got {bad:?}"
        );
    }

    /// The synthesized supervisor track is deterministic: the same
    /// flaky sweep renders byte-identical trace JSON at any thread
    /// count, because the events are derived from per-cell attempt
    /// state (never wall-clock) and pinned at ts 0.
    #[test]
    fn supervisor_track_is_thread_count_invariant() {
        let trace = |threads: usize| {
            let exp = Flaky {
                attempts_seen: Mutex::new(HashMap::new()),
            };
            let records = execute(
                &exp,
                &exp.params(&Cli::default()),
                3,
                None,
                &ExecOptions {
                    threads,
                    retries: 1,
                    telemetry: TelemetrySpec {
                        trace: true,
                        filter: TargetSet::ALL,
                        metrics: false,
                    },
                    ..Default::default()
                },
            );
            let cells: Vec<ragnar_telemetry::TraceCell<'_>> = records
                .iter()
                .filter_map(|r| {
                    r.telemetry.as_ref().map(|t| ragnar_telemetry::TraceCell {
                        label: r.config.label(),
                        index: r.index,
                        events: &t.events,
                    })
                })
                .collect();
            ragnar_telemetry::chrome_trace_json(&cells)
        };
        let serial = trace(1);
        assert!(
            serial.contains("\"retry\"") && serial.contains("\"quarantine\""),
            "supervisor events missing from trace"
        );
        assert_eq!(
            serial,
            trace(4),
            "supervisor track differs between --threads 1 and --threads 4"
        );
    }

    /// A `[monitor-abort]` panic stops the sweep: the offending cell is
    /// failed without retry, and cells not yet started are skipped.
    struct Aborter;

    impl Experiment for Aborter {
        fn name(&self) -> &'static str {
            "aborter-unit"
        }
        fn params(&self, _cli: &Cli) -> Vec<Config> {
            (0..6u64).map(|i| Config::new().with("i", i)).collect()
        }
        fn run(&self, config: &Config, _seed: u64) -> Result<Artifact, String> {
            if config.u64("i") == Some(1) {
                panic!("[monitor-abort] packet conservation broken in cell 1");
            }
            Ok(Artifact::text("ok\n"))
        }
    }

    #[test]
    fn monitor_abort_fails_fast_and_skips_the_rest() {
        // threads=1 makes the schedule sequential, so exactly cells 2..6
        // are still unstarted when the abort lands.
        let records = execute(
            &Aborter,
            &Aborter.params(&Cli::default()),
            0,
            None,
            &ExecOptions {
                threads: 1,
                retries: 3,
                ..Default::default()
            },
        );
        assert!(matches!(records[0].outcome, Outcome::Done(_)));
        match &records[1].outcome {
            Outcome::Failed { message, panicked } => {
                assert!(*panicked && message.starts_with("[monitor-abort]"));
            }
            other => panic!("expected abort failure, got {other:?}"),
        }
        assert_eq!(records[1].attempts, 1, "abort verdicts are never retried");
        for r in &records[2..] {
            match &r.outcome {
                Outcome::Skipped { reason } => {
                    assert!(reason.starts_with("[monitor-abort]"), "got: {reason}");
                }
                other => panic!("cell {} should be skipped, got {other:?}", r.index),
            }
            assert_eq!(r.attempts, 0);
        }
    }
}
