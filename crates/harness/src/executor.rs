//! The parallel sweep executor.
//!
//! Configs are distributed round-robin over per-worker deques; workers
//! drain their own queue first and then steal from siblings (crossbeam
//! deque topology), so a straggler config never idles the rest of the
//! pool. Determinism is preserved at any thread count because each
//! config's seed is derived from the config's *content*
//! ([`sim_core::derive_seed`] over its canonical encoding), never from
//! scheduling order. A panicking config is caught, recorded as a
//! failure, and the sweep continues — one bad combination in a
//! 6000-cell grid costs one cell, not the run.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crossbeam::deque::{Stealer, Worker};
use ragnar_telemetry::{Session, TargetSet};

use crate::cache::ResultStore;
use crate::experiment::{Config, Experiment, Outcome, RunRecord};
use crate::hash;

/// Events buffered per traced cell before the ring starts evicting the
/// oldest (evictions are counted and reported, never silent).
pub const TRACE_RING_CAPACITY: usize = 1 << 20;

/// What the executor should observe about each cell. Telemetry never
/// enters configs or cache keys — it is an observer, not an input.
#[derive(Debug, Clone)]
pub struct TelemetrySpec {
    /// Buffer structured trace events per cell.
    pub trace: bool,
    /// Which layers' events to accept when tracing.
    pub filter: TargetSet,
    /// Collect a per-cell metrics report.
    pub metrics: bool,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            trace: false,
            filter: TargetSet::ALL,
            metrics: false,
        }
    }
}

impl TelemetrySpec {
    /// Whether any observation is requested.
    pub fn enabled(&self) -> bool {
        self.trace || self.metrics
    }

    fn session(&self) -> Session {
        if self.trace {
            Session::ring(self.filter, TRACE_RING_CAPACITY, self.metrics)
        } else {
            Session::metrics_only()
        }
    }
}

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker thread count (1 = run inline on the caller).
    pub threads: usize,
    /// Recompute every config even when a cache entry matches.
    pub force: bool,
    /// Per-cell observation. When enabled, cache reads are bypassed so
    /// every cell actually executes under its session (telemetry can
    /// only observe work that happens); cache writes still refresh the
    /// store, and keys are unchanged — artifacts are telemetry-invariant.
    pub telemetry: TelemetrySpec,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: default_threads(),
            force: false,
            telemetry: TelemetrySpec::default(),
        }
    }
}

/// The machine's available parallelism (≥ 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the seed for one config of one experiment.
///
/// Depends only on `(master_seed, experiment name, config content)`, so
/// every schedule — any thread count, any steal pattern, a resumed
/// partial sweep — hands the config the same seed.
pub fn config_seed(master_seed: u64, experiment: &str, config: &Config) -> u64 {
    sim_core::derive_seed(master_seed, &format!("{experiment}/{}", config.canonical()))
}

/// Runs every config of `exp`, in parallel, through the cache.
///
/// Records are returned in `configs` order regardless of scheduling.
/// When `store` is `Some`, finished cells are persisted and matching
/// cells are served from disk (unless `opts.force`).
pub fn execute(
    exp: &dyn Experiment,
    configs: &[Config],
    master_seed: u64,
    store: Option<&ResultStore>,
    opts: &ExecOptions,
) -> Vec<RunRecord> {
    let slots: Vec<Mutex<Option<RunRecord>>> = configs.iter().map(|_| Mutex::new(None)).collect();
    let threads = opts.threads.clamp(1, configs.len().max(1));

    // Per-worker deques seeded round-robin, plus every sibling's stealer.
    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    for (i, _) in configs.iter().enumerate() {
        workers[i % threads].push(i);
    }

    // Panics inside `run` are part of normal sweep operation; silence
    // the default hook's backtrace spew for the duration.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let completed = AtomicUsize::new(0);

    let run_one = |index: usize| {
        let config = &configs[index];
        let seed = config_seed(master_seed, exp.name(), config);
        let key = hash::cache_key(
            exp.name(),
            &config.canonical(),
            seed,
            exp.version(),
            sim_core::ENGINE_VERSION,
            crate::cache::FORMAT_VERSION,
        );
        let t0 = Instant::now();

        if !opts.force && !opts.telemetry.enabled() {
            if let Some(hit) = store.and_then(|s| s.load(&key)) {
                let record = RunRecord {
                    index,
                    config: config.clone(),
                    seed,
                    cache_key: key,
                    outcome: Outcome::Done(hit.artifact),
                    from_cache: true,
                    elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                    telemetry: None,
                };
                *slots[index].lock().expect("slot poisoned") = Some(record);
                completed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }

        let (result, telemetry) = if opts.telemetry.enabled() {
            let session = opts.telemetry.session();
            let guard = session.install();
            let result = panic::catch_unwind(AssertUnwindSafe(|| exp.run(config, seed)));
            drop(guard);
            (result, Some(session.finish()))
        } else {
            (
                panic::catch_unwind(AssertUnwindSafe(|| exp.run(config, seed))),
                None,
            )
        };
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        let outcome = match result {
            Ok(Ok(artifact)) => {
                if let Some(s) = store {
                    // A failed persist degrades caching, not correctness.
                    let _ = s.store(&key, config, seed, exp.version(), &artifact, elapsed_ms);
                }
                Outcome::Done(artifact)
            }
            Ok(Err(message)) => Outcome::Failed {
                message,
                panicked: false,
            },
            Err(payload) => Outcome::Failed {
                message: panic_message(payload.as_ref()),
                panicked: true,
            },
        };
        let record = RunRecord {
            index,
            config: config.clone(),
            seed,
            cache_key: key,
            outcome,
            from_cache: false,
            elapsed_ms,
            telemetry,
        };
        *slots[index].lock().expect("slot poisoned") = Some(record);
        completed.fetch_add(1, Ordering::Relaxed);
    };

    std::thread::scope(|scope| {
        for worker in &workers {
            scope.spawn(|| {
                loop {
                    // Own deque first, then steal from siblings.
                    let task = worker
                        .pop()
                        .or_else(|| stealers.iter().find_map(|s| s.steal().success()));
                    match task {
                        Some(index) => run_one(index),
                        None => {
                            // All deques observed empty: if every config
                            // is accounted for, we are done; otherwise a
                            // sibling still holds in-flight work that
                            // might never produce more tasks here, so
                            // yield and re-scan.
                            if completed.load(Ordering::Relaxed) >= configs.len() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    panic::set_hook(prev_hook);

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every config produces a record")
        })
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Cli;
    use crate::experiment::Artifact;

    struct Parity;

    impl Experiment for Parity {
        fn name(&self) -> &'static str {
            "parity-unit"
        }
        fn params(&self, _cli: &Cli) -> Vec<Config> {
            (0..64u64).map(|i| Config::new().with("i", i)).collect()
        }
        fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
            let i = config.u64("i").expect("i");
            if i == 13 {
                panic!("unlucky combination");
            }
            if i == 21 {
                return Err("known-bad cell".to_string());
            }
            Ok(Artifact::text(format!("cell {i}\n")).with_metric("seed", seed))
        }
    }

    fn configs() -> Vec<Config> {
        Parity.params(&Cli::default())
    }

    #[test]
    fn records_in_order_with_isolated_failures() {
        let cfgs = configs();
        let records = execute(
            &Parity,
            &cfgs,
            1,
            None,
            &ExecOptions {
                threads: 8,
                ..Default::default()
            },
        );
        assert_eq!(records.len(), 64);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.config.u64("i"), Some(i as u64));
        }
        match &records[13].outcome {
            Outcome::Failed { message, panicked } => {
                assert!(panicked);
                assert!(message.contains("unlucky"));
            }
            other => panic!("expected panic failure, got {other:?}"),
        }
        match &records[21].outcome {
            Outcome::Failed { message, panicked } => {
                assert!(!panicked);
                assert_eq!(message, "known-bad cell");
            }
            other => panic!("expected error failure, got {other:?}"),
        }
        assert_eq!(
            records
                .iter()
                .filter(|r| matches!(r.outcome, Outcome::Done(_)))
                .count(),
            62
        );
    }

    #[test]
    fn seeds_depend_on_content_not_schedule() {
        let cfgs = configs();
        let serial = execute(
            &Parity,
            &cfgs,
            7,
            None,
            &ExecOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let parallel = execute(
            &Parity,
            &cfgs,
            7,
            None,
            &ExecOptions {
                threads: 8,
                ..Default::default()
            },
        );
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                a.outcome.artifact().map(|x| x.to_value().encode()),
                b.outcome.artifact().map(|x| x.to_value().encode()),
            );
        }
        // Distinct master seeds shift every cell's seed.
        let other = execute(
            &Parity,
            &cfgs,
            8,
            None,
            &ExecOptions {
                threads: 1,
                ..Default::default()
            },
        );
        assert!(serial.iter().zip(&other).all(|(a, b)| a.seed != b.seed));
    }
}
