//! The content-addressed result store under `results/`.
//!
//! Every completed config writes one JSON file
//! `results/<experiment>/cells/<cache-key>.json` holding the config,
//! seed, versions and artifact. Because the file name is a hash of
//! everything that determines the result, re-running a sweep turns
//! already-computed cells into cache hits, and an interrupted sweep
//! resumes from whatever finished — writes go through a temp file +
//! rename so a kill mid-write never leaves a corrupt entry behind.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::experiment::{Artifact, Config};
use crate::hash::content_hash;
use crate::value::Value;

/// On-disk layout version; part of every cache key, so bumping it
/// invalidates all previous entries at once. v2 added the whole-entry
/// checksum trailer.
pub const FORMAT_VERSION: u32 = 2;

/// Trailer separating the JSON body from its whole-entry checksum.
const CHECKSUM_TRAILER: &str = "\nchecksum=";

/// A deserialized cache entry.
#[derive(Debug, Clone)]
pub struct StoredRun {
    /// The config that produced the artifact.
    pub config: Config,
    /// The seed it ran with.
    pub seed: u64,
    /// The artifact itself.
    pub artifact: Artifact,
    /// Hash of the artifact's canonical encoding.
    pub artifact_hash: String,
    /// Wall time of the original (non-cached) run, in ms.
    pub elapsed_ms: f64,
}

/// A per-experiment content-addressed artifact store.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
    experiment: String,
}

impl ResultStore {
    /// Opens (and creates) the store for `experiment` under `root`.
    pub fn open(root: &Path, experiment: &str) -> io::Result<ResultStore> {
        let dir = root.join(experiment).join("cells");
        fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            experiment: experiment.to_string(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the entry for `key`, if present and well-formed. A corrupt
    /// entry (interrupted write on a non-atomic filesystem, manual
    /// editing, bit rot) is treated as a miss, not an error: the cell
    /// simply re-runs.
    ///
    /// Two independent integrity layers must both pass: the whole-entry
    /// checksum trailer (catches any byte damage, including to metadata
    /// fields the artifact hash does not cover) and the recorded
    /// artifact hash (catches a substituted artifact with a consistently
    /// rewritten trailer).
    pub fn load(&self, key: &str) -> Option<StoredRun> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let (body, checksum) = text.rsplit_once(CHECKSUM_TRAILER)?;
        if content_hash(body.as_bytes()) != checksum.trim_end() {
            return None;
        }
        let v = Value::parse(body).ok()?;
        let artifact_value = v.get("artifact")?;
        let artifact = Artifact::from_value(artifact_value)?;
        let artifact_hash = content_hash(artifact_value.encode().as_bytes());
        // Refuse entries whose recorded hash no longer matches the
        // content — a truncated or tampered file must re-run.
        if v.get("artifact_hash")?.as_str()? != artifact_hash {
            return None;
        }
        Some(StoredRun {
            config: Config::from_value(v.get("config")?)?,
            seed: v.get("seed")?.as_i64()? as u64,
            artifact,
            artifact_hash,
            elapsed_ms: v.get("elapsed_ms")?.as_f64()?,
        })
    }

    /// Persists one completed config atomically and returns the
    /// artifact's content hash.
    pub fn store(
        &self,
        key: &str,
        config: &Config,
        seed: u64,
        experiment_version: u32,
        artifact: &Artifact,
        elapsed_ms: f64,
    ) -> io::Result<String> {
        let artifact_value = artifact.to_value();
        let artifact_hash = content_hash(artifact_value.encode().as_bytes());
        let mut entry = Value::object();
        entry.set("key", key);
        entry.set("experiment", self.experiment.as_str());
        entry.set("experiment_version", experiment_version);
        entry.set("engine_version", sim_core::ENGINE_VERSION);
        entry.set("format_version", FORMAT_VERSION);
        entry.set("config", Value::Object(config.entries().to_vec()));
        entry.set("seed", seed);
        entry.set("elapsed_ms", elapsed_ms);
        entry.set("artifact_hash", artifact_hash.as_str());
        entry.set("artifact", artifact_value);

        let final_path = self.path_for(key);
        let tmp_path = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        // Body, then a checksum over the exact body bytes: `load`
        // re-hashes everything above the trailer, so no single flipped,
        // dropped or inserted byte can survive into a cache hit.
        let body = entry.encode();
        let checksum = content_hash(body.as_bytes());
        fs::write(&tmp_path, format!("{body}{CHECKSUM_TRAILER}{checksum}"))?;
        fs::rename(&tmp_path, &final_path)?;
        Ok(artifact_hash)
    }

    /// Writes a cell's metrics report next to its entry as
    /// `<key>.metrics.json`. Sidecars are observational output — they are
    /// never read back, never hashed, and never count as cache entries.
    pub fn store_metrics(&self, key: &str, json: &str) -> io::Result<()> {
        fs::write(self.dir.join(format!("{key}.metrics.json")), json)
    }

    /// Number of entries currently stored (metrics sidecars excluded).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|it| {
                it.filter_map(Result::ok)
                    .filter(|e| {
                        let path = e.path();
                        path.extension().is_some_and(|x| x == "json")
                            && !path.file_stem().is_some_and(|s| {
                                Path::new(s).extension().is_some_and(|x| x == "metrics")
                            })
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ragnar-harness-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_roundtrip_and_miss() {
        let root = scratch_dir("roundtrip");
        let store = ResultStore::open(&root, "unit").expect("open");
        assert!(store.is_empty());
        let cfg = Config::new().with("x", 3u64);
        let art = Artifact::text("hello\n").with_metric("v", 3u64);
        store.store("k1", &cfg, 9, 1, &art, 1.5).expect("store");
        let hit = store.load("k1").expect("hit");
        assert_eq!(hit.artifact, art);
        assert_eq!(hit.seed, 9);
        assert_eq!(hit.config, cfg);
        assert!(store.load("k2").is_none());
        // Metrics sidecars land next to the cell but are not entries.
        assert_eq!(store.len(), 1);
        store
            .store_metrics("k1", "{\"counters\":{}}")
            .expect("sidecar");
        assert!(store.dir().join("k1.metrics.json").exists());
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let root = scratch_dir("corrupt");
        let store = ResultStore::open(&root, "unit").expect("open");
        let cfg = Config::new();
        let art = Artifact::text("hello");
        store.store("k1", &cfg, 0, 1, &art, 0.1).expect("store");
        // Truncate the file mid-entry, as an interrupted write would.
        let path = store.dir().join("k1.json");
        let text = fs::read_to_string(&path).expect("read");
        fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        assert!(store.load("k1").is_none());
        // Tampering with content (hash mismatch) is also a miss.
        fs::write(&path, text.replace("hello", "jellp")).expect("tamper");
        assert!(store.load("k1").is_none());
        let _ = fs::remove_dir_all(&root);
    }

    /// Systematic corruption fuzz: truncation at every eighth byte and a
    /// bit flip at every byte offset must each read back as a clean miss
    /// — never a panic, never a wrong artifact served as a hit.
    #[test]
    fn any_single_corruption_is_a_miss() {
        let root = scratch_dir("fuzz");
        let store = ResultStore::open(&root, "unit").expect("open");
        let cfg = Config::new().with("x", 7u64).with("label", "fuzz-cell");
        let art = Artifact::text("rendered body\n").with_metric("bps", 63_600u64);
        store.store("k1", &cfg, 7, 1, &art, 2.0).expect("store");
        let path = store.dir().join("k1.json");
        let pristine = fs::read(&path).expect("read");
        assert!(store.load("k1").is_some(), "pristine entry must hit");

        for cut in (0..pristine.len()).step_by(8) {
            fs::write(&path, &pristine[..cut]).expect("truncate");
            assert!(
                store.load("k1").is_none(),
                "truncation at {cut}/{} read back as a hit",
                pristine.len()
            );
        }
        for (i, bit) in (0..pristine.len()).zip([1u8, 2, 4, 8, 16, 32, 64, 128].iter().cycle()) {
            let mut damaged = pristine.clone();
            damaged[i] ^= bit;
            fs::write(&path, &damaged).expect("flip");
            if let Some(hit) = store.load("k1") {
                // The only flips allowed to still hit are ones the
                // checksum legitimately cannot see because the decoded
                // content is unchanged — there are none for this layout,
                // so any hit must at least carry the original artifact.
                assert_eq!(hit.artifact, art, "bit flip at byte {i} served damage");
            }
        }

        // And after all that abuse, restoring the pristine bytes hits.
        fs::write(&path, &pristine).expect("restore");
        assert!(store.load("k1").is_some());
        let _ = fs::remove_dir_all(&root);
    }
}
