//! # ragnar-harness — the experiment-orchestration runtime
//!
//! Every figure and table of the Ragnar reproduction runs through this
//! crate. It provides, in one place, what the ~20 ad-hoc bench binaries
//! used to each hand-roll:
//!
//! * [`Experiment`] — the trait an experiment implements: a name, a
//!   parameter space ([`Experiment::params`]) and a per-config
//!   [`Experiment::run`].
//! * [`executor`] — a work-stealing parallel sweep executor with
//!   deterministic per-config seed derivation (results are identical at
//!   any `--threads`) and per-config panic isolation.
//! * [`cache`] — a content-addressed result store under `results/`:
//!   each cell is keyed by a hash of (experiment, config, seed, code
//!   version), making re-runs incremental and interrupted sweeps
//!   resumable.
//! * [`manifest`] — a per-invocation run manifest (wall time, per-stage
//!   timings, run/cached/failed counts, artifact digest).
//! * [`report`] — the per-invocation run report (`report.json` +
//!   `report.md`): merged counters, exact bucket-merged histograms,
//!   per-tenant SLO rows, supervision summary and — under `--profile` —
//!   the engine phase breakdown.
//! * [`diff`] — `bench-diff`: thresholded numeric comparison of two run
//!   reports (the CI perf-regression gate).
//! * [`cli`] — the shared command line (`--seed`, `--threads`,
//!   `--quick`, `--force`, …) and [`run_main`], the entire `main` of an
//!   experiment binary.
//!
//! A minimal experiment binary is three lines:
//!
//! ```no_run
//! use ragnar_harness::{run_main, Artifact, Cli, Config, Experiment};
//!
//! struct Demo;
//!
//! impl Experiment for Demo {
//!     fn name(&self) -> &'static str { "demo" }
//!     fn params(&self, _cli: &Cli) -> Vec<Config> {
//!         (0..4u64).map(|i| Config::new().with("i", i)).collect()
//!     }
//!     fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
//!         Ok(Artifact::text(format!("cell {} seed {seed}\n", config.u64("i").unwrap())))
//!     }
//! }
//!
//! fn main() -> std::process::ExitCode { run_main(&Demo) }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod diff;
pub mod executor;
pub mod experiment;
pub mod hash;
pub mod manifest;
pub mod report;
pub mod value;

pub use cache::ResultStore;
pub use cli::{run_main, run_with_cli, Cli};
pub use diff::{diff_values, DiffReport};
pub use executor::{config_seed, retry_backoff, ExecOptions, TelemetrySpec};
pub use experiment::{Artifact, Config, Experiment, Outcome, RunRecord};
pub use manifest::Manifest;
pub use report::RunReport;
pub use value::Value;
