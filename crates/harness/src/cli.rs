//! The shared experiment CLI and the `run_main` entry point every
//! figure/table binary delegates to.
//!
//! All experiments understand the same flags:
//!
//! ```text
//! --seed <u64>      master seed (default 0; every config derives its own)
//! --threads <n>     worker threads (default: available parallelism)
//! --workers <n>     PDES workers per simulation (default 1: sequential
//!                   engine; N>1 runs eligible scenarios on the
//!                   conservative-sync parallel engine — bit-identical
//!                   results, so never part of cache keys)
//! --quick           smaller parameter space, where the experiment has one
//! --force           recompute every config, ignoring the result cache
//! --no-cache        neither read nor write the result cache
//! --results <dir>   result-store root (default ./results)
//! --chaos-seed <u64>  generate + install a seeded fault plan (experiments
//!                     that support fault injection; changes cache keys)
//! --chaos-plan <file> install a fault plan from a serialized plan file
//! --topology <spec> run on a multi-hop fabric (`p2p:hosts=N`,
//!                   `leaf-spine:hosts=H,leaves=L,spines=S`,
//!                   `fat-tree:k=K`; experiments that support fabrics;
//!                   canonicalized into configs, so it changes cache keys)
//! --trace <path>    write a Perfetto/Chrome trace_event JSON timeline of
//!                   the whole run (telemetry; never changes cache keys)
//! --trace-filter <targets>  comma-separated layer filter for --trace
//!                   (sim-core,rnic-model,rdma-verbs,chaos,core,defense,
//!                   harness; default all)
//! --metrics         collect per-cell metrics reports next to each cell
//! --profile         enable the engine phase profiler: wall-clock per
//!                   engine phase (queue ops, execute, merge, arena,
//!                   chaos, flush), reported in report.{json,md}; pure
//!                   observation — digests and cache keys are unchanged
//! --cell-timeout <ms>  wall-clock watchdog per cell attempt; an attempt
//!                   past the budget is recorded as timed out (never part
//!                   of cache keys)
//! --retries <n>     re-run a failed/hung cell up to n more times with the
//!                   same seed after a seeded exponential backoff; cells
//!                   that fail every attempt are quarantined with a repro
//!                   command in the manifest (never part of cache keys)
//! --monitors <policy>  run cells under the online invariant monitors
//!                   (log, fail-cell or abort-run); forces cells to
//!                   execute (cache reads bypassed) but artifacts and keys
//!                   are unchanged — monitors observe, never perturb
//! --exec-chaos-seed <u64>  install a seeded worker-fault plan (panics,
//!                   stalls, slow starts) under the supervised PDES pool;
//!                   digests must not change — this is a self-test of the
//!                   quarantine/replay machinery (requires --workers > 1
//!                   to bite; never part of cache keys)
//! --only <substr>   run only configs whose label contains the substring
//!                   (the spelling `--only "<label>"` is what quarantined
//!                   cells' repro commands use)
//! --help            usage
//! ```
//!
//! Experiment-specific switches (fig4's `--full`, fig13's `--coarse`,
//! table5's `--bits <n>`, …) are passed through and queried via
//! [`Cli::flag`] / [`Cli::option_u64`] from `Experiment::params`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use crate::cache::ResultStore;
use crate::executor::{self, ExecOptions, TelemetrySpec};
use crate::experiment::{Experiment, Outcome, RunRecord};
use crate::manifest::Manifest;
use crate::report::RunReport;
use crate::value::Value;
use ragnar_telemetry::profile::{self, Phase};
use ragnar_telemetry::{chrome_trace_json, TargetSet, TraceCell};
use ragnar_topology::TopologySpec;

/// Parsed shared command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Master seed (`--seed`, default 0).
    pub seed: u64,
    /// Worker threads (`--threads`, default: available parallelism).
    pub threads: usize,
    /// PDES workers per simulation (`--workers`, default 1 = the
    /// sequential engine). Like `--threads` and `--trace`, excluded
    /// from configs and cache keys by construction: parsed into this
    /// dedicated field, never into `extras` where `Experiment::params`
    /// could fold it into a config — the parallel engine is
    /// bit-identical to the sequential one, so cached results are
    /// interchangeable across worker counts.
    pub workers: usize,
    /// Reduced parameter space (`--quick`).
    pub quick: bool,
    /// Ignore cache hits and recompute (`--force`).
    pub force: bool,
    /// Disable the result store entirely (`--no-cache`).
    pub no_cache: bool,
    /// Result-store root (`--results`, default `results`).
    pub results_dir: PathBuf,
    /// Chaos seed for a generated fault plan (`--chaos-seed`). `None`
    /// (default) disables fault injection entirely.
    pub chaos_seed: Option<u64>,
    /// Path to a serialized fault-plan file (`--chaos-plan`); takes
    /// precedence over `--chaos-seed` in experiments that support both.
    pub chaos_plan: Option<PathBuf>,
    /// Fabric spec (`--topology`), validated at parse time and held in
    /// canonical spelling so every cell keyed on it shares one form.
    /// `None` (default) keeps the legacy point-to-point wire — and its
    /// pinned digests — untouched.
    pub topology: Option<String>,
    /// Where to write the Perfetto/Chrome trace JSON (`--trace`). `None`
    /// (default) disables tracing. Excluded from configs and cache keys
    /// by construction: parsed into this dedicated field, never into
    /// `extras` where `Experiment::params` could fold it into a config.
    pub trace: Option<PathBuf>,
    /// Comma-separated trace-target filter (`--trace-filter`), validated
    /// in [`run_with_cli`]. `None` traces every layer.
    pub trace_filter: Option<String>,
    /// Collect per-cell metrics reports (`--metrics`). Also excluded
    /// from cache keys by construction.
    pub metrics: bool,
    /// Enable the engine phase profiler (`--profile`). Wall-clock only —
    /// it can never feed digests or cache keys, and like every
    /// observability flag it parses into this dedicated field, never
    /// into `extras`.
    pub profile: bool,
    /// Per-attempt cell watchdog in ms (`--cell-timeout`). `None`
    /// (default) trusts cells to terminate. Excluded from cache keys by
    /// construction, like every dedicated supervision field.
    pub cell_timeout_ms: Option<u64>,
    /// Extra attempts for failed/hung cells (`--retries`, default 0).
    pub retries: u32,
    /// Online invariant-monitor policy (`--monitors`), validated at
    /// parse time. `None` (default) runs unmonitored.
    pub monitors: Option<sim_core::ViolationPolicy>,
    /// Seed for an execution-fault plan against the supervised PDES
    /// pool (`--exec-chaos-seed`). `None` (default) disables it.
    pub exec_chaos_seed: Option<u64>,
    /// Label-substring filter (`--only`); configs whose label does not
    /// contain it are dropped before the sweep.
    pub only: Option<String>,
    /// Unrecognised arguments, available to experiments.
    extras: Vec<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            seed: 0,
            threads: executor::default_threads(),
            workers: 1,
            quick: false,
            force: false,
            no_cache: false,
            results_dir: PathBuf::from("results"),
            chaos_seed: None,
            chaos_plan: None,
            topology: None,
            trace: None,
            trace_filter: None,
            metrics: false,
            profile: false,
            cell_timeout_ms: None,
            retries: 0,
            monitors: None,
            exec_chaos_seed: None,
            only: None,
            extras: Vec::new(),
        }
    }
}

/// A fatal CLI parse problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl Cli {
    /// Parses from the process arguments.
    pub fn parse_env() -> Result<Cli, CliError> {
        Cli::parse(std::env::args().skip(1))
    }

    /// Parses from an explicit argument list (tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, CliError> {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seed" => cli.seed = take_u64(&mut it, "--seed")?,
                "--threads" => {
                    cli.threads = take_u64(&mut it, "--threads")?.clamp(1, 4096) as usize;
                }
                "--workers" => {
                    cli.workers = take_u64(&mut it, "--workers")?.clamp(1, 512) as usize;
                }
                "--quick" => cli.quick = true,
                "--force" => cli.force = true,
                "--no-cache" => cli.no_cache = true,
                "--results" => {
                    cli.results_dir = PathBuf::from(take_value(&mut it, "--results")?);
                }
                "--chaos-seed" => cli.chaos_seed = Some(take_u64(&mut it, "--chaos-seed")?),
                "--chaos-plan" => {
                    cli.chaos_plan = Some(PathBuf::from(take_value(&mut it, "--chaos-plan")?));
                }
                "--topology" => {
                    // Validate and canonicalize at the CLI boundary, so a
                    // typo is a usage error (not a mid-sweep panic) and
                    // every downstream consumer — cache keys above all —
                    // sees one spelling per fabric.
                    let raw = take_value(&mut it, "--topology")?;
                    let spec = TopologySpec::parse(&raw)
                        .map_err(|e| CliError(format!("--topology: {e}")))?;
                    cli.topology = Some(spec.canonical());
                }
                "--trace" => cli.trace = Some(PathBuf::from(take_value(&mut it, "--trace")?)),
                "--trace-filter" => {
                    cli.trace_filter = Some(take_value(&mut it, "--trace-filter")?);
                }
                "--metrics" => cli.metrics = true,
                "--profile" => cli.profile = true,
                "--cell-timeout" => {
                    let ms = take_u64(&mut it, "--cell-timeout")?;
                    if ms == 0 {
                        return Err(CliError("--cell-timeout must be > 0 ms".to_string()));
                    }
                    cli.cell_timeout_ms = Some(ms);
                }
                "--retries" => {
                    cli.retries = take_u64(&mut it, "--retries")?.clamp(0, 16) as u32;
                }
                "--monitors" => {
                    // Validated here so a typo is a usage error, not a
                    // surprise an hour into a sweep.
                    let raw = take_value(&mut it, "--monitors")?;
                    let policy = sim_core::ViolationPolicy::parse(&raw)
                        .map_err(|e| CliError(format!("--monitors: {e}")))?;
                    cli.monitors = Some(policy);
                }
                "--exec-chaos-seed" => {
                    cli.exec_chaos_seed = Some(take_u64(&mut it, "--exec-chaos-seed")?);
                }
                "--only" => cli.only = Some(take_value(&mut it, "--only")?),
                _ => cli.extras.push(arg),
            }
        }
        Ok(cli)
    }

    /// Whether an experiment-specific boolean switch was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.extras.iter().any(|a| a == name)
    }

    /// The value of an experiment-specific `--name <u64>` option.
    pub fn option_u64(&self, name: &str) -> Option<u64> {
        let pos = self.extras.iter().position(|a| a == name)?;
        self.extras.get(pos + 1)?.parse().ok()
    }

    /// Extra arguments that are not shared flags.
    pub fn extras(&self) -> &[String] {
        &self.extras
    }
}

fn take_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    it.next()
        .ok_or_else(|| CliError(format!("{flag} needs a value")))
}

fn take_u64(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, CliError> {
    let raw = take_value(it, flag)?;
    raw.parse()
        .map_err(|_| CliError(format!("{flag} needs an integer, got '{raw}'")))
}

fn usage(exp: &dyn Experiment) -> String {
    format!(
        "{name} — {desc}\n\n\
         usage: {name} [--seed <u64>] [--threads <n>] [--workers <n>] [--quick]\n\
         {pad}   [--force] [--no-cache]\n\
         {pad}   [--results <dir>] [--chaos-seed <u64>] [--chaos-plan <file>]\n\
         {pad}   [--topology <spec>] [--trace <path>] [--trace-filter <targets>]\n\
         {pad}   [--metrics] [--profile] [--cell-timeout <ms>] [--retries <n>]\n\
         {pad}   [--monitors <log|fail-cell|abort-run>] [--exec-chaos-seed <u64>]\n\
         {pad}   [--only <label-substring>]\n\
         {pad}   [experiment-specific flags]\n\n\
         Artifacts and the run manifest land in <results>/{name}/;\n\
         see EXPERIMENTS.md for the per-experiment flags and cache-key scheme.",
        name = exp.name(),
        desc = exp.description(),
        pad = " ".repeat(exp.name().len() + 7),
    )
}

/// Runs `exp` end to end: parse CLI → build params → execute through the
/// cache → summarize → persist the manifest. This is the whole `main` of
/// every experiment binary.
pub fn run_main(exp: &dyn Experiment) -> ExitCode {
    let cli = match Cli::parse_env() {
        Ok(cli) => cli,
        Err(CliError(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage(exp));
            return ExitCode::FAILURE;
        }
    };
    if cli.flag("--help") || cli.flag("-h") {
        println!("{}", usage(exp));
        return ExitCode::SUCCESS;
    }
    match run_with_cli(exp, &cli) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Library-level entry: everything `run_main` does minus process
/// concerns. Returns the number of failed configs. Used by binaries
/// (via [`run_main`]) and integration tests alike.
pub fn run_with_cli(exp: &dyn Experiment, cli: &Cli) -> Result<usize, String> {
    // Publish the PDES worker count ambiently: scenario code reads it at
    // its `run_until_workers` call sites, keeping `Experiment::run`
    // signatures — and, by construction, cache keys — untouched.
    pdes::set_ambient_workers(cli.workers);
    // The supervision knobs follow the same ambient pattern — installed
    // for the sweep, reset on every exit path by the guard below so a
    // later in-process invocation (tests, batch drivers) starts clean.
    struct AmbientReset;
    impl Drop for AmbientReset {
        fn drop(&mut self) {
            sim_core::set_ambient_monitors(None);
            pdes::set_ambient_supervision(None);
            profile::set_enabled(false);
        }
    }
    let _ambient_reset = AmbientReset;
    if cli.profile {
        profile::reset();
        profile::set_enabled(true);
    }
    if let Some(policy) = cli.monitors {
        sim_core::set_ambient_monitors(Some(sim_core::MonitorConfig {
            policy,
            ..Default::default()
        }));
    }
    if let Some(chaos_seed) = cli.exec_chaos_seed {
        let plan = ragnar_chaos::ExecFaultPlan::generate(
            chaos_seed,
            &ragnar_chaos::ExecPlanParams::default(),
        );
        pdes::set_ambient_supervision(Some(pdes::PoolPolicy {
            stall_timeout: Some(std::time::Duration::from_secs(2)),
            max_respawns: 8,
            fault_hook: Some(plan.to_hook()),
        }));
    }
    let t_start = Instant::now();
    let mut stages: Vec<(String, f64)> = Vec::new();

    let t0 = Instant::now();
    let mut configs = exp.params(cli);
    if let Some(needle) = &cli.only {
        configs.retain(|c| c.label().contains(needle.as_str()));
        if configs.is_empty() {
            return Err(format!(
                "--only \"{needle}\" matched no configs of '{}'",
                exp.name()
            ));
        }
    }
    stages.push(("params".into(), t0.elapsed().as_secs_f64() * 1e3));
    if configs.is_empty() {
        return Err(format!("experiment '{}' produced no configs", exp.name()));
    }

    let store = if cli.no_cache {
        None
    } else {
        Some(
            ResultStore::open(&cli.results_dir, exp.name())
                .map_err(|e| format!("cannot open result store: {e}"))?,
        )
    };

    let filter = match &cli.trace_filter {
        Some(spec) => TargetSet::parse(spec).map_err(|e| format!("--trace-filter: {e}"))?,
        None => TargetSet::ALL,
    };

    let t0 = Instant::now();
    let records = executor::execute(
        exp,
        &configs,
        cli.seed,
        store.as_ref(),
        &ExecOptions {
            threads: cli.threads,
            force: cli.force,
            telemetry: TelemetrySpec {
                trace: cli.trace.is_some(),
                filter,
                metrics: cli.metrics,
            },
            cell_timeout: cli.cell_timeout_ms.map(std::time::Duration::from_millis),
            retries: cli.retries,
            // Supervision modes exist to *exercise* cells; a cache hit
            // would skip the work they are meant to observe.
            bypass_cache_reads: cli.monitors.is_some() || cli.exec_chaos_seed.is_some(),
        },
    );
    stages.push(("execute".into(), t0.elapsed().as_secs_f64() * 1e3));

    if let Some(path) = &cli.trace {
        let _p = profile::enter(Phase::Flush);
        write_trace(&records, path)?;
    }
    if cli.metrics {
        if let Some(s) = &store {
            let _p = profile::enter(Phase::Flush);
            for r in &records {
                if let Some(m) = r.telemetry.as_ref().and_then(|t| t.metrics.as_ref()) {
                    // Salvaged telemetry (the cell failed or timed out
                    // mid-run) is tagged incomplete: its counts cover
                    // only the portion of the cell that actually ran.
                    // A failed sidecar write degrades observability only.
                    let _ =
                        s.store_metrics(&r.cache_key, &m.to_json_tagged(r.outcome.is_failure()));
                }
            }
        }
    }

    let t0 = Instant::now();
    let mut report = String::new();
    exp.summarize(&records, &mut report);
    stages.push(("summarize".into(), t0.elapsed().as_secs_f64() * 1e3));

    let manifest = Manifest::from_records(
        exp.name(),
        cli.seed,
        cli.threads,
        &records,
        stages,
        t_start.elapsed().as_secs_f64() * 1e3,
    );
    // The run report is assembled for every invocation; the profiler
    // snapshot (when armed) rides along in its timing section.
    let run_report = RunReport::build(&manifest, &records, cli.profile.then(profile::snapshot));
    if !cli.no_cache {
        let _p = profile::enter(Phase::Flush);
        manifest
            .write(&cli.results_dir)
            .map_err(|e| format!("cannot write manifest: {e}"))?;
        run_report
            .write(&cli.results_dir)
            .map_err(|e| format!("cannot write run report: {e}"))?;
    }

    print!("{report}");
    if let Some(p) = &run_report.profile {
        if !p.is_empty() {
            let total_ms = p.total_ns() as f64 / 1e6;
            let mut phases: Vec<_> = p.phases.iter().filter(|(_, t)| t.calls > 0).collect();
            phases.sort_by_key(|p| std::cmp::Reverse(p.1.ns));
            let breakdown: Vec<String> = phases
                .iter()
                .take(5)
                .map(|(phase, t)| format!("{} {:.1}ms", phase.name(), t.ns as f64 / 1e6))
                .collect();
            println!(
                "profile: {total_ms:.1} ms across {} phases ({})",
                phases.len(),
                breakdown.join(", ")
            );
        }
    }
    println!("\n{}", manifest.summary_line());
    for r in &records {
        match &r.outcome {
            Outcome::Done(_) => continue,
            Outcome::Failed { message, panicked } => {
                ragnar_telemetry::warn!(
                    "failed config [{}]: {}{}",
                    r.config.label(),
                    if *panicked { "panic: " } else { "" },
                    message
                );
            }
            Outcome::TimedOut { timeout_ms } => {
                ragnar_telemetry::warn!(
                    "timed-out config [{}]: {} attempt(s) past {timeout_ms} ms",
                    r.config.label(),
                    r.attempts
                );
            }
            Outcome::Skipped { reason } => {
                ragnar_telemetry::warn!("skipped config [{}]: {reason}", r.config.label());
            }
        }
        if let Some(repro) = &r.repro {
            ragnar_telemetry::warn!("  repro: {repro}");
        }
    }
    Ok(manifest.failed)
}

/// Merges per-cell trace events (config order) into one Chrome
/// `trace_event` JSON document, self-validates it, and writes it out.
fn write_trace(records: &[RunRecord], path: &Path) -> Result<(), String> {
    let cells: Vec<TraceCell<'_>> = records
        .iter()
        .filter_map(|r| {
            r.telemetry.as_ref().map(|t| TraceCell {
                label: r.config.label(),
                index: r.index,
                events: &t.events,
            })
        })
        .collect();
    let events: usize = cells.iter().map(|c| c.events.len()).sum();
    let json = chrome_trace_json(&cells);
    // The exporter is hand-rolled; refuse to ship malformed output.
    Value::parse(&json).map_err(|e| format!("internal: trace JSON failed validation: {e}"))?;
    std::fs::write(path, &json)
        .map_err(|e| format!("cannot write trace to {}: {e}", path.display()))?;
    println!(
        "trace: {events} events from {} cells -> {}",
        cells.len(),
        path.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse(args.iter().map(|s| s.to_string())).expect("parse")
    }

    #[test]
    fn defaults_and_flags() {
        let cli = parse(&[]);
        assert_eq!(cli.seed, 0);
        assert!(!cli.quick && !cli.force && !cli.no_cache);
        assert_eq!(cli.results_dir, PathBuf::from("results"));
        assert_eq!(cli.chaos_seed, None);
        assert_eq!(cli.chaos_plan, None);
        assert_eq!(cli.topology, None);

        let cli = parse(&[
            "--seed",
            "42",
            "--threads",
            "3",
            "--workers",
            "8",
            "--quick",
            "--force",
            "--no-cache",
            "--results",
            "/tmp/r",
            "--chaos-seed",
            "9",
            "--chaos-plan",
            "/tmp/plan.txt",
            "--topology",
            "leaf-spine:hosts=256,leaves=8,spines=4",
            "--full",
            "--bits",
            "256",
        ]);
        assert_eq!(cli.seed, 42);
        assert_eq!(cli.threads, 3);
        assert_eq!(cli.workers, 8);
        assert!(cli.quick && cli.force && cli.no_cache);
        assert_eq!(cli.results_dir, PathBuf::from("/tmp/r"));
        assert_eq!(cli.chaos_seed, Some(9));
        assert_eq!(cli.chaos_plan, Some(PathBuf::from("/tmp/plan.txt")));
        // Stored canonicalized: the default gbps is made explicit.
        assert_eq!(
            cli.topology.as_deref(),
            Some("leaf-spine:hosts=256,leaves=8,spines=4,gbps=100")
        );
        assert!(cli.flag("--full"));
        assert!(!cli.flag("--coarse"));
        assert_eq!(cli.option_u64("--bits"), Some(256));
        assert_eq!(cli.option_u64("--missing"), None);
    }

    #[test]
    fn bad_values_are_errors() {
        assert!(Cli::parse(["--seed".to_string()]).is_err());
        assert!(Cli::parse(["--threads".to_string(), "x".to_string()]).is_err());
        assert!(Cli::parse(["--workers".to_string(), "x".to_string()]).is_err());
        assert!(Cli::parse(["--workers".to_string()]).is_err());
        assert!(Cli::parse(["--chaos-seed".to_string(), "x".to_string()]).is_err());
        assert!(Cli::parse(["--topology".to_string()]).is_err());
        assert!(Cli::parse(["--topology".to_string(), "ring:n=8".to_string()]).is_err());
        assert!(Cli::parse([
            "--topology".to_string(),
            "leaf-spine:hosts=7,leaves=3,spines=2".to_string()
        ])
        .is_err());
        assert!(Cli::parse(["--cell-timeout".to_string(), "0".to_string()]).is_err());
        assert!(Cli::parse(["--cell-timeout".to_string(), "x".to_string()]).is_err());
        assert!(Cli::parse(["--retries".to_string()]).is_err());
        assert!(Cli::parse(["--monitors".to_string(), "verbose".to_string()]).is_err());
        assert!(Cli::parse(["--monitors".to_string()]).is_err());
        assert!(Cli::parse(["--exec-chaos-seed".to_string(), "x".to_string()]).is_err());
        assert!(Cli::parse(["--only".to_string()]).is_err());
    }

    #[test]
    fn supervision_flags_parse_and_validate() {
        let cli = parse(&[
            "--cell-timeout",
            "5000",
            "--retries",
            "3",
            "--monitors",
            "fail-cell",
            "--exec-chaos-seed",
            "17",
            "--only",
            "op=read",
        ]);
        assert_eq!(cli.cell_timeout_ms, Some(5000));
        assert_eq!(cli.retries, 3);
        assert_eq!(cli.monitors, Some(sim_core::ViolationPolicy::FailCell));
        assert_eq!(cli.exec_chaos_seed, Some(17));
        assert_eq!(cli.only.as_deref(), Some("op=read"));
        // Retries clamp instead of erroring.
        assert_eq!(parse(&["--retries", "99"]).retries, 16);
        for (raw, policy) in [
            ("log", sim_core::ViolationPolicy::Log),
            ("fail-cell", sim_core::ViolationPolicy::FailCell),
            ("abort-run", sim_core::ViolationPolicy::AbortRun),
        ] {
            assert_eq!(parse(&["--monitors", raw]).monitors, Some(policy));
        }
    }
}

#[cfg(test)]
mod workers_key_exclusion {
    use super::*;

    /// `--workers` must never reach cache keys. The only key material an
    /// experiment can fold into configs is the dedicated shared fields
    /// plus `extras`; this pins the flag (and its value) landing in the
    /// dedicated field with `extras` left empty — exclusion by
    /// construction, not by every experiment's discipline.
    #[test]
    fn workers_flag_never_lands_in_extras() {
        let cli = Cli::parse(
            ["--workers", "8", "--seed", "3"]
                .iter()
                .map(|s| s.to_string()),
        )
        .expect("parse");
        assert_eq!(cli.workers, 8);
        assert!(cli.extras().is_empty(), "--workers leaked into extras");
        assert!(!cli.flag("--workers"));
        assert_eq!(cli.option_u64("--workers"), None);
    }

    /// Defaults to the sequential engine; out-of-band values clamp
    /// instead of erroring.
    #[test]
    fn workers_defaults_and_clamps() {
        assert_eq!(Cli::parse(Vec::<String>::new()).expect("parse").workers, 1);
        let lo = Cli::parse(["--workers".to_string(), "0".to_string()]).expect("parse");
        assert_eq!(lo.workers, 1);
        let hi = Cli::parse(["--workers".to_string(), "99999".to_string()]).expect("parse");
        assert_eq!(hi.workers, 512);
    }

    /// The supervision flags are all observational: like `--workers`
    /// they must land in dedicated fields, never in `extras`, so no
    /// experiment can fold them into a config — and hence into a cache
    /// key — by accident.
    #[test]
    fn supervision_flags_never_land_in_extras() {
        let cli = Cli::parse(
            [
                "--cell-timeout",
                "100",
                "--retries",
                "2",
                "--monitors",
                "log",
                "--exec-chaos-seed",
                "5",
                "--only",
                "i=3",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("parse");
        assert!(
            cli.extras().is_empty(),
            "supervision flag leaked: {:?}",
            cli.extras()
        );
        for flag in [
            "--cell-timeout",
            "--retries",
            "--monitors",
            "--exec-chaos-seed",
            "--only",
        ] {
            assert!(!cli.flag(flag), "{flag} visible as an extra");
            assert_eq!(cli.option_u64(flag), None);
        }
    }

    /// `--profile` is observational like `--trace`: a dedicated field,
    /// never an extra, so it cannot reach configs or cache keys.
    #[test]
    fn profile_flag_never_lands_in_extras() {
        assert!(!Cli::parse(Vec::<String>::new()).expect("parse").profile);
        let cli = Cli::parse(["--profile".to_string(), "--quick".to_string()]).expect("parse");
        assert!(cli.profile && cli.quick);
        assert!(cli.extras().is_empty(), "--profile leaked into extras");
        assert!(!cli.flag("--profile"));
    }
}
