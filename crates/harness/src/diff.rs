//! `bench-diff`: thresholded comparison of two JSON documents — two run
//! reports, two manifests, or a report against a pinned `BENCH_*.json`.
//!
//! Both documents are flattened to dotted-path numeric leaves
//! (`counters.wire\.dropped_packets`, `histograms.h_ns.p99_ps`, …) and
//! compared pairwise. A leaf whose relative delta exceeds the threshold
//! is a regression; a leaf present on one side only is reported as
//! missing. Wall-clock material is skipped by default (see
//! [`DEFAULT_SKIP`]) so the deterministic sections — event counts,
//! allocation counters, merged histogram counts — are what gate CI:
//! on identical builds they must match exactly, and any drift is a real
//! behaviour change, not scheduling noise.

use crate::value::Value;

/// Path substrings skipped by default: wall-clock and cache-state
/// material that legitimately differs between identical runs.
pub const DEFAULT_SKIP: &[&str] = &[
    "timing",
    "wall_ms",
    "elapsed_ms",
    "stage_ms",
    "started_unix",
    "cache_hit_rate",
    "cached",
    "executed",
    "from_cache",
];

/// One compared leaf that exceeded the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path of the leaf.
    pub path: String,
    /// Value in the baseline document.
    pub before: f64,
    /// Value in the candidate document.
    pub after: f64,
    /// Relative delta in percent (infinite when the baseline is 0).
    pub delta_pct: f64,
}

/// The outcome of one comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Numeric leaves compared on both sides.
    pub compared: usize,
    /// Leaves whose relative delta exceeded the threshold.
    pub regressions: Vec<DiffEntry>,
    /// Leaves present in exactly one document.
    pub missing: Vec<String>,
}

impl DiffReport {
    /// Whether the candidate passes: everything compared is within the
    /// threshold and no leaf vanished or appeared.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares `before` and `after`, flagging numeric leaves whose
/// relative delta exceeds `threshold_pct` percent. Paths containing any
/// of `skip` (substring match) are ignored entirely.
pub fn diff_values(before: &Value, after: &Value, threshold_pct: f64, skip: &[&str]) -> DiffReport {
    let mut a = Vec::new();
    flatten(before, String::new(), skip, &mut a);
    let mut b = Vec::new();
    flatten(after, String::new(), skip, &mut b);

    let mut report = DiffReport::default();
    let (mut i, mut j) = (0, 0);
    // Both sides are sorted by path; walk them like a merge.
    a.sort_by(|x, y| x.0.cmp(&y.0));
    b.sort_by(|x, y| x.0.cmp(&y.0));
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some((pa, va)), Some((pb, vb))) if pa == pb => {
                report.compared += 1;
                let delta_pct = relative_delta_pct(*va, *vb);
                if delta_pct > threshold_pct {
                    report.regressions.push(DiffEntry {
                        path: pa.clone(),
                        before: *va,
                        after: *vb,
                        delta_pct,
                    });
                }
                i += 1;
                j += 1;
            }
            (Some((pa, _)), Some((pb, _))) if pa < pb => {
                report.missing.push(format!("{pa} (baseline only)"));
                i += 1;
            }
            (Some(_), Some((pb, _))) => {
                report.missing.push(format!("{pb} (candidate only)"));
                j += 1;
            }
            (Some((pa, _)), None) => {
                report.missing.push(format!("{pa} (baseline only)"));
                i += 1;
            }
            (None, Some((pb, _))) => {
                report.missing.push(format!("{pb} (candidate only)"));
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    report
}

/// The relative delta between two leaves, in percent. Equal values
/// (including two zeros) are 0; a zero baseline against a non-zero
/// candidate is an infinite delta — it always trips the threshold.
fn relative_delta_pct(before: f64, after: f64) -> f64 {
    if before == after {
        0.0
    } else if before == 0.0 {
        f64::INFINITY
    } else {
        ((after - before) / before).abs() * 100.0
    }
}

/// Depth-first flatten of numeric leaves into dotted paths. Booleans
/// count as 0/1 leaves (an `aborted` flip is a regression); strings and
/// nulls are ignored (digests are compared by the caller if desired).
fn flatten(v: &Value, path: String, skip: &[&str], out: &mut Vec<(String, f64)>) {
    if !path.is_empty() && skip.iter().any(|s| path.contains(s)) {
        return;
    }
    match v {
        Value::Int(i) => out.push((path, *i as f64)),
        Value::Float(f) => out.push((path, *f)),
        Value::Bool(b) => out.push((path, f64::from(u8::from(*b)))),
        Value::Object(entries) => {
            for (k, child) in entries {
                let child_path = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                flatten(child, child_path, skip, out);
            }
        }
        Value::Array(items) => {
            for (idx, child) in items.iter().enumerate() {
                flatten(child, format!("{path}[{idx}]"), skip, out);
            }
        }
        Value::Null | Value::Str(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        Value::parse(text).expect("test JSON parses")
    }

    #[test]
    fn identical_documents_are_clean() {
        let v = parse(r#"{"counters":{"a":3,"b":0},"histograms":{"h":{"count":7,"p99_ps":1200}}}"#);
        let report = diff_values(&v, &v, 0.0, DEFAULT_SKIP);
        assert!(report.is_clean());
        assert_eq!(report.compared, 4);
    }

    #[test]
    fn over_threshold_delta_is_a_regression() {
        let a = parse(r#"{"counters":{"events":1000}}"#);
        let b = parse(r#"{"counters":{"events":1100}}"#);
        let ok = diff_values(&a, &b, 15.0, DEFAULT_SKIP);
        assert!(ok.is_clean(), "10% delta within 15% threshold");
        let bad = diff_values(&a, &b, 5.0, DEFAULT_SKIP);
        assert_eq!(bad.regressions.len(), 1);
        let e = &bad.regressions[0];
        assert_eq!(e.path, "counters.events");
        assert_eq!((e.before, e.after), (1000.0, 1100.0));
        assert!((e.delta_pct - 10.0).abs() < 1e-9);
        // Direction does not matter: a 10% drop trips the same gate.
        let drop = diff_values(&b, &a, 5.0, DEFAULT_SKIP);
        assert_eq!(drop.regressions.len(), 1);
    }

    #[test]
    fn zero_baseline_against_nonzero_always_trips() {
        let a = parse(r#"{"dropped":0}"#);
        let b = parse(r#"{"dropped":3}"#);
        let report = diff_values(&a, &b, 1000.0, DEFAULT_SKIP);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].delta_pct.is_infinite());
    }

    #[test]
    fn missing_leaves_are_reported_on_both_sides() {
        let a = parse(r#"{"x":1,"only_a":2}"#);
        let b = parse(r#"{"x":1,"only_b":3}"#);
        let report = diff_values(&a, &b, 5.0, DEFAULT_SKIP);
        assert!(!report.is_clean());
        assert_eq!(report.compared, 1);
        assert_eq!(
            report.missing,
            vec![
                "only_a (baseline only)".to_string(),
                "only_b (candidate only)".to_string()
            ]
        );
    }

    #[test]
    fn wall_clock_sections_are_skipped_by_default() {
        let a = parse(r#"{"counters":{"a":1},"timing":{"wall_ms":100.0},"cells":{"cached":5}}"#);
        let b = parse(r#"{"counters":{"a":1},"timing":{"wall_ms":900.0},"cells":{"cached":0}}"#);
        let report = diff_values(&a, &b, 0.0, DEFAULT_SKIP);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.compared, 1);
        // With no skip list, the same documents disagree.
        assert!(!diff_values(&a, &b, 0.0, &[]).is_clean());
    }

    #[test]
    fn arrays_and_bools_are_leaves() {
        let a = parse(r#"{"slo":[{"value_ns":10.0}],"aborted":false}"#);
        let b = parse(r#"{"slo":[{"value_ns":10.0}],"aborted":true}"#);
        let report = diff_values(&a, &b, 5.0, DEFAULT_SKIP);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].path, "aborted");
    }
}
