//! Run reports: the per-invocation `report.json` / `report.md` pair.
//!
//! A manifest records *that* a sweep ran; the run report explains *what
//! it observed*. It is assembled after the sweep from the in-memory run
//! records (including telemetry salvaged from timed-out cells), the
//! manifest, and — when `--profile` was on — the engine phase profiler,
//! and written next to the manifest under `results/<experiment>/`.
//!
//! Layout discipline: everything outside the `"timing"` section is
//! deterministic (counters, exact bucket-merged histograms, event
//! counts, outcome tallies — pure functions of seed and config), so two
//! runs of the same build can be compared field-for-field by
//! `bench-diff`. Wall-clock material (stage timings, the phase
//! profile) lives only under `"timing"`, which `bench-diff` skips by
//! default.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use ragnar_telemetry::profile::ProfileReport;
use ragnar_telemetry::{Histogram, HistogramSummary};

use crate::experiment::{Outcome, RunRecord};
use crate::manifest::Manifest;
use crate::value::Value;

/// How many counters the markdown report lists (the JSON keeps all).
const TOP_COUNTERS: usize = 20;

/// One histogram merged exactly across every cell that recorded it
/// (bucket-level merge of the lossless sidecar wire form, not an
/// average of per-cell quantiles).
#[derive(Debug, Clone)]
pub struct MergedHistogram {
    /// Metric name.
    pub name: String,
    /// Cells that contributed samples.
    pub cells: usize,
    /// The merged summary (values in picoseconds).
    pub summary: HistogramSummary,
}

/// One row of the SLO table: a latency-quantile artifact metric,
/// grouped by the tenant/role prefix experiments use
/// (`victim_p99_ns`, `bystander_p99_ns`, …).
#[derive(Debug, Clone)]
pub struct SloRow {
    /// The config's human label.
    pub label: String,
    /// Tenant/role the quantile describes (metric-name prefix).
    pub tenant: String,
    /// Quantile name (`p50`, `p99`, …).
    pub quantile: String,
    /// The observed value, nanoseconds.
    pub value_ns: f64,
}

/// The assembled report (see the module docs).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The manifest of the invocation the report describes.
    pub manifest: Manifest,
    /// Counters summed across all cells' metrics reports.
    pub counters: Vec<(String, u64)>,
    /// Histograms bucket-merged across cells.
    pub histograms: Vec<MergedHistogram>,
    /// Per-tenant latency-SLO rows harvested from artifact metrics.
    pub slo: Vec<SloRow>,
    /// Cells whose telemetry was salvaged from a failed/timed-out
    /// attempt (their metrics cover only the portion that ran).
    pub incomplete_cells: usize,
    /// Attempts beyond the first, summed over cells.
    pub retries: u64,
    /// The engine phase profile, when `--profile` was on.
    pub profile: Option<ProfileReport>,
}

impl RunReport {
    /// Assembles the report from the sweep's records and manifest.
    pub fn build(
        manifest: &Manifest,
        records: &[RunRecord],
        profile: Option<ProfileReport>,
    ) -> RunReport {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut merged: BTreeMap<String, (usize, Histogram)> = BTreeMap::new();
        let mut incomplete_cells = 0usize;
        let mut retries = 0u64;
        for r in records {
            retries += u64::from(r.attempts.saturating_sub(1));
            if r.outcome.is_failure() && r.telemetry.is_some() {
                incomplete_cells += 1;
            }
            let Some(m) = r.telemetry.as_ref().and_then(|t| t.metrics.as_ref()) else {
                continue;
            };
            for (name, v) in &m.counters {
                *counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, wire) in &m.hist_buckets {
                let slot = merged
                    .entry(name.clone())
                    .or_insert_with(|| (0, Histogram::default()));
                slot.0 += 1;
                slot.1.merge(&wire.rebuild());
            }
        }
        let histograms = merged
            .into_iter()
            .map(|(name, (cells, h))| MergedHistogram {
                name,
                cells,
                summary: h.summary(),
            })
            .collect();
        RunReport {
            manifest: manifest.clone(),
            counters: counters.into_iter().collect(),
            histograms,
            slo: slo_rows(records),
            incomplete_cells,
            retries,
            profile,
        }
    }

    /// The report as a JSON value (see the module docs for the
    /// deterministic-vs-timing split).
    pub fn to_value(&self) -> Value {
        let m = &self.manifest;
        let mut v = Value::object();
        v.set("experiment", m.experiment.as_str());
        v.set("seed", m.seed);
        v.set("artifact_digest", m.artifact_digest.as_str());
        let mut cells = Value::object();
        cells.set("total", m.total);
        cells.set("executed", m.executed);
        cells.set("cached", m.cached);
        cells.set("failed", m.failed);
        cells.set("timed_out", m.timed_out);
        cells.set("skipped", m.skipped);
        cells.set("quarantined", m.quarantined);
        cells.set("aborted", m.aborted);
        cells.set("incomplete_telemetry", self.incomplete_cells);
        v.set("cells", cells);
        v.set("retries", self.retries);
        v.set("telemetry_events", m.telemetry_events);
        let mut counters = Value::object();
        for (name, value) in &self.counters {
            counters.set(name, *value);
        }
        v.set("counters", counters);
        let mut hists = Value::object();
        for h in &self.histograms {
            let s = &h.summary;
            let mut entry = Value::object();
            entry.set("cells", h.cells);
            entry.set("count", s.count);
            entry.set("min_ps", s.min);
            entry.set("max_ps", s.max);
            entry.set("mean_ps", s.mean);
            entry.set("p50_ps", s.p50);
            entry.set("p90_ps", s.p90);
            entry.set("p99_ps", s.p99);
            hists.set(&h.name, entry);
        }
        v.set("histograms", hists);
        let slo: Vec<Value> = self
            .slo
            .iter()
            .map(|row| {
                let mut r = Value::object();
                r.set("label", row.label.as_str());
                r.set("tenant", row.tenant.as_str());
                r.set("quantile", row.quantile.as_str());
                r.set("value_ns", row.value_ns);
                r
            })
            .collect();
        v.set("slo", Value::Array(slo));
        // Everything wall-clock lives under "timing" so report diffs
        // can skip it wholesale.
        let mut timing = Value::object();
        timing.set("wall_ms", m.wall_ms);
        let mut stages = Value::object();
        for (name, ms) in &m.stages {
            stages.set(name, *ms);
        }
        timing.set("stage_ms", stages);
        if let Some(p) = &self.profile {
            let mut phases = Value::object();
            for (phase, total) in &p.phases {
                let mut entry = Value::object();
                entry.set("ns", total.ns);
                entry.set("calls", total.calls);
                phases.set(phase.name(), entry);
            }
            timing.set("profile", phases);
        }
        v.set("timing", timing);
        v
    }

    /// Renders the human-readable companion (`report.md`).
    pub fn to_markdown(&self) -> String {
        let m = &self.manifest;
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "# {} — run report\n\nseed {}, {} configs ({} run, {} cached, {} failed), digest `{}`\n",
            m.experiment,
            m.seed,
            m.total,
            m.executed,
            m.cached,
            m.failed,
            &m.artifact_digest[..16.min(m.artifact_digest.len())],
        ));

        out.push_str("\n## Supervision\n\n");
        out.push_str(&format!(
            "| retries | timed out | quarantined | skipped | aborted | salvaged telemetry |\n\
             |---|---|---|---|---|---|\n\
             | {} | {} | {} | {} | {} | {} |\n",
            self.retries, m.timed_out, m.quarantined, m.skipped, m.aborted, self.incomplete_cells,
        ));
        out.push_str(&format!(
            "\nCache: {} of {} cells served from the store ({:.0}% hit rate).\n",
            m.cached,
            m.total,
            m.cache_hit_rate() * 100.0
        ));

        if let Some(p) = &self.profile {
            out.push_str("\n## Engine phase profile\n\n");
            let total = p.total_ns().max(1);
            out.push_str("| phase | time (ms) | share | calls |\n|---|---|---|---|\n");
            let mut phases: Vec<_> = p.phases.iter().collect();
            phases.sort_by_key(|p| std::cmp::Reverse(p.1.ns));
            for (phase, t) in phases {
                if t.calls == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "| {} | {:.2} | {:.1}% | {} |\n",
                    phase.name(),
                    t.ns as f64 / 1e6,
                    t.ns as f64 * 100.0 / total as f64,
                    t.calls
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str(&format!(
                "\n## Top counters (of {})\n\n",
                self.counters.len()
            ));
            out.push_str("| counter | total |\n|---|---|\n");
            let mut top: Vec<_> = self.counters.iter().collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for (name, value) in top.into_iter().take(TOP_COUNTERS) {
                out.push_str(&format!("| {name} | {value} |\n"));
            }
        }

        if !self.histograms.is_empty() {
            out.push_str("\n## Merged latency histograms\n\n");
            out.push_str(
                "| histogram | cells | samples | p50 (ns) | p90 (ns) | p99 (ns) | max (ns) |\n\
                 |---|---|---|---|---|---|---|\n",
            );
            for h in &self.histograms {
                let s = &h.summary;
                out.push_str(&format!(
                    "| {} | {} | {} | {:.0} | {:.0} | {:.0} | {:.0} |\n",
                    h.name,
                    h.cells,
                    s.count,
                    s.p50 as f64 / 1e3,
                    s.p90 as f64 / 1e3,
                    s.p99 as f64 / 1e3,
                    s.max as f64 / 1e3,
                ));
            }
        }

        if !self.slo.is_empty() {
            out.push_str("\n## Per-tenant latency SLOs\n\n");
            out.push_str("| config | tenant | quantile | latency (ns) |\n|---|---|---|---|\n");
            for row in &self.slo {
                out.push_str(&format!(
                    "| {} | {} | {} | {:.0} |\n",
                    row.label, row.tenant, row.quantile, row.value_ns
                ));
            }
        }
        out
    }

    /// Writes `report.json` and `report.md` under
    /// `results/<experiment>/` (latest wins, like the manifest).
    pub fn write(&self, results_root: &Path) -> io::Result<()> {
        let dir = results_root.join(&self.manifest.experiment);
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join("report.json"), self.to_value().encode())?;
        std::fs::write(dir.join("report.md"), self.to_markdown())?;
        Ok(())
    }
}

/// Harvests per-tenant latency-quantile rows from artifact metrics:
/// any numeric metric named `<tenant>_p<NN>_ns` becomes a row.
fn slo_rows(records: &[RunRecord]) -> Vec<SloRow> {
    let mut rows = Vec::new();
    for r in records {
        let Outcome::Done(artifact) = &r.outcome else {
            continue;
        };
        let Value::Object(entries) = &artifact.metrics else {
            continue;
        };
        for (key, value) in entries {
            let Some((tenant, quantile)) = parse_slo_key(key) else {
                continue;
            };
            let Some(value_ns) = value.as_f64() else {
                continue;
            };
            rows.push(SloRow {
                label: r.config.label(),
                tenant: tenant.to_string(),
                quantile: quantile.to_string(),
                value_ns,
            });
        }
    }
    rows
}

/// Splits `victim_p99_ns` into `("victim", "p99")`; `None` for metrics
/// that are not latency quantiles.
fn parse_slo_key(key: &str) -> Option<(&str, &str)> {
    let stem = key.strip_suffix("_ns")?;
    let (tenant, quantile) = stem.rsplit_once('_')?;
    let digits = quantile.strip_prefix('p')?;
    (!digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())).then_some((tenant, quantile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Artifact, Config};
    use ragnar_telemetry::{Metrics, SessionReport};

    fn record_with_metrics(i: usize, m: &Metrics, artifact: Artifact) -> RunRecord {
        RunRecord {
            index: i,
            config: Config::new().with("i", i as u64),
            seed: i as u64,
            cache_key: format!("k{i}"),
            outcome: Outcome::Done(artifact),
            from_cache: false,
            elapsed_ms: 1.0,
            telemetry: Some(SessionReport {
                metrics: m.report(),
                ..Default::default()
            }),
            attempts: 1,
            quarantined: false,
            repro: None,
        }
    }

    #[test]
    fn merges_counters_and_histograms_across_cells() {
        let m1 = Metrics::new();
        m1.counter_add("wire.dropped_packets", 3);
        for i in 0..50 {
            m1.record_ns("qp_completion_ns", 100.0 + f64::from(i));
        }
        let m2 = Metrics::new();
        m2.counter_add("wire.dropped_packets", 4);
        for i in 0..50 {
            m2.record_ns("qp_completion_ns", 5000.0 + f64::from(i));
        }
        let records = vec![
            record_with_metrics(0, &m1, Artifact::text("a")),
            record_with_metrics(1, &m2, Artifact::text("b")),
        ];
        let manifest = Manifest::from_records("unit", 0, 1, &records, vec![], 1.0);
        let report = RunReport::build(&manifest, &records, None);
        assert_eq!(
            report.counters,
            vec![("wire.dropped_packets".to_string(), 7)]
        );
        assert_eq!(report.histograms.len(), 1);
        let h = &report.histograms[0];
        assert_eq!((h.name.as_str(), h.cells), ("qp_completion_ns", 2));
        assert_eq!(h.summary.count, 100);
        // The merge is exact: extremes come from different cells.
        assert_eq!(h.summary.min, 100_000);
        assert_eq!(h.summary.max, 5_049_000);
        // Bucket-merged quantiles match a single histogram fed both
        // cells' samples.
        let reference = Metrics::new();
        for i in 0..50 {
            reference.record_ns("qp_completion_ns", 100.0 + f64::from(i));
            reference.record_ns("qp_completion_ns", 5000.0 + f64::from(i));
        }
        let (_, expect) = &reference.report().expect("report").histograms[0];
        assert_eq!(h.summary, *expect);
    }

    #[test]
    fn slo_rows_come_from_quantile_metrics_only() {
        let artifact = Artifact::text("x")
            .with_metric("victim_p50_ns", 1200.0)
            .with_metric("victim_p99_ns", 9800.0)
            .with_metric("bystander_p99_ns", 1300.0)
            .with_metric("dropped_packets", 7u64)
            .with_metric("raw_bps", 1e9);
        let m = Metrics::new();
        let records = vec![record_with_metrics(0, &m, artifact)];
        let manifest = Manifest::from_records("unit", 0, 1, &records, vec![], 1.0);
        let report = RunReport::build(&manifest, &records, None);
        let rows: Vec<(&str, &str, f64)> = report
            .slo
            .iter()
            .map(|r| (r.tenant.as_str(), r.quantile.as_str(), r.value_ns))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("victim", "p50", 1200.0),
                ("victim", "p99", 9800.0),
                ("bystander", "p99", 1300.0),
            ]
        );
        assert_eq!(
            parse_slo_key("attacker_p999_ns"),
            Some(("attacker", "p999"))
        );
        assert_eq!(parse_slo_key("uli_latency_ns"), None);
        assert_eq!(parse_slo_key("p99_ns"), None);
        assert_eq!(parse_slo_key("x_pq_ns"), None);
    }

    #[test]
    fn json_shape_and_write() {
        let m = Metrics::new();
        m.counter_add("c", 1);
        m.record_ns("h_ns", 42.0);
        let records = vec![record_with_metrics(
            0,
            &m,
            Artifact::text("x").with_metric("victim_p99_ns", 10.0),
        )];
        let manifest = Manifest::from_records("unit-report", 3, 2, &records, vec![], 4.0);
        let report = RunReport::build(
            &manifest,
            &records,
            Some(ragnar_telemetry::profile::snapshot()),
        );
        let v = report.to_value();
        assert_eq!(
            v.get("experiment").and_then(Value::as_str),
            Some("unit-report")
        );
        assert_eq!(v.get("seed").and_then(Value::as_i64), Some(3));
        assert!(v.get("artifact_digest").is_some());
        let cells = v.get("cells").expect("cells");
        assert_eq!(cells.get("total").and_then(Value::as_i64), Some(1));
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("c"))
                .and_then(Value::as_i64),
            Some(1)
        );
        let h = v
            .get("histograms")
            .and_then(|h| h.get("h_ns"))
            .expect("hist");
        assert_eq!(h.get("count").and_then(Value::as_i64), Some(1));
        assert!(h.get("p99_ps").is_some());
        // Wall-clock material is quarantined under "timing".
        let timing = v.get("timing").expect("timing");
        assert!(timing.get("wall_ms").is_some());
        assert!(timing.get("profile").is_some());
        // Round-trips through the parser.
        let encoded = v.encode();
        Value::parse(&encoded).expect("report.json parses");

        let md = report.to_markdown();
        assert!(md.contains("# unit-report — run report"));
        assert!(md.contains("## Merged latency histograms"));
        assert!(md.contains("victim"));

        let root = std::env::temp_dir().join(format!("ragnar-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        report.write(&root).expect("write");
        assert!(root.join("unit-report/report.json").is_file());
        assert!(root.join("unit-report/report.md").is_file());
        let _ = std::fs::remove_dir_all(&root);
    }
}
