//! A minimal self-contained JSON value type.
//!
//! The harness stores every artifact, cache entry and manifest as JSON
//! on disk. Serde derives are compiled as no-ops in this offline tree
//! (see `vendor/README.md`), so the harness carries its own value type
//! with a deterministic encoder — object keys keep insertion order and
//! floats render via Rust's shortest-roundtrip formatter, which makes
//! the byte encoding itself content-hashable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (covers every counter the experiments emit).
    Int(i64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (and hashed).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts or replaces `key` in an object value, keeping insertion
    /// order for fresh keys.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        let Value::Object(entries) = self else {
            panic!("Value::set on non-object");
        };
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// Fetches a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is shortest-roundtrip: stable, lossless.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Value {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// A JSON parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expect: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expect) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expect as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // encoder; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the leading byte fixes the
                    // sequence length, so validate just that window —
                    // validating the whole remaining input here made
                    // parsing quadratic in document size.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    self.pos = end;
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() {
            return Err(self.err("expected a value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_shapes() {
        let mut obj = Value::object();
        obj.set("name", "fig4");
        obj.set("n", 42u64);
        obj.set("ratio", 0.375);
        obj.set("ok", true);
        obj.set("none", Value::Null);
        obj.set("xs", vec![1i64, 2, 3]);
        let text = obj.encode();
        let back = Value::parse(&text).expect("parse");
        assert_eq!(back, obj);
        // Deterministic encoding: same value, same bytes.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\té — ▁█".to_string());
        let back = Value::parse(&v.encode()).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn float_encoding_is_lossless() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 6.02e23, -0.0, 123456.0] {
            let v = Value::Float(f);
            let back = Value::parse(&v.encode()).expect("parse");
            assert_eq!(back.as_f64().expect("float"), f);
        }
    }

    #[test]
    fn set_replaces_in_place() {
        let mut obj = Value::object();
        obj.set("a", 1i64);
        obj.set("b", 2i64);
        obj.set("a", 3i64);
        assert_eq!(obj.encode(), r#"{"a":3,"b":2}"#);
        assert_eq!(obj.get("a").and_then(Value::as_i64), Some(3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("nul").is_err());
    }
}
