//! End-to-end harness guarantees, exercised through the public API the
//! experiment binaries use ([`run_with_cli`]): cache hits and misses,
//! resume after an interrupted sweep, and thread-count-independent
//! determinism.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ragnar_harness::{
    run_with_cli, Artifact, Cli, Config, Experiment, Manifest, ResultStore, Value,
};

/// A sweep whose executions are observable: every real (non-cached) run
/// bumps a counter, and each artifact mixes config and seed so identity
/// mistakes show up as digest mismatches.
struct Counted {
    cells: u64,
    runs: AtomicUsize,
    version: u32,
}

impl Counted {
    fn new(cells: u64) -> Counted {
        Counted {
            cells,
            runs: AtomicUsize::new(0),
            version: 1,
        }
    }
}

impl Experiment for Counted {
    fn name(&self) -> &'static str {
        "harness_itest"
    }

    fn description(&self) -> &'static str {
        "integration-test sweep"
    }

    fn version(&self) -> u32 {
        self.version
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        let cells = if cli.quick { 2 } else { self.cells };
        (0..cells)
            .map(|i| Config::new().with("cell", i).with("mode", "itest"))
            .collect()
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        let cell = config.u64("cell").ok_or("missing cell")?;
        Ok(Artifact::text(format!("cell {cell} -> {seed:#x}\n"))
            .with_metric("cell", cell)
            .with_metric("seed", seed))
    }
}

fn temp_results(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ragnar-harness-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cli(results: &Path, threads: usize, seed: u64) -> Cli {
    let mut cli = Cli::default();
    cli.results_dir = results.to_path_buf();
    cli.threads = threads;
    cli.seed = seed;
    cli
}

fn read_manifest(results: &Path) -> Value {
    let raw = std::fs::read_to_string(results.join("harness_itest/manifest.json"))
        .expect("manifest.json exists");
    Value::parse(&raw).expect("manifest parses")
}

fn manifest_field(results: &Path, key: &str) -> i64 {
    read_manifest(results)
        .get(key)
        .and_then(Value::as_i64)
        .unwrap_or_else(|| panic!("manifest field {key}"))
}

fn manifest_digest(results: &Path) -> String {
    read_manifest(results)
        .get("artifact_digest")
        .and_then(Value::as_str)
        .expect("artifact_digest")
        .to_string()
}

#[test]
fn second_invocation_is_all_cache_hits() {
    let results = temp_results("cache-hit");
    let exp = Counted::new(12);
    run_with_cli(&exp, &cli(&results, 4, 7)).expect("first run");
    assert_eq!(exp.runs.load(Ordering::SeqCst), 12);
    assert_eq!(manifest_field(&results, "configs_executed"), 12);

    run_with_cli(&exp, &cli(&results, 4, 7)).expect("second run");
    assert_eq!(
        exp.runs.load(Ordering::SeqCst),
        12,
        "second run must not execute"
    );
    assert_eq!(manifest_field(&results, "configs_cached"), 12);
    assert_eq!(manifest_field(&results, "configs_executed"), 0);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn cache_misses_on_config_seed_or_version_change() {
    let results = temp_results("cache-miss");
    let mut exp = Counted::new(4);
    run_with_cli(&exp, &cli(&results, 2, 7)).expect("seed 7");
    assert_eq!(exp.runs.load(Ordering::SeqCst), 4);

    // A different master seed derives different per-config seeds: all miss.
    run_with_cli(&exp, &cli(&results, 2, 8)).expect("seed 8");
    assert_eq!(exp.runs.load(Ordering::SeqCst), 8);

    // A grown parameter space re-runs only the new configs.
    exp.cells = 6;
    run_with_cli(&exp, &cli(&results, 2, 7)).expect("grown sweep");
    assert_eq!(exp.runs.load(Ordering::SeqCst), 10, "4 cached + 2 new");
    assert_eq!(manifest_field(&results, "configs_cached"), 4);

    // A code-version bump invalidates everything.
    exp.version = 2;
    run_with_cli(&exp, &cli(&results, 2, 7)).expect("bumped version");
    assert_eq!(exp.runs.load(Ordering::SeqCst), 16);

    // --quick is just a smaller parameter space: its cells still hit.
    let mut quick = cli(&results, 2, 7);
    quick.quick = true;
    run_with_cli(&exp, &quick).expect("quick");
    assert_eq!(
        exp.runs.load(Ordering::SeqCst),
        16,
        "quick subset fully cached"
    );
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn interrupted_sweep_resumes_incrementally() {
    let results = temp_results("resume");
    let exp = Counted::new(10);

    // Simulate an interrupted sweep: only half the cells ever stored.
    // (An interrupt between cells leaves exactly this state on disk —
    // completed cells persisted, the rest absent.)
    let store = ResultStore::open(&results, exp.name()).expect("open store");
    let full = cli(&results, 1, 3);
    let configs = exp.params(&full);
    for (i, config) in configs.iter().take(5).enumerate() {
        let seed = ragnar_harness::config_seed(3, exp.name(), config);
        let artifact = exp.run(config, seed).expect("run");
        let key = ragnar_harness::hash::cache_key(
            exp.name(),
            &config.canonical(),
            seed,
            exp.version(),
            sim_core::ENGINE_VERSION,
            ragnar_harness::cache::FORMAT_VERSION,
        );
        store
            .store(&key, config, seed, exp.version(), &artifact, 0.5)
            .unwrap_or_else(|e| panic!("store cell {i}: {e}"));
    }
    let pre_runs = exp.runs.load(Ordering::SeqCst);
    assert_eq!(pre_runs, 5);

    // The "resumed" invocation only executes the missing half.
    run_with_cli(&exp, &full).expect("resume");
    assert_eq!(exp.runs.load(Ordering::SeqCst), 10);
    assert_eq!(manifest_field(&results, "configs_cached"), 5);
    assert_eq!(manifest_field(&results, "configs_executed"), 5);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn engine_version_bump_invalidates_heap_era_cells() {
    // Regression test for the calendar-queue swap: results persisted
    // under a previous simulation-engine generation (keys built with an
    // older `ENGINE_VERSION`) must be treated as misses, never served as
    // hits to the current engine.
    let results = temp_results("engine-bump");
    let exp = Counted::new(4);
    let store = ResultStore::open(&results, exp.name()).expect("open store");
    let full = cli(&results, 1, 3);
    for config in &exp.params(&full) {
        let seed = ragnar_harness::config_seed(3, exp.name(), config);
        let artifact = exp.run(config, seed).expect("run");
        // Key as the heap-era engine (version 1) would have computed it.
        let stale_key = ragnar_harness::hash::cache_key(
            exp.name(),
            &config.canonical(),
            seed,
            exp.version(),
            sim_core::ENGINE_VERSION - 1,
            ragnar_harness::cache::FORMAT_VERSION,
        );
        store
            .store(&stale_key, config, seed, exp.version(), &artifact, 0.5)
            .expect("store stale cell");
    }
    assert_eq!(exp.runs.load(Ordering::SeqCst), 4);
    assert_eq!(store.len(), 4, "heap-era cells are on disk");

    // The current engine must re-execute every cell.
    run_with_cli(&exp, &full).expect("run under current engine");
    assert_eq!(
        exp.runs.load(Ordering::SeqCst),
        8,
        "all heap-era cells must miss"
    );
    assert_eq!(manifest_field(&results, "configs_cached"), 0);
    assert_eq!(manifest_field(&results, "configs_executed"), 4);

    // And the re-run persisted fresh cells under current-engine keys.
    run_with_cli(&exp, &full).expect("second run hits");
    assert_eq!(exp.runs.load(Ordering::SeqCst), 8);
    assert_eq!(manifest_field(&results, "configs_cached"), 4);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn artifact_digest_is_thread_count_invariant() {
    let results_1 = temp_results("threads-1");
    let results_8 = temp_results("threads-8");
    let exp1 = Counted::new(32);
    let exp8 = Counted::new(32);
    run_with_cli(&exp1, &cli(&results_1, 1, 42)).expect("1 thread");
    run_with_cli(&exp8, &cli(&results_8, 8, 42)).expect("8 threads");
    assert_eq!(
        manifest_digest(&results_1),
        manifest_digest(&results_8),
        "identical sweeps must produce bit-identical artifacts at any thread count"
    );
    // …and a different seed must show up in the digest.
    let results_s = temp_results("threads-seed");
    let exps = Counted::new(32);
    run_with_cli(&exps, &cli(&results_s, 8, 43)).expect("other seed");
    assert_ne!(manifest_digest(&results_1), manifest_digest(&results_s));
    let _ = std::fs::remove_dir_all(&results_1);
    let _ = std::fs::remove_dir_all(&results_8);
    let _ = std::fs::remove_dir_all(&results_s);
}

#[test]
fn failed_configs_are_isolated_and_counted() {
    struct Flaky;
    impl Experiment for Flaky {
        fn name(&self) -> &'static str {
            "harness_itest_flaky"
        }
        fn description(&self) -> &'static str {
            "panics and errors stay per-cell"
        }
        fn params(&self, _cli: &Cli) -> Vec<Config> {
            (0..6u64).map(|i| Config::new().with("cell", i)).collect()
        }
        fn run(&self, config: &Config, _seed: u64) -> Result<Artifact, String> {
            match config.u64("cell") {
                Some(2) => panic!("cell 2 exploded"),
                Some(4) => Err("cell 4 errored".to_string()),
                other => Ok(Artifact::text(format!("ok {other:?}\n"))),
            }
        }
    }
    let results = temp_results("flaky");
    let mut args = Cli::default();
    args.results_dir = results.clone();
    args.threads = 3;
    let failed = run_with_cli(&Flaky, &args).expect("sweep completes");
    assert_eq!(failed, 2, "both bad cells recorded, good cells unaffected");
    let raw = std::fs::read_to_string(results.join("harness_itest_flaky/manifest.json"))
        .expect("manifest");
    let manifest = Value::parse(&raw).expect("parse");
    assert_eq!(
        manifest.get("configs_failed").and_then(Value::as_i64),
        Some(2)
    );
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn manifest_history_accumulates() {
    let results = temp_results("history");
    let exp = Counted::new(3);
    for _ in 0..3 {
        run_with_cli(&exp, &cli(&results, 2, 1)).expect("run");
    }
    let history = std::fs::read_to_string(results.join("harness_itest/manifest-history.jsonl"))
        .expect("history");
    assert_eq!(history.lines().count(), 3);
    // Every line is valid JSON with the digest present.
    for line in history.lines() {
        let v = Value::parse(line).expect("history line parses");
        assert!(v.get("artifact_digest").is_some());
    }
    // Manifest helper type round-trips the summary line.
    let m = Manifest::from_records("unit", 0, 1, &[], vec![], 0.0);
    assert!(m.summary_line().contains("[unit]"));
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn only_filter_restricts_the_sweep() {
    let results = temp_results("only");
    let exp = Counted::new(8);
    let mut args = cli(&results, 2, 5);
    args.only = Some("cell=3".to_string());
    run_with_cli(&exp, &args).expect("filtered run");
    assert_eq!(exp.runs.load(Ordering::SeqCst), 1, "only one cell matches");
    assert_eq!(manifest_field(&results, "configs_total"), 1);
    // A filter that matches nothing is a usage error, not an empty sweep.
    args.only = Some("cell=99".to_string());
    let err = run_with_cli(&exp, &args).expect_err("no match");
    assert!(err.contains("cell=99"), "got: {err}");
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn cli_retries_heal_a_transient_cell() {
    struct Wobbly {
        tried: AtomicUsize,
    }
    impl Experiment for Wobbly {
        fn name(&self) -> &'static str {
            "harness_itest_wobbly"
        }
        fn params(&self, _cli: &Cli) -> Vec<Config> {
            (0..3u64).map(|i| Config::new().with("cell", i)).collect()
        }
        fn run(&self, config: &Config, _seed: u64) -> Result<Artifact, String> {
            if config.u64("cell") == Some(1) && self.tried.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err("transient".to_string());
            }
            Ok(Artifact::text("ok\n"))
        }
    }
    let results = temp_results("retries");
    let exp = Wobbly {
        tried: AtomicUsize::new(0),
    };
    let mut args = cli(&results, 1, 0);
    args.retries = 1;
    let failed = run_with_cli(&exp, &args).expect("sweep completes");
    assert_eq!(failed, 0, "the wobble healed on retry");
    assert_eq!(exp.tried.load(Ordering::SeqCst), 2);
    // The manifest records the extra attempt on the healed cell.
    let raw = std::fs::read_to_string(results.join("harness_itest_wobbly/manifest.json"))
        .expect("manifest");
    let manifest = Value::parse(&raw).expect("parse");
    let cells = match manifest.get("cells") {
        Some(Value::Array(cells)) => cells.clone(),
        other => panic!("cells missing: {other:?}"),
    };
    assert_eq!(cells[1].get("attempts").and_then(Value::as_i64), Some(2));
    assert_eq!(cells[0].get("attempts").and_then(Value::as_i64), Some(1));
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn monitor_abort_salvages_completed_cells() {
    struct Tripwire;
    impl Experiment for Tripwire {
        fn name(&self) -> &'static str {
            "harness_itest_abort"
        }
        fn params(&self, _cli: &Cli) -> Vec<Config> {
            (0..6u64).map(|i| Config::new().with("cell", i)).collect()
        }
        fn run(&self, config: &Config, _seed: u64) -> Result<Artifact, String> {
            if config.u64("cell") == Some(2) {
                panic!("[monitor-abort] arena ledger skew at event 312");
            }
            Ok(Artifact::text("ok\n"))
        }
    }
    let results = temp_results("abort");
    // threads=1 pins the schedule: cells 0 and 1 complete, 2 trips the
    // abort, 3..6 are skipped.
    let failed = run_with_cli(&Tripwire, &cli(&results, 1, 0)).expect("sweep returns");
    assert_eq!(failed, 4, "one aborting cell + three skipped");
    let raw = std::fs::read_to_string(results.join("harness_itest_abort/manifest.json"))
        .expect("manifest");
    let manifest = Value::parse(&raw).expect("parse");
    assert_eq!(manifest.get("aborted").and_then(Value::as_bool), Some(true));
    assert_eq!(
        manifest.get("configs_skipped").and_then(Value::as_i64),
        Some(3)
    );
    // Crash-consistent salvage: the cells that finished before the abort
    // are persisted and will be cache hits on the next (fixed) run.
    let store = ResultStore::open(&results, "harness_itest_abort").expect("open");
    assert_eq!(store.len(), 2, "completed cells salvaged");
    // The aborting cell carries a paste-ready repro in the manifest.
    let cells = match manifest.get("cells") {
        Some(Value::Array(cells)) => cells.clone(),
        other => panic!("cells missing: {other:?}"),
    };
    let repro = cells[2]
        .get("repro")
        .and_then(Value::as_str)
        .expect("repro present");
    assert!(
        repro.contains("harness_itest_abort") && repro.contains("--only \"cell=2\""),
        "got: {repro}"
    );
    let _ = std::fs::remove_dir_all(&results);
}
