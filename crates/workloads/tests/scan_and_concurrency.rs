//! Range scans over the sibling-linked leaves and multi-client lock
//! contention on the Sherman tree.

use ragnar_workloads::sherman::{value_from, OpResult, ShermanTree, TreeClient, TreeOp};
use rdma_verbs::{AccessFlags, ConnectOptions, DeviceProfile, MrHandle, QpHandle, Simulation};
use std::cell::RefCell;
use std::rc::Rc;

fn pairs(n: u64) -> Vec<(u64, [u8; 56])> {
    (0..n)
        .map(|i| (i * 5 + 3, value_from(format!("v{i}").as_bytes())))
        .collect()
}

fn setup(tree: &ShermanTree, clients: usize) -> (Simulation, Vec<QpHandle>, MrHandle) {
    let mut sim = Simulation::new(123);
    let ms = sim.add_host(DeviceProfile::connectx5());
    let pd_ms = sim.alloc_pd(ms);
    let mr = sim.register_mr(
        ms,
        pd_ms,
        (tree.image().len() as u64 + 4096).max(1 << 21),
        AccessFlags::remote_all(),
    );
    sim.write_memory(ms, mr.addr(0), tree.image());
    let mut qps = Vec::new();
    for _ in 0..clients {
        let cs = sim.add_host(DeviceProfile::connectx5());
        let pd_cs = sim.alloc_pd(cs);
        let (cq, _) = sim.connect(cs, pd_cs, ms, pd_ms, ConnectOptions::default());
        qps.push(cq);
    }
    (sim, qps, mr)
}

#[test]
fn range_scan_matches_reference() {
    let p = pairs(300);
    let tree = ShermanTree::bulk_load(&p, 0.7);
    let (mut sim, qps, mr) = setup(&tree, 1);
    let results = Rc::new(RefCell::new(Vec::new()));
    let ops = vec![
        // Mid-range scan crossing several leaves.
        TreeOp::Scan {
            start: 500,
            limit: 40,
        },
        // Scan from before the first key.
        TreeOp::Scan { start: 0, limit: 5 },
        // Scan running off the end of the tree.
        TreeOp::Scan {
            start: 5 * 295,
            limit: 100,
        },
        // Empty scan past every key.
        TreeOp::Scan {
            start: 10_000,
            limit: 10,
        },
    ];
    let app = sim.add_app(Box::new(TreeClient::new(
        qps[0],
        mr,
        tree.root_offset(),
        0x40_000,
        ops,
        Rc::clone(&results),
        1,
        true,
    )));
    sim.own_qp(app, qps[0]);
    sim.run();

    let reference: Vec<(u64, [u8; 56])> = p.clone();
    let expect = |start: u64, limit: usize| -> Vec<(u64, [u8; 56])> {
        reference
            .iter()
            .filter(|(k, _)| *k >= start)
            .take(limit)
            .copied()
            .collect()
    };
    let res = results.borrow();
    assert_eq!(res[0], OpResult::Scanned(expect(500, 40)));
    assert_eq!(res[1], OpResult::Scanned(expect(0, 5)));
    assert_eq!(res[2], OpResult::Scanned(expect(5 * 295, 100)));
    assert_eq!(res[3], OpResult::Scanned(Vec::new()));
}

#[test]
fn concurrent_clients_serialize_on_the_leaf_lock() {
    // Two CS clients update overlapping keys of the same leaf; the CAS
    // lock must serialize them and every update must land.
    let p = pairs(10); // a single leaf
    let tree = ShermanTree::bulk_load(&p, 0.9);
    let (mut sim, qps, mr) = setup(&tree, 2);
    let results_a = Rc::new(RefCell::new(Vec::new()));
    let results_b = Rc::new(RefCell::new(Vec::new()));
    let ops_a: Vec<TreeOp> = (0..10)
        .map(|i| TreeOp::Insert(p[i % p.len()].0, value_from(&[0xAA; 8])))
        .collect();
    let ops_b: Vec<TreeOp> = (0..10)
        .map(|i| TreeOp::Insert(p[(i + 3) % p.len()].0, value_from(&[0xBB; 8])))
        .collect();
    let a = sim.add_app(Box::new(TreeClient::new(
        qps[0],
        mr,
        tree.root_offset(),
        0x40_000,
        ops_a,
        Rc::clone(&results_a),
        0xA,
        false,
    )));
    sim.own_qp(a, qps[0]);
    let b = sim.add_app(Box::new(TreeClient::new(
        qps[1],
        mr,
        tree.root_offset(),
        0x40_000,
        ops_b,
        Rc::clone(&results_b),
        0xB,
        false,
    )));
    sim.own_qp(b, qps[1]);
    sim.run_until(sim_core::SimTime::from_secs(1));

    assert_eq!(results_a.borrow().len(), 10);
    assert_eq!(results_b.borrow().len(), 10);
    assert!(results_a
        .borrow()
        .iter()
        .all(|r| matches!(r, OpResult::Inserted(_))));
    assert!(results_b
        .borrow()
        .iter()
        .all(|r| matches!(r, OpResult::Inserted(_))));

    // Every touched key holds one of the two writers' values, and the
    // lock is released.
    let image_len = tree.image().len() as u64;
    let final_image = sim.read_memory(mr.host, mr.addr(0), image_len);
    let lock = u64::from_le_bytes(final_image[8..16].try_into().expect("8"));
    assert_eq!(lock, 0, "leaf lock released");
    for (k, _) in &p {
        let off = tree.entry_offset(*k).expect("present") as usize;
        let v = final_image[off + 8];
        assert!(
            v == 0xAA || v == 0xBB || v == b'v',
            "key {k} holds unexpected value {v:#x}"
        );
    }
}
