//! Property-based tests of the Sherman B⁺-tree against reference models.

use proptest::prelude::*;
use ragnar_workloads::sherman::{
    value_from, OpResult, ShermanTree, TreeClient, TreeOp, INTERNAL_CAP, LEAF_CAP, NODE_SIZE,
};
use rdma_verbs::{AccessFlags, ConnectOptions, DeviceProfile, Simulation};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

fn sorted_pairs(keys: &[u64]) -> Vec<(u64, [u8; 56])> {
    let mut uniq: Vec<u64> = keys.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    uniq.iter()
        .map(|&k| (k, value_from(&k.to_le_bytes())))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bulk-loaded trees answer every lookup like a BTreeMap, and miss
    /// exactly the absent keys.
    #[test]
    fn bulk_load_matches_btreemap(
        keys in prop::collection::vec(0u64..100_000, 1..400),
        probes in prop::collection::vec(0u64..100_000, 1..100),
        fill_pct in 30u32..=100
    ) {
        let pairs = sorted_pairs(&keys);
        let reference: BTreeMap<u64, [u8; 56]> = pairs.iter().copied().collect();
        let tree = ShermanTree::bulk_load(&pairs, f64::from(fill_pct) / 100.0);
        for probe in probes {
            prop_assert_eq!(
                tree.lookup_local(probe),
                reference.get(&probe).copied(),
                "key {}", probe
            );
        }
    }

    /// Structural invariants: node sizes, fan-out bounds, leaf entry
    /// alignment, height consistent with the key count.
    #[test]
    fn tree_structure_invariants(
        keys in prop::collection::vec(0u64..1_000_000, 1..600),
        fill_pct in 30u32..=100
    ) {
        let pairs = sorted_pairs(&keys);
        let fill = f64::from(fill_pct) / 100.0;
        let tree = ShermanTree::bulk_load(&pairs, fill);
        let image = tree.image();
        prop_assert_eq!(image.len() % NODE_SIZE as usize, 0);
        let per_leaf = ((LEAF_CAP as f64 * fill).floor() as usize).max(1);
        let min_leaves = pairs.len().div_ceil(per_leaf);
        prop_assert!(tree.node_count() >= min_leaves);
        // Height bound: ceil(log_fanout(leaves)) + 1.
        let mut level = min_leaves;
        let mut height = 1;
        while level > 1 {
            level = level.div_ceil(INTERNAL_CAP);
            height += 1;
        }
        prop_assert_eq!(tree.height(), height as u32);
        // Every key's entry offset points at its key bytes.
        for (k, _) in &pairs {
            let off = tree.entry_offset(*k).expect("present") as usize;
            let stored = u64::from_le_bytes(image[off..off + 8].try_into().expect("8"));
            prop_assert_eq!(stored, *k);
        }
    }

    /// Remote clients see exactly what the host-side reference sees, and
    /// inserts round-trip through the simulated fabric.
    #[test]
    fn remote_client_matches_reference(
        keys in prop::collection::vec(1u64..10_000, 2..60),
        updates in prop::collection::vec((0usize..60, any::<u8>()), 1..12),
        seed in 0u64..100
    ) {
        let pairs = sorted_pairs(&keys);
        let tree = ShermanTree::bulk_load(&pairs, 0.6);
        let mut reference: BTreeMap<u64, [u8; 56]> = pairs.iter().copied().collect();

        let mut sim = Simulation::new(seed);
        let ms = sim.add_host(DeviceProfile::connectx5());
        let cs = sim.add_host(DeviceProfile::connectx5());
        let pd_ms = sim.alloc_pd(ms);
        let pd_cs = sim.alloc_pd(cs);
        let mr = sim.register_mr(
            ms,
            pd_ms,
            (tree.image().len() as u64 + 4096).max(1 << 21),
            AccessFlags::remote_all(),
        );
        sim.write_memory(ms, mr.addr(0), tree.image());
        let (qp, _) = sim.connect(cs, pd_cs, ms, pd_ms, ConnectOptions::default());

        // Interleave updates of existing keys with lookups of every key.
        let mut ops = Vec::new();
        for &(idx, fill) in &updates {
            let k = pairs[idx % pairs.len()].0;
            let v = value_from(&[fill; 8]);
            reference.insert(k, v);
            ops.push(TreeOp::Insert(k, v));
        }
        for (k, _) in &pairs {
            ops.push(TreeOp::Get(*k));
        }
        ops.push(TreeOp::Get(0)); // absent (keys start at 1)

        let results = Rc::new(RefCell::new(Vec::new()));
        let app = sim.add_app(Box::new(TreeClient::new(
            qp,
            mr,
            tree.root_offset(),
            0x40_000,
            ops.clone(),
            Rc::clone(&results),
            0xCC,
            true,
        )));
        sim.own_qp(app, qp);
        sim.run();

        let res = results.borrow();
        prop_assert_eq!(res.len(), ops.len());
        let mut i = 0;
        for &(_, _) in &updates {
            prop_assert!(matches!(res[i], OpResult::Inserted(_)), "update {i}: {:?}", res[i]);
            i += 1;
        }
        for (k, _) in &pairs {
            prop_assert_eq!(
                &res[i],
                &OpResult::Found(*k, reference[k]),
                "lookup of {}", k
            );
            i += 1;
        }
        prop_assert_eq!(&res[i], &OpResult::NotFound(0));
    }
}
