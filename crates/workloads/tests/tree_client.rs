//! End-to-end tests of the Sherman tree client over the simulated fabric.

use ragnar_workloads::sherman::{
    value_from, OpResult, ShermanTree, ShermanVictim, TreeClient, TreeOp, NODE_SIZE,
};
use rdma_verbs::{AccessFlags, ConnectOptions, DeviceProfile, MrHandle, QpHandle, Simulation};
use sim_core::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

fn setup(tree: &ShermanTree) -> (Simulation, QpHandle, MrHandle) {
    let mut sim = Simulation::new(99);
    let ms = sim.add_host(DeviceProfile::connectx5());
    let cs = sim.add_host(DeviceProfile::connectx5());
    let pd_ms = sim.alloc_pd(ms);
    let pd_cs = sim.alloc_pd(cs);
    let mr = sim.register_mr(
        ms,
        pd_ms,
        (tree.image().len() as u64 + 4096).max(1 << 21),
        AccessFlags::remote_all(),
    );
    sim.write_memory(ms, mr.addr(0), tree.image());
    let (cq, _sq) = sim.connect(cs, pd_cs, ms, pd_ms, ConnectOptions::default());
    (sim, cq, mr)
}

fn pairs(n: u64) -> Vec<(u64, [u8; 56])> {
    (0..n)
        .map(|i| (i * 7 + 1, value_from(format!("payload-{i}").as_bytes())))
        .collect()
}

#[test]
fn remote_get_matches_local_lookup() {
    let p = pairs(200);
    let tree = ShermanTree::bulk_load(&p, 0.8);
    let (mut sim, qp, mr) = setup(&tree);
    let results = Rc::new(RefCell::new(Vec::new()));
    let ops = vec![
        TreeOp::Get(1),          // first key
        TreeOp::Get(7 * 57 + 1), // middle key
        TreeOp::Get(7 * 199 + 1),
        TreeOp::Get(4), // absent
    ];
    let app = sim.add_app(Box::new(TreeClient::new(
        qp,
        mr,
        tree.root_offset(),
        0x10_000,
        ops,
        Rc::clone(&results),
        0xC5,
        true,
    )));
    sim.own_qp(app, qp);
    sim.run();
    let r = results.borrow();
    assert_eq!(r.len(), 4);
    assert_eq!(r[0], OpResult::Found(1, tree.lookup_local(1).unwrap()));
    assert_eq!(
        r[1],
        OpResult::Found(7 * 57 + 1, tree.lookup_local(7 * 57 + 1).unwrap())
    );
    assert_eq!(
        r[2],
        OpResult::Found(7 * 199 + 1, tree.lookup_local(7 * 199 + 1).unwrap())
    );
    assert_eq!(r[3], OpResult::NotFound(4));
}

#[test]
fn remote_insert_then_get_round_trips() {
    let p = pairs(100);
    let tree = ShermanTree::bulk_load(&p, 0.6);
    let (mut sim, qp, mr) = setup(&tree);
    let results = Rc::new(RefCell::new(Vec::new()));
    let new_val = value_from(b"fresh-value");
    let ops = vec![
        // Update an existing key in place.
        TreeOp::Insert(1, new_val),
        TreeOp::Get(1),
        // Insert a brand-new key into leaf slack.
        TreeOp::Insert(2, value_from(b"brand-new")),
        TreeOp::Get(2),
    ];
    let app = sim.add_app(Box::new(TreeClient::new(
        qp,
        mr,
        tree.root_offset(),
        0x10_000,
        ops,
        Rc::clone(&results),
        0xC5,
        true,
    )));
    sim.own_qp(app, qp);
    sim.run();
    let r = results.borrow();
    assert_eq!(r[0], OpResult::Inserted(1));
    assert_eq!(r[1], OpResult::Found(1, new_val));
    assert_eq!(r[2], OpResult::Inserted(2));
    assert_eq!(r[3], OpResult::Found(2, value_from(b"brand-new")));
}

#[test]
fn victim_generates_fixed_offset_reads() {
    let p = pairs(50);
    let tree = ShermanTree::bulk_load(&p, 0.8);
    let (mut sim, qp, mr) = setup(&tree);
    // Shared 1 KB file placed after the tree image, node-aligned.
    let file_base = (tree.image().len() as u64).div_ceil(NODE_SIZE) * NODE_SIZE;
    let app = sim.add_app(Box::new(ShermanVictim::new(
        qp,
        mr,
        file_base,
        256, // the secret candidate offset
        tree.root_offset(),
        100,
        1,
        0x20_000,
    )));
    sim.own_qp(app, qp);
    sim.run_until(SimTime::from_micros(500));
    // The victim keeps issuing traffic: check volume and the secret
    // address actually dominates via counters.
    let reqs = sim.counters(qp.host).requests_per_opcode;
    let reads = reqs[rdma_verbs::Opcode::Read.index()];
    assert!(reads > 50, "victim should sustain reads, got {reads}");
}
