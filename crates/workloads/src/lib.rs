//! # ragnar-workloads — the real-world victims of the §VI side channels
//!
//! * [`shuffle_join`] — a distributed-database traffic generator with
//!   shuffle (plateau) and join (tooth) phases, fingerprinted in Fig. 12.
//! * [`sherman`] — a Sherman-style write-optimized B⁺-tree KV index on
//!   disaggregated memory with a 1 KB shared file region, snooped in
//!   Fig. 13.
//!
//! Both victims run as ordinary [`rdma_verbs::App`]s on client hosts and
//! generate genuine RDMA traffic through the simulated fabric — the
//! attacks in `ragnar-core` observe only contention, never the victims'
//! data.

#![warn(missing_docs)]

pub mod sherman;
pub mod shuffle_join;
