//! A distributed-database traffic generator with RDMA shuffle/join
//! phases — the victim of the paper's §VI-A fingerprinting attack.
//!
//! Shuffle is network-intensive and *sustained* (a plateau of bulk
//! transfers); join alternates network bursts with compute gaps (a tooth
//! pattern). Fig. 12 shows exactly these two shapes in the attacker's
//! monitored bandwidth.

use rdma_verbs::{App, Cqe, Ctx, HostId, MrKey, QpHandle, VerbsError, WorkRequest};
use sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One phase of the database workload script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbPhase {
    /// No traffic.
    Idle(SimDuration),
    /// Sustained bulk shuffle traffic.
    Shuffle(SimDuration),
    /// `rounds` bursts of `burst` traffic separated by `gap` compute time.
    Join {
        /// Number of build/probe rounds.
        rounds: u32,
        /// Network-active time per round.
        burst: SimDuration,
        /// Compute gap per round.
        gap: SimDuration,
    },
}

impl DbPhase {
    /// Total wall time of the phase.
    pub fn duration(&self) -> SimDuration {
        match *self {
            DbPhase::Idle(d) | DbPhase::Shuffle(d) => d,
            DbPhase::Join { rounds, burst, gap } => (burst + gap) * u64::from(rounds),
        }
    }

    /// Short label for ground-truth records.
    pub fn label(&self) -> &'static str {
        match self {
            DbPhase::Idle(_) => "idle",
            DbPhase::Shuffle(_) => "shuffle",
            DbPhase::Join { .. } => "join",
        }
    }
}

/// Ground truth: which phase was active when.
#[derive(Debug, Clone, Default)]
pub struct PhaseLog {
    /// `(label, start, end)` triples.
    pub intervals: Vec<(&'static str, SimTime, SimTime)>,
}

impl PhaseLog {
    /// The label active at `t`, if any.
    pub fn label_at(&self, t: SimTime) -> Option<&'static str> {
        self.intervals
            .iter()
            .find(|&&(_, s, e)| t >= s && t < e)
            .map(|&(l, _, _)| l)
    }
}

/// Configuration of the database victim.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Message size during shuffle (bulk transfers).
    pub shuffle_msg_len: u64,
    /// Message size during join bursts.
    pub join_msg_len: u64,
    /// Remote key of the victim's working MR on the server.
    pub rkey: MrKey,
    /// Base address of the working region.
    pub remote_base: u64,
    /// Bytes available in the working region.
    pub remote_len: u64,
}

/// The database victim app: walks a phase script, generating saturating
/// write traffic whenever a phase (or join round burst) is active.
pub struct DbVictim {
    qp: QpHandle,
    cfg: DbConfig,
    phases: Vec<DbPhase>,
    log: Rc<RefCell<PhaseLog>>,
    active: bool,
    msg_len: u64,
    seq: u64,
    // Timer tokens encode script progress.
    script: Vec<(SimDuration, bool, u64)>, // (at-offset, active?, msg_len)
}

impl DbVictim {
    /// Creates the victim; the script starts when the simulation starts.
    pub fn new(
        qp: QpHandle,
        cfg: DbConfig,
        phases: Vec<DbPhase>,
        log: Rc<RefCell<PhaseLog>>,
    ) -> Self {
        // Pre-compile the phase list into (offset, active, msg_len)
        // transitions.
        let mut script = Vec::new();
        let mut t = SimDuration::ZERO;
        for p in &phases {
            match *p {
                DbPhase::Idle(d) => {
                    script.push((t, false, 0));
                    t += d;
                }
                DbPhase::Shuffle(d) => {
                    script.push((t, true, 0)); // msg_len patched below
                    t += d;
                }
                DbPhase::Join { rounds, burst, gap } => {
                    for _ in 0..rounds {
                        script.push((t, true, 1));
                        t += burst;
                        script.push((t, false, 0));
                        t += gap;
                    }
                }
            }
        }
        script.push((t, false, 0)); // final stop
        DbVictim {
            qp,
            cfg,
            phases,
            log,
            active: false,
            msg_len: 0,
            seq: 0,
            script,
        }
    }

    fn fill(&mut self, ctx: &mut Ctx<'_>) {
        if !self.active {
            return;
        }
        loop {
            let slot = self.seq % (self.cfg.remote_len / self.cfg.shuffle_msg_len.max(1)).max(1);
            let addr = self.cfg.remote_base + slot * self.cfg.shuffle_msg_len;
            self.seq += 1;
            let wr = WorkRequest::write(self.seq, 0x9000, addr, self.cfg.rkey, self.msg_len);
            match ctx.post_send(self.qp, wr) {
                Ok(()) => {}
                Err(VerbsError::SendQueueFull) | Err(VerbsError::QpInError) => break,
                Err(e) => panic!("victim post failed: {e}"),
            }
        }
    }
}

impl App for DbVictim {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Record ground truth.
        {
            let mut log = self.log.borrow_mut();
            let mut t = ctx.now();
            for p in &self.phases {
                let end = t + p.duration();
                log.intervals.push((p.label(), t, end));
                t = end;
            }
        }
        for (i, &(offset, _, _)) in self.script.iter().enumerate() {
            ctx.set_timer(offset, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let (_, active, kind) = self.script[token as usize];
        self.active = active;
        if active {
            self.msg_len = if kind == 1 {
                self.cfg.join_msg_len
            } else {
                self.cfg.shuffle_msg_len
            };
            self.fill(ctx);
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, _cqe: Cqe) {
        self.fill(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_durations() {
        let idle = DbPhase::Idle(SimDuration::from_micros(10));
        assert_eq!(idle.duration(), SimDuration::from_micros(10));
        let join = DbPhase::Join {
            rounds: 3,
            burst: SimDuration::from_micros(4),
            gap: SimDuration::from_micros(6),
        };
        assert_eq!(join.duration(), SimDuration::from_micros(30));
        assert_eq!(join.label(), "join");
    }

    #[test]
    fn phase_log_lookup() {
        let mut log = PhaseLog::default();
        log.intervals
            .push(("idle", SimTime::ZERO, SimTime::from_micros(10)));
        log.intervals.push((
            "shuffle",
            SimTime::from_micros(10),
            SimTime::from_micros(30),
        ));
        assert_eq!(log.label_at(SimTime::from_micros(5)), Some("idle"));
        assert_eq!(log.label_at(SimTime::from_micros(15)), Some("shuffle"));
        assert_eq!(log.label_at(SimTime::from_micros(35)), None);
    }
}
