//! A Sherman-style write-optimized B⁺-tree index on disaggregated memory
//! (Wang et al., SIGMOD'22 — the victim of the paper's §VI-B attack).
//!
//! The memory server (MS) holds the tree image and a 1 KB shared file
//! region inside one registered MR; compute servers (CS) traverse the
//! index with one-sided RDMA Reads and update leaves with RDMA Writes
//! under a CAS-acquired node lock — the access pattern the Grain-IV
//! side channel snoops on.
//!
//! Scope notes (documented substitutions): the tree is bulk-loaded with
//! slack in each leaf, and client-side inserts update in place or take a
//! free slot; structural modifications (splits) are out of scope for the
//! attack study, as the victim of Fig. 13 only issues reads.

use rdma_verbs::{App, Cqe, CqeStatus, Ctx, HostId, MrHandle, QpHandle, WorkRequest};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Node size in bytes (Sherman uses 1 KB internal nodes).
pub const NODE_SIZE: u64 = 1024;
/// Header bytes before the entry area:
/// `[type u8][pad u8][count u16][version u32][lock u64][next_leaf u64]`.
pub const NODE_HEADER: u64 = 24;
/// Bytes per leaf entry (Sherman is a 64 B KV store).
pub const LEAF_ENTRY: u64 = 64;
/// Bytes per internal entry (key + child address).
pub const INTERNAL_ENTRY: u64 = 16;
/// Leaf entries per node.
pub const LEAF_CAP: usize = ((NODE_SIZE - NODE_HEADER) / LEAF_ENTRY) as usize;
/// Internal fan-out.
pub const INTERNAL_CAP: usize = ((NODE_SIZE - NODE_HEADER) / INTERNAL_ENTRY) as usize;

const TYPE_INTERNAL: u8 = 0;
const TYPE_LEAF: u8 = 1;

/// A 56-byte value payload.
pub type Value = [u8; 56];

/// Builds a value from a small byte string.
pub fn value_from(bytes: &[u8]) -> Value {
    let mut v = [0u8; 56];
    let n = bytes.len().min(56);
    v[..n].copy_from_slice(&bytes[..n]);
    v
}

/// The serialized tree image plus its layout metadata.
///
/// Built host-side (the MS initializes its own memory), then traversed
/// remotely by [`TreeClient`]s.
#[derive(Debug, Clone)]
pub struct ShermanTree {
    image: Vec<u8>,
    root_off: u64,
    height: u32,
    leaf_of_key: BTreeMap<u64, u64>, // key -> entry offset in image
}

impl ShermanTree {
    /// Bulk-loads a tree from sorted `(key, value)` pairs, filling each
    /// leaf to `fill` of capacity (0 < fill ≤ 1) to leave insert slack.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty, unsorted, contains duplicates, or
    /// `fill` is out of range.
    pub fn bulk_load(pairs: &[(u64, Value)], fill: f64) -> Self {
        assert!(!pairs.is_empty(), "cannot build an empty tree");
        assert!(fill > 0.0 && fill <= 1.0, "fill factor out of range");
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "keys must be strictly increasing");
        }
        let per_leaf = ((LEAF_CAP as f64 * fill).floor() as usize).max(1);

        let mut image = Vec::new();
        let mut leaf_of_key = BTreeMap::new();

        // Level 0: leaves, chained through the `next_leaf` header field
        // for range scans (Sherman's leaves are siblings-linked).
        let mut level: Vec<(u64, u64)> = Vec::new(); // (first key, node offset)
        let n_leaves = pairs.chunks(per_leaf).count() as u64;
        for (li, chunk) in pairs.chunks(per_leaf).enumerate() {
            let off = image.len() as u64;
            let mut node = vec![0u8; NODE_SIZE as usize];
            node[0] = TYPE_LEAF;
            node[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            let next = if (li as u64) + 1 < n_leaves {
                off + NODE_SIZE
            } else {
                u64::MAX // end of chain
            };
            node[16..24].copy_from_slice(&next.to_le_bytes());
            for (i, (k, v)) in chunk.iter().enumerate() {
                let e = (NODE_HEADER + i as u64 * LEAF_ENTRY) as usize;
                node[e..e + 8].copy_from_slice(&k.to_le_bytes());
                node[e + 8..e + 64].copy_from_slice(v);
                leaf_of_key.insert(*k, off + NODE_HEADER + i as u64 * LEAF_ENTRY);
            }
            image.extend_from_slice(&node);
            level.push((chunk[0].0, off));
        }

        // Internal levels.
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut next = Vec::new();
            for chunk in level.chunks(INTERNAL_CAP) {
                let off = image.len() as u64;
                let mut node = vec![0u8; NODE_SIZE as usize];
                node[0] = TYPE_INTERNAL;
                node[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                for (i, (k, child)) in chunk.iter().enumerate() {
                    let e = (NODE_HEADER + i as u64 * INTERNAL_ENTRY) as usize;
                    node[e..e + 8].copy_from_slice(&k.to_le_bytes());
                    node[e + 8..e + 16].copy_from_slice(&child.to_le_bytes());
                }
                image.extend_from_slice(&node);
                next.push((chunk[0].0, off));
            }
            level = next;
        }
        let root_off = level[0].1;
        ShermanTree {
            image,
            root_off,
            height,
            leaf_of_key,
        }
    }

    /// The serialized image to place at the MR base.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Offset of the root node within the image.
    pub fn root_offset(&self) -> u64 {
        self.root_off
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of nodes in the image.
    pub fn node_count(&self) -> usize {
        self.image.len() / NODE_SIZE as usize
    }

    /// Offset (within the image) of the 64 B leaf entry holding `key`.
    pub fn entry_offset(&self, key: u64) -> Option<u64> {
        self.leaf_of_key.get(&key).copied()
    }

    /// Host-side reference lookup (ground truth for tests).
    pub fn lookup_local(&self, key: u64) -> Option<Value> {
        let off = self.entry_offset(key)? as usize;
        let mut v = [0u8; 56];
        v.copy_from_slice(&self.image[off + 8..off + 64]);
        Some(v)
    }
}

/// Parses the node type/count header from raw node bytes.
fn parse_header(node: &[u8]) -> (u8, usize) {
    let ty = node[0];
    let count = u16::from_le_bytes([node[2], node[3]]) as usize;
    (ty, count)
}

/// Reads the sibling pointer of a leaf (`u64::MAX` = end of chain).
fn next_leaf(node: &[u8]) -> u64 {
    u64::from_le_bytes(node[16..24].try_into().expect("8 bytes"))
}

/// Collects all `(key, value)` pairs of a leaf with `key >= start`.
fn leaf_entries_from(node: &[u8], count: usize, start: u64) -> Vec<(u64, Value)> {
    let mut out = Vec::new();
    for i in 0..count {
        let e = (NODE_HEADER + i as u64 * LEAF_ENTRY) as usize;
        let k = u64::from_le_bytes(node[e..e + 8].try_into().expect("8 bytes"));
        if k >= start {
            let mut v = [0u8; 56];
            v.copy_from_slice(&node[e + 8..e + 64]);
            out.push((k, v));
        }
    }
    out
}

/// Searches an internal node for the child covering `key`.
fn search_internal(node: &[u8], count: usize, key: u64) -> u64 {
    let mut child = 0u64;
    for i in 0..count {
        let e = (NODE_HEADER + i as u64 * INTERNAL_ENTRY) as usize;
        let k = u64::from_le_bytes(node[e..e + 8].try_into().expect("8 bytes"));
        let c = u64::from_le_bytes(node[e + 8..e + 16].try_into().expect("8 bytes"));
        if i == 0 || k <= key {
            child = c;
        } else {
            break;
        }
    }
    child
}

/// Searches a leaf node for `key`; returns `(slot, value)`.
fn search_leaf(node: &[u8], count: usize, key: u64) -> Option<(usize, Value)> {
    for i in 0..count {
        let e = (NODE_HEADER + i as u64 * LEAF_ENTRY) as usize;
        let k = u64::from_le_bytes(node[e..e + 8].try_into().expect("8 bytes"));
        if k == key {
            let mut v = [0u8; 56];
            v.copy_from_slice(&node[e + 8..e + 64]);
            return Some((i, v));
        }
    }
    None
}

/// One client-visible operation.
#[derive(Debug, Clone)]
pub enum TreeOp {
    /// Point lookup.
    Get(u64),
    /// Insert or update (in place / free slot; no splits).
    Insert(u64, Value),
    /// Range scan: up to `limit` pairs with `key >= start`, walking the
    /// sibling-linked leaves.
    Scan {
        /// First key of the range (inclusive).
        start: u64,
        /// Maximum number of pairs returned.
        limit: usize,
    },
}

/// Outcome of one operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OpResult {
    /// Get hit with the value.
    Found(u64, Value),
    /// Get miss.
    NotFound(u64),
    /// Insert/update succeeded.
    Inserted(u64),
    /// Insert failed (leaf full).
    LeafFull(u64),
    /// Scan result, ordered by key.
    Scanned(Vec<(u64, Value)>),
}

#[derive(Debug)]
enum OpState {
    Traverse {
        key: u64,
        level: u32,
    },
    ScanLeaf {
        start: u64,
        limit: usize,
        acc: Vec<(u64, Value)>,
    },
    LockLeaf {
        key: u64,
        leaf_off: u64,
    },
    WriteEntry {
        key: u64,
        leaf_off: u64,
    },
    BumpCount {
        key: u64,
        leaf_off: u64,
    },
    Unlock {
        key: u64,
    },
}

/// A compute-server client executing a queue of tree operations over
/// RDMA, as an event-driven [`App`].
pub struct TreeClient {
    qp: QpHandle,
    mr: MrHandle,
    root_off: u64,
    scratch: u64,
    ops: std::collections::VecDeque<TreeOp>,
    state: Option<OpState>,
    current_node_off: u64,
    pending_insert: Option<(u64, Value, usize, bool)>, // key, value, slot, is_new
    pending_scan: Option<(u64, usize)>,
    results: Rc<RefCell<Vec<OpResult>>>,
    lock_id: u64,
    stop_when_done: bool,
}

impl TreeClient {
    /// Creates a client. `mr` is the MS region holding the tree image at
    /// its base; `scratch` is a local buffer address for reads.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        qp: QpHandle,
        mr: MrHandle,
        root_off: u64,
        scratch: u64,
        ops: Vec<TreeOp>,
        results: Rc<RefCell<Vec<OpResult>>>,
        lock_id: u64,
        stop_when_done: bool,
    ) -> Self {
        TreeClient {
            qp,
            mr,
            root_off,
            scratch,
            ops: ops.into(),
            state: None,
            current_node_off: 0,
            pending_insert: None,
            pending_scan: None,
            results,
            lock_id,
            stop_when_done,
        }
    }

    fn begin_next(&mut self, ctx: &mut Ctx<'_>) {
        match self.ops.pop_front() {
            None => {
                if self.stop_when_done {
                    ctx.stop();
                }
            }
            Some(op) => {
                let key = match &op {
                    TreeOp::Get(k) => {
                        self.pending_insert = None;
                        self.pending_scan = None;
                        *k
                    }
                    TreeOp::Insert(k, v) => {
                        self.pending_insert = Some((*k, *v, 0, false));
                        self.pending_scan = None;
                        *k
                    }
                    TreeOp::Scan { start, limit } => {
                        self.pending_insert = None;
                        self.pending_scan = Some((*start, *limit));
                        *start
                    }
                };
                self.state = Some(OpState::Traverse { key, level: 0 });
                self.read_node(ctx, self.root_off);
            }
        }
    }

    fn read_node(&mut self, ctx: &mut Ctx<'_>, node_off: u64) {
        self.current_node_off = node_off;
        ctx.post_send(
            self.qp,
            WorkRequest::read(
                1,
                self.scratch,
                self.mr.addr(node_off),
                self.mr.key,
                NODE_SIZE,
            ),
        )
        .expect("tree read");
    }

    fn node_bytes(&self, ctx: &Ctx<'_>) -> Vec<u8> {
        ctx.read_memory(self.qp.host, self.scratch, NODE_SIZE)
    }
}

impl App for TreeClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.begin_next(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: Cqe) {
        assert_eq!(cqe.status, CqeStatus::Success, "tree op failed remotely");
        let state = self.state.take().expect("completion without active op");
        match state {
            OpState::Traverse { key, level } => {
                let node = self.node_bytes(ctx);
                let (ty, count) = parse_header(&node);
                if ty == TYPE_INTERNAL {
                    let child = search_internal(&node, count, key);
                    self.state = Some(OpState::Traverse {
                        key,
                        level: level + 1,
                    });
                    self.read_node(ctx, child);
                } else if let Some((start, limit)) = self.pending_scan.take() {
                    // Leaf reached for a scan: collect and walk siblings.
                    let mut acc = leaf_entries_from(&node, count, start);
                    acc.truncate(limit);
                    let next = next_leaf(&node);
                    if acc.len() < limit && next != u64::MAX {
                        self.state = Some(OpState::ScanLeaf { start, limit, acc });
                        self.read_node(ctx, next);
                    } else {
                        self.results.borrow_mut().push(OpResult::Scanned(acc));
                        self.begin_next(ctx);
                    }
                } else {
                    // Leaf reached.
                    let hit = search_leaf(&node, count, key);
                    match (&mut self.pending_insert, hit) {
                        (None, Some((_, v))) => {
                            self.results.borrow_mut().push(OpResult::Found(key, v));
                            self.begin_next(ctx);
                        }
                        (None, None) => {
                            self.results.borrow_mut().push(OpResult::NotFound(key));
                            self.begin_next(ctx);
                        }
                        (Some(ins), hit) => {
                            // Insert path: remember the slot, take the lock.
                            match hit {
                                Some((slot, _)) => {
                                    ins.2 = slot;
                                    ins.3 = false;
                                }
                                None if count < LEAF_CAP => {
                                    ins.2 = count;
                                    ins.3 = true;
                                }
                                None => {
                                    self.results.borrow_mut().push(OpResult::LeafFull(key));
                                    self.pending_insert = None;
                                    let leaf_off = self.current_node_off;
                                    let _ = leaf_off;
                                    self.begin_next(ctx);
                                    return;
                                }
                            }
                            let leaf_off = self.current_node_off;
                            self.state = Some(OpState::LockLeaf { key, leaf_off });
                            ctx.post_send(
                                self.qp,
                                WorkRequest::cmp_swap(
                                    2,
                                    self.scratch + NODE_SIZE,
                                    self.mr.addr(leaf_off + 8),
                                    self.mr.key,
                                    0,
                                    self.lock_id,
                                ),
                            )
                            .expect("lock CAS");
                        }
                    }
                }
            }
            OpState::ScanLeaf {
                start,
                limit,
                mut acc,
            } => {
                let node = self.node_bytes(ctx);
                let (_, count) = parse_header(&node);
                let mut more = leaf_entries_from(&node, count, start);
                let room = limit - acc.len();
                more.truncate(room);
                acc.extend(more);
                let next = next_leaf(&node);
                if acc.len() < limit && next != u64::MAX {
                    self.state = Some(OpState::ScanLeaf { start, limit, acc });
                    self.read_node(ctx, next);
                } else {
                    self.results.borrow_mut().push(OpResult::Scanned(acc));
                    self.begin_next(ctx);
                }
            }
            OpState::LockLeaf { key, leaf_off } => {
                if cqe.atomic_old_value != 0 {
                    // Lock held; retry the CAS.
                    self.state = Some(OpState::LockLeaf { key, leaf_off });
                    ctx.post_send(
                        self.qp,
                        WorkRequest::cmp_swap(
                            2,
                            self.scratch + NODE_SIZE,
                            self.mr.addr(leaf_off + 8),
                            self.mr.key,
                            0,
                            self.lock_id,
                        ),
                    )
                    .expect("lock retry");
                    return;
                }
                // Write the 64 B entry.
                let (k, v, slot, _is_new) = self.pending_insert.expect("insert context");
                let mut entry = [0u8; 64];
                entry[..8].copy_from_slice(&k.to_le_bytes());
                entry[8..].copy_from_slice(&v);
                ctx.write_memory(self.qp.host, self.scratch + 2 * NODE_SIZE, &entry);
                let entry_addr = leaf_off + NODE_HEADER + slot as u64 * LEAF_ENTRY;
                self.state = Some(OpState::WriteEntry { key, leaf_off });
                ctx.post_send(
                    self.qp,
                    WorkRequest::write(
                        3,
                        self.scratch + 2 * NODE_SIZE,
                        self.mr.addr(entry_addr),
                        self.mr.key,
                        LEAF_ENTRY,
                    ),
                )
                .expect("entry write");
            }
            OpState::WriteEntry { key, leaf_off } => {
                let (_, _, slot, is_new) = self.pending_insert.expect("insert context");
                if is_new {
                    // Bump the leaf count with a small write.
                    let new_count = (slot + 1) as u16;
                    ctx.write_memory(
                        self.qp.host,
                        self.scratch + 3 * NODE_SIZE,
                        &new_count.to_le_bytes(),
                    );
                    self.state = Some(OpState::BumpCount { key, leaf_off });
                    ctx.post_send(
                        self.qp,
                        WorkRequest::write(
                            4,
                            self.scratch + 3 * NODE_SIZE,
                            self.mr.addr(leaf_off + 2),
                            self.mr.key,
                            2,
                        ),
                    )
                    .expect("count write");
                } else {
                    self.state = Some(OpState::Unlock { key });
                    self.post_unlock(ctx, leaf_off);
                }
            }
            OpState::BumpCount { key, leaf_off } => {
                self.state = Some(OpState::Unlock { key });
                self.post_unlock(ctx, leaf_off);
            }
            OpState::Unlock { key } => {
                self.results.borrow_mut().push(OpResult::Inserted(key));
                self.pending_insert = None;
                self.begin_next(ctx);
            }
        }
    }
}

impl TreeClient {
    fn post_unlock(&mut self, ctx: &mut Ctx<'_>, leaf_off: u64) {
        ctx.post_send(
            self.qp,
            WorkRequest::cmp_swap(
                5,
                self.scratch + NODE_SIZE,
                self.mr.addr(leaf_off + 8),
                self.mr.key,
                self.lock_id,
                0,
            ),
        )
        .expect("unlock CAS");
    }
}

/// The Fig.-13 victim: a CS procedure that reads a 64 B record at a fixed
/// secret offset of the shared 1 KB file, interleaving a real index
/// lookup every `1 / index_ratio` file accesses (the paper assumes an
/// index-to-file access ratio of 0.01).
pub struct ShermanVictim {
    qp: QpHandle,
    mr: MrHandle,
    /// Offset of the shared file within the MR.
    file_base: u64,
    /// The secret: which candidate offset the victim reads.
    secret_offset: u64,
    root_off: u64,
    index_period: u64,
    hot_key: u64,
    scratch: u64,
    accesses: u64,
    traversing: bool,
    current_node_off: u64,
}

impl ShermanVictim {
    /// Creates the victim.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        qp: QpHandle,
        mr: MrHandle,
        file_base: u64,
        secret_offset: u64,
        root_off: u64,
        index_period: u64,
        hot_key: u64,
        scratch: u64,
    ) -> Self {
        assert!(secret_offset <= 1024, "candidate offsets span 0..=1024");
        ShermanVictim {
            qp,
            mr,
            file_base,
            secret_offset,
            root_off,
            index_period: index_period.max(2),
            hot_key,
            scratch,
            accesses: 0,
            traversing: false,
            current_node_off: 0,
        }
    }

    /// Total accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Keeps the send queue full with file reads (the victim is an
    /// aggressive reader; its pipeline depth is the QP's max send queue).
    fn fill_file_reads(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            match ctx.post_send(
                self.qp,
                WorkRequest::read(
                    10,
                    self.scratch,
                    self.mr.addr(self.file_base + self.secret_offset),
                    self.mr.key,
                    64,
                ),
            ) {
                Ok(()) => self.accesses += 1,
                Err(rdma_verbs::VerbsError::SendQueueFull)
                | Err(rdma_verbs::VerbsError::QpInError) => break,
                Err(e) => panic!("victim file read failed: {e}"),
            }
        }
    }

    /// Posts an index-node read; returns false when the queue is full
    /// (the caller retries at the next completion).
    fn post_node_read(&mut self, ctx: &mut Ctx<'_>, node_off: u64) -> bool {
        self.current_node_off = node_off;
        match ctx.post_send(
            self.qp,
            WorkRequest::read(
                11,
                self.scratch + 64,
                self.mr.addr(node_off),
                self.mr.key,
                NODE_SIZE,
            ),
        ) {
            Ok(()) => {
                self.accesses += 1;
                true
            }
            Err(rdma_verbs::VerbsError::SendQueueFull) | Err(rdma_verbs::VerbsError::QpInError) => {
                false
            }
            Err(e) => panic!("victim index read failed: {e}"),
        }
    }
}

impl App for ShermanVictim {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.fill_file_reads(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: Cqe) {
        // Traversal completions carry wr_id 11; file reads 10. The index
        // lookup runs *concurrently* with the file-read stream (Sherman
        // issues them from separate coroutines) — the file pipeline never
        // stalls.
        if cqe.wr_id == 11 {
            let node = ctx.read_memory(self.qp.host, self.scratch + 64, NODE_SIZE);
            let (ty, count) = parse_header(&node);
            if ty == TYPE_INTERNAL {
                let child = search_internal(&node, count, self.hot_key);
                if !self.post_node_read(ctx, child) {
                    // Queue full: abandon this traversal attempt.
                    self.traversing = false;
                }
            } else {
                self.traversing = false;
            }
            self.fill_file_reads(ctx);
            return;
        }
        if !self.traversing && self.accesses % self.index_period == self.index_period - 1 {
            self.traversing = self.post_node_read(ctx, self.root_off);
        }
        self.fill_file_reads(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u64) -> Vec<(u64, Value)> {
        (0..n)
            .map(|i| (i * 10, value_from(format!("val-{i}").as_bytes())))
            .collect()
    }

    #[test]
    fn bulk_load_structure() {
        let t = ShermanTree::bulk_load(&pairs(100), 0.8);
        assert!(t.height() >= 2);
        assert_eq!(t.image().len() % NODE_SIZE as usize, 0);
        assert!(t.node_count() >= 10);
        // Root is within the image.
        assert!(t.root_offset() < t.image().len() as u64);
    }

    #[test]
    fn local_lookup_matches_input() {
        let p = pairs(500);
        let t = ShermanTree::bulk_load(&p, 0.7);
        for (k, v) in &p {
            assert_eq!(t.lookup_local(*k).as_ref(), Some(v), "key {k}");
        }
        assert_eq!(t.lookup_local(5), None);
    }

    #[test]
    fn entry_offsets_are_leaf_entries() {
        let t = ShermanTree::bulk_load(&pairs(64), 0.8);
        for k in (0..640).step_by(10) {
            let off = t.entry_offset(k).expect("key present");
            // Entry offsets are entry-aligned within a node.
            let within = (off % NODE_SIZE) - NODE_HEADER;
            assert_eq!(within % LEAF_ENTRY, 0);
            // And the node it lives in is a leaf.
            let node_off = (off / NODE_SIZE) * NODE_SIZE;
            assert_eq!(t.image()[node_off as usize], TYPE_LEAF);
        }
    }

    #[test]
    fn single_leaf_tree() {
        let t = ShermanTree::bulk_load(&pairs(3), 1.0);
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.root_offset(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_keys() {
        let mut p = pairs(5);
        p.swap(0, 1);
        let _ = ShermanTree::bulk_load(&p, 0.8);
    }
}
