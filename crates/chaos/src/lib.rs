//! # ragnar-chaos — deterministic fault injection for the simulated fabric
//!
//! The paper's channels only matter if they survive a faulty fabric
//! (§V's cross-traffic robustness); this crate makes the fabric break in
//! structured, reproducible ways:
//!
//! * [`FaultPlan`] — a serializable, seed-derived schedule of typed fault
//!   events ([`FaultKind`]): per-link loss bursts, link up/down flaps,
//!   reordering windows, duplication, payload corruption (dropped at the
//!   receiver as an ICRC failure), and NIC stalls.
//! * [`FaultInjector`] — interprets a plan at the wire hop
//!   (`rdma-verbs`'s `Transmit` action), returning a [`Verdict`] per
//!   packet and folding every fault into a deterministic trace digest.
//! * Invariant oracles — [`FabricStats::conserved`] (packet conservation)
//!   and [`WrLedger`] (every posted WR completes exactly once), checked
//!   by the chaos property suites under randomized plans.
//!
//! Determinism contract: all injector draws come from the plan's own
//! derived RNG stream, so (a) installing a plan never perturbs any other
//! random stream — with no plan installed, golden digests stay bit-exact
//! — and (b) identical plans over identical packet sequences yield
//! identical fault traces regardless of harness thread count.
//!
//! # Examples
//!
//! ```
//! use ragnar_chaos::{FaultInjector, FaultPlan, PlanParams};
//! use rnic_model::HostId;
//! use sim_core::SimTime;
//!
//! let plan = FaultPlan::generate(7, &PlanParams::default());
//! let text = plan.to_text();
//! assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
//!
//! let mut inj = FaultInjector::new(plan);
//! let verdict = inj.verdict(SimTime::from_micros(250), HostId(0), HostId(1));
//! let _ = verdict.drop; // fabric applies the verdict at the wire hop
//! ```

#![warn(missing_docs)]

mod exec;
mod inject;
mod oracle;
mod plan;

pub use exec::{ExecFaultEvent, ExecFaultKind, ExecFaultPlan, ExecPlanParams, ExecWorkerSelector};
pub use inject::{FaultInjector, InjectorStats, Verdict};
pub use oracle::{FabricStats, OracleViolation, WrLedger};
pub use plan::{FaultEvent, FaultKind, FaultPlan, LinkSelector, PlanParams, PlanParseError};
