//! The wire-hop fault injector: interprets a [`FaultPlan`] packet by
//! packet and folds every non-trivial verdict into a deterministic trace
//! digest.

use crate::plan::{FaultKind, FaultPlan};
use ragnar_telemetry::{ActorId, Target, Tracer};
use rnic_model::HostId;
use sim_core::{SimDuration, SimRng, SimTime};

/// What the fabric should do with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Verdict {
    /// Drop the packet (link down or loss burst).
    pub drop: bool,
    /// Deliver, but flag the payload corrupt: the receiver drops it as an
    /// ICRC failure after it has consumed wire bandwidth.
    pub corrupt: bool,
    /// Schedule a second delivery of the same packet.
    pub duplicate: bool,
    /// Extra propagation delay (reorder windows, stalls).
    pub extra_delay: SimDuration,
}

impl Verdict {
    /// A clean pass-through verdict.
    pub fn deliver() -> Self {
        Verdict::default()
    }

    /// Whether the verdict perturbs the packet at all.
    pub fn is_fault(&self) -> bool {
        self.drop || self.corrupt || self.duplicate || self.extra_delay > SimDuration::ZERO
    }
}

/// Running totals of what the injector did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectorStats {
    /// Packets the injector examined.
    pub packets_seen: u64,
    /// Packets dropped (loss bursts + link-down windows).
    pub dropped: u64,
    /// Packets flagged corrupt (ICRC-dropped at the receiver).
    pub corrupted: u64,
    /// Packets duplicated.
    pub duplicated: u64,
    /// Packets delayed (reorder or stall).
    pub delayed: u64,
}

/// Interprets a [`FaultPlan`] at the wire hop.
///
/// All probabilistic draws come from the injector's own RNG stream
/// (`derive(plan.seed, "chaos-inject")`), so installing a plan never
/// perturbs the simulation's other random streams, and the same plan over
/// the same packet sequence produces the same verdicts — the property the
/// trace digest pins down.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    stats: InjectorStats,
    digest: u64,
    tracer: Tracer,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::derive(plan.seed, "chaos-inject");
        let digest = 0xCBF2_9CE4_8422_2325 ^ plan_fingerprint(&plan);
        let tracer = ragnar_telemetry::tracer();
        tracer.instant(
            Target::Chaos,
            "plan_installed",
            ActorId::GLOBAL,
            0,
            &[
                ("seed", plan.seed.into()),
                ("events", plan.events.len().into()),
            ],
        );
        FaultInjector {
            plan,
            rng,
            stats: InjectorStats::default(),
            digest,
            tracer,
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one packet departing `src` for `dst` at `at`.
    pub fn verdict(&mut self, at: SimTime, src: HostId, dst: HostId) -> Verdict {
        self.stats.packets_seen += 1;
        let mut v = Verdict::deliver();
        for i in 0..self.plan.events.len() {
            let ev = self.plan.events[i];
            if !ev.active(at) || !ev.link.matches(src, dst) {
                continue;
            }
            match ev.kind {
                FaultKind::LinkDown => v.drop = true,
                FaultKind::LossBurst { rate } => {
                    if self.rng.chance(rate.clamp(0.0, 1.0)) {
                        v.drop = true;
                    }
                }
                FaultKind::Duplicate { prob } => {
                    if self.rng.chance(prob.clamp(0.0, 1.0)) {
                        v.duplicate = true;
                    }
                }
                FaultKind::Corrupt { prob } => {
                    if self.rng.chance(prob.clamp(0.0, 1.0)) {
                        v.corrupt = true;
                    }
                }
                FaultKind::Reorder { window } => {
                    let span = window.as_picos();
                    if span > 0 {
                        let extra = SimDuration::from_picos(self.rng.uniform_range(0, span + 1));
                        v.extra_delay += extra;
                    }
                }
                FaultKind::Stall => {
                    // Hold the packet until the stall window ends.
                    let release = ev.until.saturating_since(at);
                    if release > v.extra_delay {
                        v.extra_delay = release;
                    }
                }
            }
        }
        if v.drop {
            // A dropped packet cannot also be delivered corrupt or twice.
            v.corrupt = false;
            v.duplicate = false;
            self.stats.dropped += 1;
        } else {
            if v.corrupt {
                self.stats.corrupted += 1;
            }
            if v.duplicate {
                self.stats.duplicated += 1;
            }
            if v.extra_delay > SimDuration::ZERO {
                self.stats.delayed += 1;
            }
        }
        if v.is_fault() {
            self.fold(at, src, dst, &v);
            if self.tracer.enabled(Target::Chaos) {
                self.tracer.instant(
                    Target::Chaos,
                    "fault",
                    ActorId::device(src.0),
                    at.as_picos(),
                    &[
                        ("dst", u64::from(dst.0).into()),
                        ("drop", v.drop.into()),
                        ("corrupt", v.corrupt.into()),
                        ("duplicate", v.duplicate.into()),
                        ("extra_delay_ps", v.extra_delay.as_picos().into()),
                    ],
                );
            }
        }
        v
    }

    /// Injection totals so far.
    pub fn stats(&self) -> InjectorStats {
        self.stats
    }

    /// A deterministic digest over every fault the injector applied
    /// (time, link, verdict). Equal digests mean equal fault traces.
    pub fn trace_digest(&self) -> u64 {
        self.digest
    }

    fn fold(&mut self, at: SimTime, src: HostId, dst: HostId, v: &Verdict) {
        let mut mix = |value: u64| {
            self.digest ^= value;
            self.digest = self.digest.wrapping_mul(0x100_0000_01B3);
            self.digest ^= self.digest >> 31;
        };
        mix(at.as_picos());
        mix((u64::from(src.0) << 32) | u64::from(dst.0));
        mix(u64::from(v.drop) | (u64::from(v.corrupt) << 1) | (u64::from(v.duplicate) << 2));
        mix(v.extra_delay.as_picos());
    }
}

fn plan_fingerprint(plan: &FaultPlan) -> u64 {
    let mut h = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
    for byte in plan.to_text().as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, LinkSelector, PlanParams};

    fn drive(inj: &mut FaultInjector, n: u64) -> Vec<Verdict> {
        (0..n)
            .map(|i| {
                inj.verdict(
                    SimTime::from_nanos(10 * i),
                    HostId((i % 2) as u32),
                    HostId(((i + 1) % 2) as u32),
                )
            })
            .collect()
    }

    #[test]
    fn identical_plans_give_identical_traces() {
        let plan = FaultPlan::generate(11, &PlanParams::default());
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        assert_eq!(drive(&mut a, 500), drive(&mut b, 500));
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let mut a = FaultInjector::new(FaultPlan::generate(1, &PlanParams::default()));
        let mut b = FaultInjector::new(FaultPlan::generate(2, &PlanParams::default()));
        drive(&mut a, 500);
        drive(&mut b, 500);
        assert_ne!(a.trace_digest(), b.trace_digest());
    }

    #[test]
    fn empty_plan_never_faults() {
        let mut inj = FaultInjector::new(FaultPlan::empty(3));
        for v in drive(&mut inj, 100) {
            assert_eq!(v, Verdict::deliver());
        }
        assert_eq!(inj.stats().dropped, 0);
    }

    #[test]
    fn link_down_drops_everything_in_window() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                link: LinkSelector::Host(HostId(1)),
                from: SimTime::from_nanos(100),
                until: SimTime::from_nanos(200),
                kind: FaultKind::LinkDown,
            }],
        };
        let mut inj = FaultInjector::new(plan);
        assert!(
            !inj.verdict(SimTime::from_nanos(50), HostId(0), HostId(1))
                .drop
        );
        assert!(
            inj.verdict(SimTime::from_nanos(150), HostId(0), HostId(1))
                .drop
        );
        assert!(
            inj.verdict(SimTime::from_nanos(150), HostId(1), HostId(0))
                .drop
        );
        // Unrelated link unaffected.
        assert!(
            !inj.verdict(SimTime::from_nanos(150), HostId(0), HostId(2))
                .drop
        );
        // Window over.
        assert!(
            !inj.verdict(SimTime::from_nanos(250), HostId(0), HostId(1))
                .drop
        );
    }

    #[test]
    fn stall_releases_at_window_end() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                link: LinkSelector::Any,
                from: SimTime::from_nanos(0),
                until: SimTime::from_nanos(1000),
                kind: FaultKind::Stall,
            }],
        };
        let mut inj = FaultInjector::new(plan);
        let v = inj.verdict(SimTime::from_nanos(400), HostId(0), HostId(1));
        assert_eq!(v.extra_delay, SimDuration::from_nanos(600));
        assert!(!v.drop);
    }

    #[test]
    fn drop_suppresses_other_effects() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent {
                    link: LinkSelector::Any,
                    from: SimTime::ZERO,
                    until: SimTime::from_secs(1),
                    kind: FaultKind::LinkDown,
                },
                FaultEvent {
                    link: LinkSelector::Any,
                    from: SimTime::ZERO,
                    until: SimTime::from_secs(1),
                    kind: FaultKind::Duplicate { prob: 1.0 },
                },
                FaultEvent {
                    link: LinkSelector::Any,
                    from: SimTime::ZERO,
                    until: SimTime::from_secs(1),
                    kind: FaultKind::Corrupt { prob: 1.0 },
                },
            ],
        };
        let mut inj = FaultInjector::new(plan);
        let v = inj.verdict(SimTime::from_nanos(1), HostId(0), HostId(1));
        assert!(v.drop && !v.corrupt && !v.duplicate);
        let s = inj.stats();
        assert_eq!((s.dropped, s.corrupted, s.duplicated), (1, 0, 0));
    }
}
