//! Fault plans: typed, time-bounded fault events on the simulated fabric.
//!
//! A [`FaultPlan`] is either generated from a seed (the property suite's
//! randomized plans) or written by hand / parsed from a file (the
//! `--chaos-plan` CLI flag). Plans are pure data: the injector in
//! [`crate::inject`] interprets them at the wire hop.

use rnic_model::HostId;
use sim_core::{SimDuration, SimRng, SimTime};

/// Which fabric link a fault event applies to.
///
/// The simulated fabric is a star: every host has one link to the switch,
/// so "link" and "host" coincide. An event matches a packet when the
/// selector is [`LinkSelector::Any`] or names the packet's source *or*
/// destination host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LinkSelector {
    /// Every link in the fabric.
    Any,
    /// The link of one host (matches packets it sends or receives).
    Host(HostId),
}

impl LinkSelector {
    /// Whether a packet travelling `src -> dst` crosses this selector.
    pub fn matches(self, src: HostId, dst: HostId) -> bool {
        match self {
            LinkSelector::Any => true,
            LinkSelector::Host(h) => h == src || h == dst,
        }
    }
}

/// The typed fault a [`FaultEvent`] injects while active.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Drop each matching packet with probability `rate`.
    LossBurst {
        /// Per-packet drop probability in `[0, 1]`.
        rate: f64,
    },
    /// The link is down: every matching packet is dropped.
    LinkDown,
    /// Add a uniform random extra delay in `[0, window)` to each matching
    /// packet, so packets overtake each other inside the window.
    Reorder {
        /// Maximum extra delay.
        window: SimDuration,
    },
    /// Deliver each matching packet twice with probability `prob` (the
    /// duplicate arrives one switch hop later).
    Duplicate {
        /// Per-packet duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Corrupt the payload with probability `prob`. Corrupt packets still
    /// consume wire and ingress bandwidth but fail the receiver's ICRC
    /// check and are dropped there (RoCE semantics).
    Corrupt {
        /// Per-packet corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// The destination NIC stalls (PCIe hiccup, host pause): matching
    /// packets are held and delivered when the event window ends.
    Stall,
}

impl FaultKind {
    fn tag(&self) -> &'static str {
        match self {
            FaultKind::LossBurst { .. } => "loss",
            FaultKind::LinkDown => "down",
            FaultKind::Reorder { .. } => "reorder",
            FaultKind::Duplicate { .. } => "dup",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::Stall => "stall",
        }
    }
}

/// One scheduled fault: a kind, a link selector, and an active window
/// `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultEvent {
    /// Link(s) the fault applies to.
    pub link: LinkSelector,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// What happens to matching packets inside the window.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the event is active at `now`.
    pub fn active(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// Parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanParams {
    /// Number of hosts in the fabric (link selectors are drawn from
    /// these, plus [`LinkSelector::Any`]).
    pub hosts: u32,
    /// Horizon the event windows are placed within.
    pub horizon: SimDuration,
    /// Number of fault events to generate.
    pub events: usize,
    /// Scales fault probabilities (loss/duplicate/corrupt rates) in
    /// `(0, 1]`; 1.0 is the nastiest fabric.
    pub intensity: f64,
}

impl Default for PlanParams {
    fn default() -> Self {
        PlanParams {
            hosts: 2,
            horizon: SimDuration::from_micros(500),
            events: 6,
            intensity: 0.5,
        }
    }
}

/// A deterministic, serializable schedule of fault events.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed for the injector's probabilistic draws (loss, duplication,
    /// corruption, reorder offsets). Two installs of the same plan see
    /// identical per-packet verdicts for identical packet sequences.
    pub seed: u64,
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
}

/// A problem parsing a [`FaultPlan`] from its text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line the problem was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "fault-plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// A plan with no events (the injector passes everything through).
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a randomized plan from a seed.
    ///
    /// The draw stream is `derive(seed, "chaos-plan")`, decorrelated from
    /// every simulation stream, and the first event is always a loss
    /// burst across all links spanning the middle of the horizon — so a
    /// generated plan always perturbs traffic that runs inside it.
    pub fn generate(seed: u64, params: &PlanParams) -> Self {
        assert!(params.hosts > 0, "plan needs at least one host");
        assert!(
            params.intensity > 0.0 && params.intensity <= 1.0,
            "intensity must be in (0, 1], got {}",
            params.intensity
        );
        let mut rng = SimRng::derive(seed, "chaos-plan");
        let horizon_ps = params.horizon.as_picos().max(1);
        let mut events = Vec::with_capacity(params.events);
        if params.events > 0 {
            // Guaranteed perturbation: a fabric-wide loss burst over the
            // middle 60% of the horizon.
            events.push(FaultEvent {
                link: LinkSelector::Any,
                from: SimTime::from_picos(horizon_ps / 5),
                until: SimTime::from_picos(horizon_ps * 4 / 5),
                kind: FaultKind::LossBurst {
                    rate: 0.02 + 0.18 * params.intensity * rng.uniform(),
                },
            });
        }
        while events.len() < params.events {
            let link = if rng.chance(0.4) {
                LinkSelector::Any
            } else {
                LinkSelector::Host(HostId(rng.uniform_range(0, u64::from(params.hosts)) as u32))
            };
            let a = rng.uniform_range(0, horizon_ps);
            let span = rng.uniform_range(1, horizon_ps / 4 + 2);
            let from = SimTime::from_picos(a);
            let until = SimTime::from_picos(a.saturating_add(span));
            let kind = match rng.uniform_range(0, 6) {
                0 => FaultKind::LossBurst {
                    rate: params.intensity * rng.uniform(),
                },
                1 => FaultKind::LinkDown,
                2 => FaultKind::Reorder {
                    window: SimDuration::from_picos(rng.uniform_range(1, horizon_ps / 20 + 2)),
                },
                3 => FaultKind::Duplicate {
                    prob: params.intensity * rng.uniform(),
                },
                4 => FaultKind::Corrupt {
                    prob: 0.5 * params.intensity * rng.uniform(),
                },
                _ => FaultKind::Stall,
            };
            events.push(FaultEvent {
                link,
                from,
                until,
                kind,
            });
        }
        FaultPlan { seed, events }
    }

    /// Serializes to the plan text format (see [`FaultPlan::parse`]).
    ///
    /// The vendored `serde` is a marker-only stub, so plans use their own
    /// line-based format; `parse(to_text(p)) == p` is unit-tested.
    pub fn to_text(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "chaos-plan v1 seed={}", self.seed);
        for ev in &self.events {
            let link = match ev.link {
                LinkSelector::Any => "any".to_string(),
                LinkSelector::Host(h) => h.0.to_string(),
            };
            let _ = write!(
                s,
                "{} link={} from={} until={}",
                ev.kind.tag(),
                link,
                ev.from.as_picos(),
                ev.until.as_picos()
            );
            match ev.kind {
                FaultKind::LossBurst { rate } => {
                    let _ = write!(s, " rate={rate}");
                }
                FaultKind::Duplicate { prob } | FaultKind::Corrupt { prob } => {
                    let _ = write!(s, " prob={prob}");
                }
                FaultKind::Reorder { window } => {
                    let _ = write!(s, " window={}", window.as_picos());
                }
                FaultKind::LinkDown | FaultKind::Stall => {}
            }
            s.push('\n');
        }
        s
    }

    /// Parses the text form produced by [`FaultPlan::to_text`]:
    ///
    /// ```text
    /// chaos-plan v1 seed=<u64>
    /// loss    link=<any|host#> from=<ps> until=<ps> rate=<f64>
    /// down    link=<any|host#> from=<ps> until=<ps>
    /// reorder link=<any|host#> from=<ps> until=<ps> window=<ps>
    /// dup     link=<any|host#> from=<ps> until=<ps> prob=<f64>
    /// corrupt link=<any|host#> from=<ps> until=<ps> prob=<f64>
    /// stall   link=<any|host#> from=<ps> until=<ps>
    /// ```
    ///
    /// Blank lines and `#` comment lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanParseError`] naming the offending line.
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let err = |line: usize, message: &str| PlanParseError {
            line,
            message: message.to_string(),
        };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        let (first_no, header) = lines
            .next()
            .ok_or_else(|| err(1, "empty plan (missing 'chaos-plan v1' header)"))?;
        let seed = header
            .strip_prefix("chaos-plan v1 seed=")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .ok_or_else(|| err(first_no, "expected header 'chaos-plan v1 seed=<u64>'"))?;
        let mut events = Vec::new();
        for (no, line) in lines {
            let mut fields = line.split_whitespace();
            let tag = fields.next().unwrap_or_default();
            let mut link = None;
            let mut from = None;
            let mut until = None;
            let mut rate = None;
            let mut window = None;
            for field in fields {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| err(no, "fields must be key=value"))?;
                match key {
                    "link" if value == "any" => link = Some(LinkSelector::Any),
                    "link" => {
                        let host = value
                            .parse::<u32>()
                            .map_err(|_| err(no, "link must be 'any' or a host number"))?;
                        link = Some(LinkSelector::Host(HostId(host)));
                    }
                    "from" | "until" => {
                        let ps = value
                            .parse::<u64>()
                            .map_err(|_| err(no, "times are picoseconds (u64)"))?;
                        let t = Some(SimTime::from_picos(ps));
                        if key == "from" {
                            from = t;
                        } else {
                            until = t;
                        }
                    }
                    "rate" | "prob" => {
                        let p = value
                            .parse::<f64>()
                            .map_err(|_| err(no, "probabilities are f64"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(err(no, "probability outside [0, 1]"));
                        }
                        rate = Some(p);
                    }
                    "window" => {
                        let ps = value
                            .parse::<u64>()
                            .map_err(|_| err(no, "window is picoseconds (u64)"))?;
                        window = Some(SimDuration::from_picos(ps));
                    }
                    other => return Err(err(no, &format!("unknown field '{other}'"))),
                }
            }
            let kind = match tag {
                "loss" => FaultKind::LossBurst {
                    rate: rate.ok_or_else(|| err(no, "loss needs rate="))?,
                },
                "down" => FaultKind::LinkDown,
                "reorder" => FaultKind::Reorder {
                    window: window.ok_or_else(|| err(no, "reorder needs window="))?,
                },
                "dup" => FaultKind::Duplicate {
                    prob: rate.ok_or_else(|| err(no, "dup needs prob="))?,
                },
                "corrupt" => FaultKind::Corrupt {
                    prob: rate.ok_or_else(|| err(no, "corrupt needs prob="))?,
                },
                "stall" => FaultKind::Stall,
                other => return Err(err(no, &format!("unknown event kind '{other}'"))),
            };
            let from = from.ok_or_else(|| err(no, "missing from="))?;
            let until = until.ok_or_else(|| err(no, "missing until="))?;
            if until <= from {
                return Err(err(no, "until must be after from"));
            }
            events.push(FaultEvent {
                link: link.ok_or_else(|| err(no, "missing link="))?,
                from,
                until,
                kind,
            });
        }
        Ok(FaultPlan { seed, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let params = PlanParams {
            hosts: 3,
            ..PlanParams::default()
        };
        assert_eq!(
            FaultPlan::generate(42, &params),
            FaultPlan::generate(42, &params)
        );
        assert_ne!(
            FaultPlan::generate(42, &params).events,
            FaultPlan::generate(43, &params).events
        );
    }

    #[test]
    fn generated_events_lie_within_horizon() {
        let params = PlanParams {
            hosts: 4,
            horizon: SimDuration::from_micros(200),
            events: 12,
            intensity: 1.0,
        };
        let plan = FaultPlan::generate(7, &params);
        assert_eq!(plan.events.len(), 12);
        for ev in &plan.events {
            assert!(ev.from < ev.until);
            assert!(ev.from.as_picos() <= params.horizon.as_picos());
        }
    }

    #[test]
    fn text_round_trip() {
        for seed in [0, 1, 9, 1234] {
            let plan = FaultPlan::generate(
                seed,
                &PlanParams {
                    hosts: 3,
                    events: 10,
                    intensity: 0.9,
                    ..PlanParams::default()
                },
            );
            let text = plan.to_text();
            let back = FaultPlan::parse(&text).expect("round trip");
            assert_eq!(plan, back, "plan text:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("chaos-plan v2 seed=1").is_err());
        assert!(FaultPlan::parse("chaos-plan v1 seed=1\nwarp link=any from=0 until=9").is_err());
        assert!(FaultPlan::parse("chaos-plan v1 seed=1\nloss link=any from=0 until=9").is_err());
        assert!(
            FaultPlan::parse("chaos-plan v1 seed=1\nloss link=any from=9 until=9 rate=0.5")
                .is_err()
        );
        assert!(
            FaultPlan::parse("chaos-plan v1 seed=1\nloss link=any from=0 until=9 rate=1.5")
                .is_err()
        );
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let plan = FaultPlan::parse(
            "# a commented plan\n\nchaos-plan v1 seed=5\n\ndown link=1 from=10 until=20\n",
        )
        .expect("parse");
        assert_eq!(plan.seed, 5);
        assert_eq!(
            plan.events,
            vec![FaultEvent {
                link: LinkSelector::Host(HostId(1)),
                from: SimTime::from_picos(10),
                until: SimTime::from_picos(20),
                kind: FaultKind::LinkDown,
            }]
        );
    }

    #[test]
    fn selector_matching() {
        assert!(LinkSelector::Any.matches(HostId(0), HostId(1)));
        assert!(LinkSelector::Host(HostId(0)).matches(HostId(0), HostId(1)));
        assert!(LinkSelector::Host(HostId(1)).matches(HostId(0), HostId(1)));
        assert!(!LinkSelector::Host(HostId(2)).matches(HostId(0), HostId(1)));
    }
}
