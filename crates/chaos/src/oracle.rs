//! Invariant oracles for chaos runs.
//!
//! These capture the transport contracts that must hold no matter what a
//! fault plan does to the fabric:
//!
//! 1. every posted WR completes **exactly once**, with `Success` or a
//!    typed error ([`WrLedger`]);
//! 2. fabric packet counters balance — nothing is silently created or
//!    destroyed ([`FabricStats::conserved`]);
//! 3. placement and time-monotonicity checks live in the property suites
//!    that drive full simulations.

use rnic_model::CqeStatus;
use std::collections::BTreeMap;

/// Packet bookkeeping of the fabric between all NICs.
///
/// `sent` counts packets handed to the fabric by any NIC (including
/// retransmissions — they are new wire packets); `duplicates` counts
/// extra copies the injector created. Every copy in flight ends up in
/// exactly one of `delivered`, `dropped`, or `icrc_dropped`, so at
/// quiescence the books must balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets handed to the fabric by the NICs.
    pub sent: u64,
    /// Extra copies created by duplication faults.
    pub duplicates: u64,
    /// Packets delivered intact to a NIC's ingress.
    pub delivered: u64,
    /// Packets dropped on the wire (loss rate, loss bursts, link-down).
    pub dropped: u64,
    /// Packets delivered corrupt and discarded by the receiver's ICRC
    /// check.
    pub icrc_dropped: u64,
}

impl FabricStats {
    /// The conservation invariant: `sent + duplicates = delivered +
    /// dropped + icrc_dropped`. Only meaningful once the event queue has
    /// drained (packets still propagating are counted as sent but not yet
    /// resolved).
    pub fn conserved(&self) -> bool {
        self.sent + self.duplicates == self.delivered + self.dropped + self.icrc_dropped
    }

    /// Packets still in flight (sent or duplicated but not yet resolved).
    pub fn in_flight(&self) -> u64 {
        (self.sent + self.duplicates)
            .saturating_sub(self.delivered + self.dropped + self.icrc_dropped)
    }
}

/// A violation detected by [`WrLedger`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleViolation {
    /// A WR completed more than once.
    DuplicateCompletion {
        /// The offending work-request id.
        wr_id: u64,
        /// The first recorded status.
        first: CqeStatus,
        /// The second, conflicting status.
        second: CqeStatus,
    },
    /// A completion arrived for a WR that was never posted.
    UnknownCompletion {
        /// The unknown work-request id.
        wr_id: u64,
    },
    /// A posted WR never completed.
    MissingCompletion {
        /// The incomplete work-request id.
        wr_id: u64,
    },
}

impl core::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OracleViolation::DuplicateCompletion {
                wr_id,
                first,
                second,
            } => write!(
                f,
                "WR {wr_id} completed twice: first {first:?}, then {second:?}"
            ),
            OracleViolation::UnknownCompletion { wr_id } => {
                write!(f, "completion for never-posted WR {wr_id}")
            }
            OracleViolation::MissingCompletion { wr_id } => {
                write!(f, "WR {wr_id} never completed")
            }
        }
    }
}

impl std::error::Error for OracleViolation {}

/// Tracks the exactly-once completion contract over a set of WRs with
/// unique `wr_id`s.
#[derive(Debug, Clone, Default)]
pub struct WrLedger {
    posted: BTreeMap<u64, Option<CqeStatus>>,
}

impl WrLedger {
    /// A ledger with nothing posted.
    pub fn new() -> Self {
        WrLedger::default()
    }

    /// Records a posted WR. `wr_id`s must be unique per ledger.
    ///
    /// # Panics
    ///
    /// Panics if `wr_id` was already posted (a test-harness bug, not a
    /// simulator bug).
    pub fn posted(&mut self, wr_id: u64) {
        let prev = self.posted.insert(wr_id, None);
        assert!(prev.is_none(), "wr_id {wr_id} posted twice to the ledger");
    }

    /// Number of WRs posted so far.
    pub fn posted_count(&self) -> usize {
        self.posted.len()
    }

    /// Records a completion.
    ///
    /// # Errors
    ///
    /// [`OracleViolation::DuplicateCompletion`] if the WR already
    /// completed, [`OracleViolation::UnknownCompletion`] if it was never
    /// posted.
    pub fn completed(&mut self, wr_id: u64, status: CqeStatus) -> Result<(), OracleViolation> {
        match self.posted.get_mut(&wr_id) {
            None => Err(OracleViolation::UnknownCompletion { wr_id }),
            Some(Some(first)) => Err(OracleViolation::DuplicateCompletion {
                wr_id,
                first: *first,
                second: status,
            }),
            Some(slot) => {
                *slot = Some(status);
                Ok(())
            }
        }
    }

    /// The recorded status of one WR, if it completed.
    pub fn status(&self, wr_id: u64) -> Option<CqeStatus> {
        self.posted.get(&wr_id).copied().flatten()
    }

    /// Iterates `(wr_id, status)` over completed WRs.
    pub fn completions(&self) -> impl Iterator<Item = (u64, CqeStatus)> + '_ {
        self.posted.iter().filter_map(|(&id, s)| s.map(|s| (id, s)))
    }

    /// Verifies every posted WR completed exactly once.
    ///
    /// # Errors
    ///
    /// [`OracleViolation::MissingCompletion`] for the first incomplete WR.
    pub fn check_complete(&self) -> Result<(), OracleViolation> {
        for (&wr_id, status) in &self.posted {
            if status.is_none() {
                return Err(OracleViolation::MissingCompletion { wr_id });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_balances() {
        let ok = FabricStats {
            sent: 100,
            duplicates: 5,
            delivered: 90,
            dropped: 10,
            icrc_dropped: 5,
        };
        assert!(ok.conserved());
        assert_eq!(ok.in_flight(), 0);
        let pending = FabricStats {
            sent: 100,
            delivered: 90,
            ..FabricStats::default()
        };
        assert!(!pending.conserved());
        assert_eq!(pending.in_flight(), 10);
    }

    #[test]
    fn ledger_exactly_once() {
        let mut ledger = WrLedger::new();
        ledger.posted(1);
        ledger.posted(2);
        assert!(matches!(
            ledger.check_complete(),
            Err(OracleViolation::MissingCompletion { wr_id: 1 })
        ));
        ledger.completed(1, CqeStatus::Success).expect("first");
        ledger
            .completed(2, CqeStatus::RetryExceeded)
            .expect("first");
        assert!(ledger.check_complete().is_ok());
        assert!(matches!(
            ledger.completed(1, CqeStatus::Success),
            Err(OracleViolation::DuplicateCompletion { wr_id: 1, .. })
        ));
        assert!(matches!(
            ledger.completed(3, CqeStatus::Success),
            Err(OracleViolation::UnknownCompletion { wr_id: 3 })
        ));
        assert_eq!(ledger.status(2), Some(CqeStatus::RetryExceeded));
        assert_eq!(ledger.completions().count(), 2);
    }
}
