//! Execution-fault plans: seed-derived worker panic/stall/slow-start
//! injections for the supervised worker pool.
//!
//! Wire faults ([`crate::FaultPlan`]) break the *simulated* fabric;
//! exec faults break the *simulator's own execution* — a pool worker
//! panics before taking its window, or goes quiet long enough to trip
//! the supervisor's stall heartbeat. They exist to prove the
//! supervision layer: an induced worker crash mid-run must complete
//! with digests bit-identical to the unfaulted run at every worker
//! count (see `crates/pdes/tests/supervisor.rs` and the ci.sh smoke).
//!
//! Determinism contract: plans are generated from
//! `derive(seed, "chaos-exec-plan")` — a stream orthogonal to the wire
//! fault stream (`"chaos-plan"`) and to every simulation stream — and
//! events fire on a pure `(worker, round)` periodic match, so a plan
//! perturbs *scheduling only*, never results.

use std::sync::Arc;
use std::time::Duration;

use sim_core::SimRng;

/// Which logical pool worker slot an exec-fault event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecWorkerSelector {
    /// Every worker slot.
    Any,
    /// One worker slot (0-based logical index; slots keep their index
    /// across respawns).
    Worker(u32),
}

impl ExecWorkerSelector {
    /// Whether worker slot `w` matches this selector.
    pub fn matches(self, w: usize) -> bool {
        match self {
            ExecWorkerSelector::Any => true,
            ExecWorkerSelector::Worker(target) => w as u32 == target,
        }
    }
}

/// The fault a matching worker injects on itself before taking a job.
///
/// Stall/slow-start durations are **wall-clock milliseconds** (these
/// are real thread sleeps, not simulated time): threads cannot be
/// killed in safe Rust, so injected stalls are bounded sleeps sized to
/// trip (or not trip) the supervisor's heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecFaultKind {
    /// Panic before touching the job (the supervisor gets the job back
    /// and replays the window sequentially).
    Panic,
    /// Sleep this many milliseconds — long enough to trip the stall
    /// heartbeat and exercise quarantine + respawn.
    Stall {
        /// Sleep duration in wall-clock milliseconds.
        ms: u64,
    },
    /// Sleep briefly — skews scheduling without tripping the heartbeat.
    SlowStart {
        /// Sleep duration in wall-clock milliseconds.
        ms: u64,
    },
}

impl ExecFaultKind {
    fn tag(&self) -> &'static str {
        match self {
            ExecFaultKind::Panic => "panic",
            ExecFaultKind::Stall { .. } => "stall",
            ExecFaultKind::SlowStart { .. } => "slow",
        }
    }
}

/// One scheduled exec fault: fires on worker slots matching `worker`
/// whenever the pool round satisfies `round % every == offset`.
///
/// Periodic matching (rather than absolute round numbers) means a plan
/// fires regardless of how many rounds the run actually has — short
/// `--quick` runs and full sweeps both get perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExecFaultEvent {
    /// Worker slot(s) the fault applies to.
    pub worker: ExecWorkerSelector,
    /// Period of the round match (>= 1).
    pub every: u64,
    /// Phase of the round match (`< every`).
    pub offset: u64,
    /// What the matching worker does to itself.
    pub kind: ExecFaultKind,
}

impl ExecFaultEvent {
    /// Whether this event fires for worker slot `w` in round `round`
    /// (rounds are 1-based, as counted by the pool).
    pub fn fires(&self, w: usize, round: u64) -> bool {
        self.worker.matches(w) && round % self.every.max(1) == self.offset
    }
}

/// Parameters for [`ExecFaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPlanParams {
    /// Worker slots targeted events are drawn from.
    pub workers: u32,
    /// Number of fault events to generate.
    pub events: usize,
    /// Upper bound on stall sleeps in wall-clock milliseconds.
    pub max_stall_ms: u64,
}

impl Default for ExecPlanParams {
    fn default() -> Self {
        ExecPlanParams {
            workers: 4,
            events: 3,
            max_stall_ms: 40,
        }
    }
}

/// A deterministic, serializable schedule of execution faults.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ExecFaultPlan {
    /// The seed the plan was generated from (recorded for repro lines).
    pub seed: u64,
    /// The scheduled events. The first event matching `(worker, round)`
    /// wins when several apply.
    pub events: Vec<ExecFaultEvent>,
}

impl ExecFaultPlan {
    /// A plan with no events (workers run unperturbed).
    pub fn empty(seed: u64) -> Self {
        ExecFaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a randomized plan from a seed.
    ///
    /// The draw stream is `derive(seed, "chaos-exec-plan")`, orthogonal
    /// to the wire-fault stream, and the first event is always a panic
    /// on worker 0 with period 3 — so a generated plan always crashes a
    /// worker early in any run with at least a couple of rounds.
    pub fn generate(seed: u64, params: &ExecPlanParams) -> Self {
        assert!(params.workers > 0, "plan needs at least one worker");
        let mut rng = SimRng::derive(seed, "chaos-exec-plan");
        let mut events = Vec::with_capacity(params.events);
        if params.events > 0 {
            events.push(ExecFaultEvent {
                worker: ExecWorkerSelector::Worker(0),
                every: 3,
                offset: 1,
                kind: ExecFaultKind::Panic,
            });
        }
        while events.len() < params.events {
            let worker = if rng.chance(0.3) {
                ExecWorkerSelector::Any
            } else {
                ExecWorkerSelector::Worker(rng.uniform_range(0, u64::from(params.workers)) as u32)
            };
            let every = rng.uniform_range(2, 7);
            let offset = rng.uniform_range(0, every);
            let kind = match rng.uniform_range(0, 3) {
                0 => ExecFaultKind::Panic,
                1 => ExecFaultKind::Stall {
                    ms: rng.uniform_range(1, params.max_stall_ms.max(2)),
                },
                _ => ExecFaultKind::SlowStart {
                    ms: rng.uniform_range(1, 6),
                },
            };
            events.push(ExecFaultEvent {
                worker,
                every,
                offset,
                kind,
            });
        }
        ExecFaultPlan { seed, events }
    }

    /// Compiles the plan into the hook the supervised pool consumes.
    /// The hook is pure: identical `(worker, round)` arguments always
    /// produce identical verdicts.
    pub fn to_hook(&self) -> pdes::ExecFaultHook {
        let events = self.events.clone();
        Arc::new(move |w, round| {
            events
                .iter()
                .find(|ev| ev.fires(w, round))
                .map(|ev| match ev.kind {
                    ExecFaultKind::Panic => pdes::InjectedExecFault::Panic,
                    ExecFaultKind::Stall { ms } => {
                        pdes::InjectedExecFault::Stall(Duration::from_millis(ms))
                    }
                    ExecFaultKind::SlowStart { ms } => {
                        pdes::InjectedExecFault::SlowStart(Duration::from_millis(ms))
                    }
                })
        })
    }

    /// Serializes to the plan text format (see [`ExecFaultPlan::parse`]).
    pub fn to_text(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "exec-plan v1 seed={}", self.seed);
        for ev in &self.events {
            let worker = match ev.worker {
                ExecWorkerSelector::Any => "any".to_string(),
                ExecWorkerSelector::Worker(w) => w.to_string(),
            };
            let _ = write!(
                s,
                "{} worker={} every={} offset={}",
                ev.kind.tag(),
                worker,
                ev.every,
                ev.offset
            );
            match ev.kind {
                ExecFaultKind::Stall { ms } | ExecFaultKind::SlowStart { ms } => {
                    let _ = write!(s, " ms={ms}");
                }
                ExecFaultKind::Panic => {}
            }
            s.push('\n');
        }
        s
    }

    /// Parses the text form produced by [`ExecFaultPlan::to_text`]:
    ///
    /// ```text
    /// exec-plan v1 seed=<u64>
    /// panic worker=<any|slot#> every=<u64> offset=<u64>
    /// stall worker=<any|slot#> every=<u64> offset=<u64> ms=<u64>
    /// slow  worker=<any|slot#> every=<u64> offset=<u64> ms=<u64>
    /// ```
    ///
    /// Blank lines and `#` comment lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::PlanParseError`] naming the offending line.
    pub fn parse(text: &str) -> Result<Self, crate::PlanParseError> {
        let err = |line: usize, message: &str| crate::PlanParseError {
            line,
            message: message.to_string(),
        };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        let (first_no, header) = lines
            .next()
            .ok_or_else(|| err(1, "empty plan (missing 'exec-plan v1' header)"))?;
        let seed = header
            .strip_prefix("exec-plan v1 seed=")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .ok_or_else(|| err(first_no, "expected header 'exec-plan v1 seed=<u64>'"))?;
        let mut events = Vec::new();
        for (no, line) in lines {
            let mut fields = line.split_whitespace();
            let tag = fields.next().unwrap_or_default();
            let mut worker = None;
            let mut every = None;
            let mut offset = None;
            let mut ms = None;
            for field in fields {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| err(no, "fields must be key=value"))?;
                match key {
                    "worker" if value == "any" => worker = Some(ExecWorkerSelector::Any),
                    "worker" => {
                        let w = value
                            .parse::<u32>()
                            .map_err(|_| err(no, "worker must be 'any' or a slot number"))?;
                        worker = Some(ExecWorkerSelector::Worker(w));
                    }
                    "every" | "offset" | "ms" => {
                        let v = value
                            .parse::<u64>()
                            .map_err(|_| err(no, "counts are u64"))?;
                        match key {
                            "every" => every = Some(v),
                            "offset" => offset = Some(v),
                            _ => ms = Some(v),
                        }
                    }
                    other => return Err(err(no, &format!("unknown field '{other}'"))),
                }
            }
            let kind = match tag {
                "panic" => ExecFaultKind::Panic,
                "stall" => ExecFaultKind::Stall {
                    ms: ms.ok_or_else(|| err(no, "stall needs ms="))?,
                },
                "slow" => ExecFaultKind::SlowStart {
                    ms: ms.ok_or_else(|| err(no, "slow needs ms="))?,
                },
                other => return Err(err(no, &format!("unknown event kind '{other}'"))),
            };
            let every = every.ok_or_else(|| err(no, "missing every="))?;
            if every == 0 {
                return Err(err(no, "every must be >= 1"));
            }
            let offset = offset.ok_or_else(|| err(no, "missing offset="))?;
            if offset >= every {
                return Err(err(no, "offset must be < every"));
            }
            events.push(ExecFaultEvent {
                worker: worker.ok_or_else(|| err(no, "missing worker="))?,
                every,
                offset,
                kind,
            });
        }
        Ok(ExecFaultPlan { seed, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_decorrelated_from_wire_stream() {
        let params = ExecPlanParams::default();
        assert_eq!(
            ExecFaultPlan::generate(42, &params),
            ExecFaultPlan::generate(42, &params)
        );
        assert_ne!(
            ExecFaultPlan::generate(42, &params).events,
            ExecFaultPlan::generate(43, &params).events
        );
        // First draws of the exec stream differ from the wire stream's:
        // "chaos-exec-plan" and "chaos-plan" are distinct labels.
        let mut exec = SimRng::derive(42, "chaos-exec-plan");
        let mut wire = SimRng::derive(42, "chaos-plan");
        assert_ne!(
            exec.uniform_range(0, u64::MAX),
            wire.uniform_range(0, u64::MAX)
        );
    }

    #[test]
    fn first_event_guarantees_an_early_panic() {
        let plan = ExecFaultPlan::generate(7, &ExecPlanParams::default());
        assert_eq!(plan.events[0].kind, ExecFaultKind::Panic);
        assert!(plan.events[0].fires(0, 1), "must fire on worker 0, round 1");
    }

    #[test]
    fn text_round_trip() {
        for seed in [0, 1, 9, 1234] {
            let plan = ExecFaultPlan::generate(
                seed,
                &ExecPlanParams {
                    workers: 8,
                    events: 10,
                    max_stall_ms: 25,
                },
            );
            let text = plan.to_text();
            let back = ExecFaultPlan::parse(&text).expect("round trip");
            assert_eq!(plan, back, "plan text:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(ExecFaultPlan::parse("").is_err());
        assert!(ExecFaultPlan::parse("exec-plan v2 seed=1").is_err());
        assert!(
            ExecFaultPlan::parse("exec-plan v1 seed=1\nwarp worker=any every=2 offset=0").is_err()
        );
        assert!(
            ExecFaultPlan::parse("exec-plan v1 seed=1\nstall worker=any every=2 offset=0").is_err()
        );
        assert!(
            ExecFaultPlan::parse("exec-plan v1 seed=1\npanic worker=any every=0 offset=0").is_err()
        );
        assert!(
            ExecFaultPlan::parse("exec-plan v1 seed=1\npanic worker=any every=2 offset=2").is_err()
        );
    }

    #[test]
    fn hook_matches_first_applicable_event() {
        let plan = ExecFaultPlan {
            seed: 0,
            events: vec![
                ExecFaultEvent {
                    worker: ExecWorkerSelector::Worker(1),
                    every: 2,
                    offset: 0,
                    kind: ExecFaultKind::Panic,
                },
                ExecFaultEvent {
                    worker: ExecWorkerSelector::Any,
                    every: 2,
                    offset: 0,
                    kind: ExecFaultKind::SlowStart { ms: 3 },
                },
            ],
        };
        let hook = plan.to_hook();
        assert_eq!(hook(1, 2), Some(pdes::InjectedExecFault::Panic));
        assert_eq!(
            hook(0, 2),
            Some(pdes::InjectedExecFault::SlowStart(Duration::from_millis(3)))
        );
        assert_eq!(hook(0, 1), None, "odd rounds match nothing");
    }
}
