//! A minimal scoped worker pool built on `std::thread::scope` and
//! `std::sync::mpsc` — no unsafe, no external crates.
//!
//! Jobs and results are *owned values* shuttled over channels
//! (ownership ping-pong): the coordinator moves a shard of mutable
//! state into a job, a worker mutates it, and the result moves back.
//! Rust's ownership rules then prove data-race freedom without locks
//! around the simulation state itself.

use std::sync::mpsc;

/// Runs `drive` with a `run_round` function that executes a batch of
/// jobs across `workers` threads and returns the results **in job
/// submission order** (the deterministic merge point — result order
/// never depends on thread scheduling).
///
/// `work(worker_idx, job)` runs on one of the pool threads. Workers
/// live for the whole call, so per-round thread spawn cost is zero.
///
/// # Panics
///
/// A panicking worker poisons the round: the coordinator panics too
/// and `std::thread::scope` propagates the original payload.
pub fn scoped<In, Out, W, F, R>(workers: usize, work: W, drive: F) -> R
where
    In: Send,
    Out: Send,
    W: Fn(usize, In) -> Out + Sync,
    F: FnOnce(&mut dyn FnMut(Vec<In>) -> Vec<Out>) -> R,
{
    let workers = workers.max(1);
    std::thread::scope(|s| {
        let work = &work;
        let (done_tx, done_rx) = mpsc::channel::<(usize, Out)>();
        let mut job_txs = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<(usize, In)>();
            job_txs.push(tx);
            let done = done_tx.clone();
            s.spawn(move || {
                while let Ok((idx, job)) = rx.recv() {
                    // A closed done channel means the coordinator is
                    // unwinding; just stop.
                    if done.send((idx, work(w, job))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);
        let mut run_round = |jobs: Vec<In>| -> Vec<Out> {
            let n = jobs.len();
            for (idx, job) in jobs.into_iter().enumerate() {
                job_txs[idx % workers]
                    .send((idx, job))
                    .expect("pool worker exited early");
            }
            let mut slots: Vec<Option<Out>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (idx, out) = done_rx.recv().expect("pool worker panicked");
                slots[idx] = Some(out);
            }
            slots
                .into_iter()
                .map(|o| o.expect("duplicate job index"))
                .collect()
        };
        drive(&mut run_round)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        let out = scoped(
            4,
            |_, x: u64| x * 2,
            |run| {
                let a = run((0..100).collect());
                let b = run((100..110).collect());
                (a, b)
            },
        );
        assert_eq!(out.0, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(out.1, (100..110).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_ok() {
        let sum: u64 = scoped(1, |_, x: u64| x + 1, |run| run(vec![1, 2, 3]))
            .into_iter()
            .sum();
        assert_eq!(sum, 9);
    }

    #[test]
    fn ownership_ping_pong() {
        // Moves a Vec out and back, mutated — the pattern the engines use.
        let v = scoped(
            2,
            |_, mut v: Vec<u64>| {
                v.push(99);
                v
            },
            |run| run(vec![vec![1], vec![2]]),
        );
        assert_eq!(v, vec![vec![1, 99], vec![2, 99]]);
    }
}
