//! A minimal scoped worker pool built on `std::thread::scope` and
//! `std::sync::mpsc` — no unsafe, no external crates.
//!
//! Jobs and results are *owned values* shuttled over channels
//! (ownership ping-pong): the coordinator moves a shard of mutable
//! state into a job, a worker mutates it, and the result moves back.
//! Rust's ownership rules then prove data-race freedom without locks
//! around the simulation state itself.
//!
//! Two entry points share one implementation:
//!
//! - [`scoped`] — the simple face: a batch in, results out, and any
//!   worker panic re-raised on the coordinator **with context** (worker
//!   index, job index, round, payload) instead of the old opaque
//!   `recv()` failure. Crucially, a panicking worker can no longer
//!   deadlock the round: workers run jobs behind `catch_unwind`, so
//!   every submitted job always produces exactly one reply.
//! - [`scoped_supervised`] — the robust face used by hours-long sweeps:
//!   per-job [`JobOutcome`]s instead of panics, worker quarantine and
//!   bounded respawn ([`PoolPolicy`]), stall detection via a pool-wide
//!   reply heartbeat, seed-deterministic execution-fault injection
//!   ([`ExecFaultHook`]), and live [`PoolHealth`] counters.
//!
//! Determinism note: job→worker assignment is demand-driven and hence
//! scheduling-dependent, but results are always returned in job
//! *submission* order, and injected faults key off `(worker, round)` —
//! so every digest downstream of the pool is independent of thread
//! scheduling.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use sim_core::panic_payload_message;

/// A seed-derived execution fault a worker injects on itself before
/// taking its next job (see `ragnar-chaos`'s exec-fault plans, which
/// compile to [`ExecFaultHook`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedExecFault {
    /// Panic before touching the job. The coordinator gets the job
    /// back ([`JobOutcome::Returned`]) and can replay it sequentially —
    /// this is what makes induced crashes digest-invisible.
    Panic,
    /// Sleep this long before working — long enough to trip the
    /// supervisor's stall heartbeat. (Threads cannot be killed in safe
    /// Rust, so injected stalls are bounded sleeps; the cell-timeout
    /// watchdog in the harness is the backstop for genuinely unbounded
    /// hangs.)
    Stall(Duration),
    /// Sleep briefly before working — a slow start that should *not*
    /// trip the heartbeat, only skew scheduling.
    SlowStart(Duration),
}

/// Decides, per `(worker, round)`, whether that worker injects a fault
/// before taking its job. Must be deterministic in its arguments —
/// fault schedules are derived from seeds so runs are reproducible.
pub type ExecFaultHook = Arc<dyn Fn(usize, u64) -> Option<InjectedExecFault> + Send + Sync>;

/// Supervision policy for [`scoped_supervised`].
#[derive(Clone, Default)]
pub struct PoolPolicy {
    /// Pool-wide reply heartbeat: if *no* worker reply arrives within
    /// this long while jobs are outstanding, every busy worker is
    /// declared stalled, quarantined, and (budget permitting)
    /// respawned. `None` disables stall detection.
    pub stall_timeout: Option<Duration>,
    /// How many replacement workers may be spawned over the pool's
    /// lifetime before quarantined slots stay dead (at which point
    /// remaining jobs degrade to inline execution on the coordinator).
    pub max_respawns: u32,
    /// Optional execution-fault injection hook (chaos testing).
    pub fault_hook: Option<ExecFaultHook>,
}

impl fmt::Debug for PoolPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolPolicy")
            .field("stall_timeout", &self.stall_timeout)
            .field("max_respawns", &self.max_respawns)
            .field("fault_hook", &self.fault_hook.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

/// What went wrong on a worker, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Logical worker slot (0-based).
    pub worker: usize,
    /// Index of the job within its round (submission order).
    pub job: usize,
    /// 1-based round counter (one round per `run_round` call — for the
    /// PDES engines, one round per lookahead window).
    pub round: u64,
    /// What kind of failure this was.
    pub cause: FaultCause,
    /// The rendered panic payload (empty for stalls).
    pub payload: String,
}

/// Failure classification for a [`WorkerFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// The worker panicked while holding the job.
    Panic,
    /// The worker went silent past the stall heartbeat. (Stalled jobs
    /// still complete when the worker wakes — stall faults surface via
    /// [`PoolHealth`], not job outcomes.)
    Stall,
}

impl fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cause {
            FaultCause::Panic => write!(
                f,
                "pool worker {} panicked on job {} of round {}: {}",
                self.worker, self.job, self.round, self.payload
            ),
            FaultCause::Stall => write!(
                f,
                "pool worker {} stalled on job {} of round {}",
                self.worker, self.job, self.round
            ),
        }
    }
}

/// Per-job result of a supervised round, in submission order.
#[derive(Debug)]
pub enum JobOutcome<In, Out> {
    /// The job completed normally.
    Done(Out),
    /// The worker faulted *before taking the job*, so the coordinator
    /// got it back intact — replay it (inline execution of a returned
    /// job is exactly the sequential oracle's order).
    Returned(In, WorkerFault),
    /// The worker faulted mid-job; the job's state is gone. The caller
    /// must recover at a coarser granularity (re-run the window from a
    /// snapshot, or let the harness retry the whole cell).
    Lost(WorkerFault),
}

/// Live health counters for a supervised pool, readable by the drive
/// closure between rounds (coordinator-thread only, hence `Cell`s).
#[derive(Debug, Default)]
pub struct PoolHealth {
    panics: Cell<u64>,
    stalls: Cell<u64>,
    respawns: Cell<u64>,
    quarantined: Cell<u64>,
    inline_jobs: Cell<u64>,
}

/// A plain-data copy of [`PoolHealth`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Worker panics caught (injected or real).
    pub panics: u64,
    /// Stall heartbeat trips.
    pub stalls: u64,
    /// Replacement workers spawned.
    pub respawns: u64,
    /// Worker slots permanently dead (respawn budget exhausted).
    pub quarantined: u64,
    /// Jobs degraded to inline execution on the coordinator.
    pub inline_jobs: u64,
}

impl PoolHealth {
    /// Worker panics caught so far.
    pub fn panics(&self) -> u64 {
        self.panics.get()
    }
    /// Stall heartbeat trips so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }
    /// Replacement workers spawned so far.
    pub fn respawns(&self) -> u64 {
        self.respawns.get()
    }
    /// Worker slots permanently dead.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.get()
    }
    /// Jobs run inline on the coordinator (full degradation).
    pub fn inline_jobs(&self) -> u64 {
        self.inline_jobs.get()
    }
    /// Copies the counters into a plain struct.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            panics: self.panics(),
            stalls: self.stalls(),
            respawns: self.respawns(),
            quarantined: self.quarantined(),
            inline_jobs: self.inline_jobs(),
        }
    }
}

enum ReplyKind<In, Out> {
    Done(Out),
    ReturnedJob(In, String),
    LostJob(String),
}

/// (slot, generation, job index, kind). The generation distinguishes a
/// quarantined worker's late reply from its replacement's.
type Reply<In, Out> = (usize, u64, usize, ReplyKind<In, Out>);

struct SlotState<In> {
    /// `None` once the slot is permanently dead.
    tx: Option<mpsc::Sender<(u64, usize, In)>>,
    /// Bumped on every quarantine, so stale replies are recognizable.
    gen: u64,
    /// Jobs sent to minus replies received from the *current* thread.
    busy: u32,
}

fn worker_loop<In, Out, W>(
    w: usize,
    gen: u64,
    rx: mpsc::Receiver<(u64, usize, In)>,
    done: mpsc::Sender<Reply<In, Out>>,
    work: &W,
    hook: Option<ExecFaultHook>,
) where
    W: Fn(usize, In) -> Out + Sync,
{
    // Supervised for the whole loop: every panic here is caught below
    // and reported by the coordinator with context, so the default
    // hook's backtrace spew would be pure noise.
    let _guard = sim_core::supervised_section();
    loop {
        // Time blocked on the job channel is the worker's barrier/idle
        // share — the profiler's measure of how starved the pool runs.
        let received = {
            let _p = ragnar_telemetry::profile::enter(ragnar_telemetry::profile::Phase::WorkerIdle);
            rx.recv()
        };
        let Ok((round, idx, job)) = received else {
            break;
        };
        let mut holder = Some(job);
        let result = {
            let holder = &mut holder;
            let hook = &hook;
            catch_unwind(AssertUnwindSafe(move || {
                if let Some(hook) = hook {
                    match hook(w, round) {
                        Some(InjectedExecFault::Panic) => {
                            panic!("[chaos-exec] injected panic: worker {w} round {round}")
                        }
                        Some(InjectedExecFault::Stall(d))
                        | Some(InjectedExecFault::SlowStart(d)) => std::thread::sleep(d),
                        None => {}
                    }
                }
                let job = holder.take().expect("job taken once");
                work(w, job)
            }))
        };
        let kind = match result {
            Ok(out) => ReplyKind::Done(out),
            Err(payload) => {
                let msg = panic_payload_message(payload.as_ref());
                match holder.take() {
                    Some(job) => ReplyKind::ReturnedJob(job, msg),
                    None => ReplyKind::LostJob(msg),
                }
            }
        };
        // A closed done channel means the coordinator is unwinding;
        // just stop.
        if done.send((w, gen, idx, kind)).is_err() {
            break;
        }
    }
}

/// Runs `drive` with a `run_round` function that executes a batch of
/// jobs across `workers` threads and returns [`JobOutcome`]s **in job
/// submission order** (the deterministic merge point — result order
/// never depends on thread scheduling).
///
/// `work(worker_idx, job)` runs on one of the pool threads; `drive`
/// also receives the live [`PoolHealth`] counters. Workers live for
/// the whole call (respawns aside), so per-round spawn cost is zero.
///
/// Failure handling, per [`PoolPolicy`]:
/// - a panicking worker is quarantined and (budget permitting)
///   respawned; its job comes back as [`JobOutcome::Returned`] if the
///   panic hit before the job was taken, [`JobOutcome::Lost`] otherwise;
/// - a stalled worker (no pool-wide reply within `stall_timeout`) is
///   quarantined and respawned, but its in-flight job is still awaited —
///   when the worker wakes the result is used normally;
/// - with every slot dead and no respawn budget, remaining jobs run
///   inline on the coordinator (slow, but the run completes).
pub fn scoped_supervised<In, Out, W, F, R>(
    workers: usize,
    policy: PoolPolicy,
    work: W,
    drive: F,
) -> R
where
    In: Send,
    Out: Send,
    W: Fn(usize, In) -> Out + Sync,
    F: FnOnce(&mut dyn FnMut(Vec<In>) -> Vec<JobOutcome<In, Out>>, &PoolHealth) -> R,
{
    let workers = workers.max(1);
    std::thread::scope(|s| {
        let work = &work;
        let (done_tx, done_rx) = mpsc::channel::<Reply<In, Out>>();
        let health = PoolHealth::default();
        let respawns_left = Cell::new(policy.max_respawns);
        let hook = policy.fault_hook.clone();
        let spawn_worker = {
            let done_tx = done_tx.clone();
            move |w: usize, gen: u64| -> mpsc::Sender<(u64, usize, In)> {
                let (tx, rx) = mpsc::channel();
                let done = done_tx.clone();
                let hook = hook.clone();
                s.spawn(move || worker_loop(w, gen, rx, done, work, hook));
                tx
            }
        };
        let mut slots: Vec<SlotState<In>> = (0..workers)
            .map(|w| SlotState {
                tx: Some(spawn_worker(w, 0)),
                gen: 0,
                busy: 0,
            })
            .collect();
        let mut round: u64 = 0;

        // Abandons slot `w`'s current thread (its channel sender drops,
        // so the thread exits once it drains) and replaces it if the
        // respawn budget allows.
        let quarantine = |slots: &mut Vec<SlotState<In>>, w: usize| {
            slots[w].tx = None;
            slots[w].gen += 1;
            slots[w].busy = 0;
            if respawns_left.get() > 0 {
                respawns_left.set(respawns_left.get() - 1);
                health.respawns.set(health.respawns.get() + 1);
                slots[w].tx = Some(spawn_worker(w, slots[w].gen));
            } else {
                health.quarantined.set(health.quarantined.get() + 1);
            }
        };

        let mut run_round = |jobs: Vec<In>| -> Vec<JobOutcome<In, Out>> {
            round += 1;
            let n = jobs.len();
            let mut pending: VecDeque<(usize, In)> = jobs.into_iter().enumerate().collect();
            let mut results: Vec<Option<JobOutcome<In, Out>>> = (0..n).map(|_| None).collect();
            let mut outstanding = n;

            // Demand-driven dispatch: one job at a time per idle live
            // slot, so a stalled worker never holds a queue of jobs
            // hostage — only its single in-flight job. Falls back to
            // inline execution when every slot is dead.
            let feed = |slots: &mut Vec<SlotState<In>>,
                        pending: &mut VecDeque<(usize, In)>,
                        results: &mut Vec<Option<JobOutcome<In, Out>>>,
                        outstanding: &mut usize,
                        round: u64| {
                while !pending.is_empty() {
                    if let Some(w) = slots.iter().position(|s| s.tx.is_some() && s.busy == 0) {
                        let (idx, job) = pending.pop_front().expect("checked non-empty");
                        slots[w]
                            .tx
                            .as_ref()
                            .expect("live slot")
                            .send((round, idx, job))
                            .expect("pool worker exited early");
                        slots[w].busy += 1;
                    } else if slots.iter().all(|s| s.tx.is_none()) {
                        let (idx, job) = pending.pop_front().expect("checked non-empty");
                        health.inline_jobs.set(health.inline_jobs.get() + 1);
                        results[idx] = Some(JobOutcome::Done(work(0, job)));
                        *outstanding -= 1;
                    } else {
                        // Live workers exist but all are busy — wait
                        // for replies before dispatching more.
                        return;
                    }
                }
            };

            feed(
                &mut slots,
                &mut pending,
                &mut results,
                &mut outstanding,
                round,
            );
            while outstanding > 0 {
                let reply = if let Some(t) = policy.stall_timeout {
                    loop {
                        match done_rx.recv_timeout(t) {
                            Ok(r) => break r,
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                // Pool-wide silence past the heartbeat:
                                // every busy slot is presumed stalled.
                                let busy: Vec<usize> = slots
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, s)| s.tx.is_some() && s.busy > 0)
                                    .map(|(w, _)| w)
                                    .collect();
                                for w in busy {
                                    health.stalls.set(health.stalls.get() + 1);
                                    quarantine(&mut slots, w);
                                }
                                feed(
                                    &mut slots,
                                    &mut pending,
                                    &mut results,
                                    &mut outstanding,
                                    round,
                                );
                                if outstanding == 0 {
                                    return results
                                        .into_iter()
                                        .map(|o| o.expect("one result per job"))
                                        .collect();
                                }
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                unreachable!("coordinator holds a done sender")
                            }
                        }
                    }
                } else {
                    done_rx.recv().expect("pool output channel closed")
                };
                let (w, gen, idx, kind) = reply;
                if slots[w].gen == gen {
                    slots[w].busy -= 1;
                }
                outstanding -= 1;
                match kind {
                    ReplyKind::Done(out) => results[idx] = Some(JobOutcome::Done(out)),
                    ReplyKind::ReturnedJob(job, payload) => {
                        health.panics.set(health.panics.get() + 1);
                        if slots[w].gen == gen {
                            quarantine(&mut slots, w);
                        }
                        let fault = WorkerFault {
                            worker: w,
                            job: idx,
                            round,
                            cause: FaultCause::Panic,
                            payload,
                        };
                        results[idx] = Some(JobOutcome::Returned(job, fault));
                    }
                    ReplyKind::LostJob(payload) => {
                        health.panics.set(health.panics.get() + 1);
                        if slots[w].gen == gen {
                            quarantine(&mut slots, w);
                        }
                        let fault = WorkerFault {
                            worker: w,
                            job: idx,
                            round,
                            cause: FaultCause::Panic,
                            payload,
                        };
                        results[idx] = Some(JobOutcome::Lost(fault));
                    }
                }
                feed(
                    &mut slots,
                    &mut pending,
                    &mut results,
                    &mut outstanding,
                    round,
                );
            }
            results
                .into_iter()
                .map(|o| o.expect("one result per job"))
                .collect()
        };
        drive(&mut run_round, &health)
    })
}

/// Runs `drive` with a `run_round` function that executes a batch of
/// jobs across `workers` threads and returns the results **in job
/// submission order** (the deterministic merge point — result order
/// never depends on thread scheduling).
///
/// `work(worker_idx, job)` runs on one of the pool threads. Workers
/// live for the whole call, so per-round thread spawn cost is zero.
///
/// # Panics
///
/// A panicking worker no longer deadlocks or poisons the round
/// silently: the panic is caught on the worker, and the coordinator
/// re-raises it with context — worker index, job index, round, and the
/// original payload (see [`WorkerFault`]'s `Display`).
pub fn scoped<In, Out, W, F, R>(workers: usize, work: W, drive: F) -> R
where
    In: Send,
    Out: Send,
    W: Fn(usize, In) -> Out + Sync,
    F: FnOnce(&mut dyn FnMut(Vec<In>) -> Vec<Out>) -> R,
{
    scoped_supervised(workers, PoolPolicy::default(), work, |run, _health| {
        let mut plain = |jobs: Vec<In>| -> Vec<Out> {
            run(jobs)
                .into_iter()
                .map(|outcome| match outcome {
                    JobOutcome::Done(out) => out,
                    JobOutcome::Returned(_, fault) | JobOutcome::Lost(fault) => {
                        panic!("{fault}")
                    }
                })
                .collect()
        };
        drive(&mut plain)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        let out = scoped(
            4,
            |_, x: u64| x * 2,
            |run| {
                let a = run((0..100).collect());
                let b = run((100..110).collect());
                (a, b)
            },
        );
        assert_eq!(out.0, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(out.1, (100..110).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_ok() {
        let sum: u64 = scoped(1, |_, x: u64| x + 1, |run| run(vec![1, 2, 3]))
            .into_iter()
            .sum();
        assert_eq!(sum, 9);
    }

    #[test]
    fn ownership_ping_pong() {
        // Moves a Vec out and back, mutated — the pattern the engines use.
        let v = scoped(
            2,
            |_, mut v: Vec<u64>| {
                v.push(99);
                v
            },
            |run| run(vec![vec![1], vec![2]]),
        );
        assert_eq!(v, vec![vec![1, 99], vec![2, 99]]);
    }

    #[test]
    fn worker_panic_is_named_not_a_deadlock() {
        // Pre-supervision this deadlocked with workers > 1: the
        // panicking worker died without replying and the other worker
        // kept the done channel open, so recv() blocked forever.
        let err = catch_unwind(AssertUnwindSafe(|| {
            scoped(
                2,
                |_, x: u64| {
                    if x == 3 {
                        panic!("boom on {x}");
                    }
                    x
                },
                |run| run((0..8).collect()),
            )
        }))
        .expect_err("worker panic must propagate");
        let msg = panic_payload_message(err.as_ref());
        assert!(msg.contains("pool worker"), "got: {msg}");
        assert!(msg.contains("job 3 of round 1"), "got: {msg}");
        assert!(msg.contains("boom on 3"), "got: {msg}");
    }

    #[test]
    fn injected_panic_returns_the_job() {
        // The hook fires before the job is taken, so the job comes
        // back intact and the pool self-heals via respawn.
        let hook: ExecFaultHook =
            Arc::new(|w, round| (w == 0 && round == 1).then_some(InjectedExecFault::Panic));
        let policy = PoolPolicy {
            stall_timeout: None,
            max_respawns: 4,
            fault_hook: Some(hook),
        };
        let (outcomes, snap) = scoped_supervised(
            2,
            policy,
            |_, x: u64| x * 10,
            |run, health| {
                let first = run(vec![1, 2, 3, 4]);
                let second = run(vec![5]);
                ((first, second), health.snapshot())
            },
        );
        let (first, second) = outcomes;
        let mut returned = 0u32;
        for (i, o) in first.into_iter().enumerate() {
            match o {
                JobOutcome::Done(out) => assert_eq!(out, (i as u64 + 1) * 10),
                JobOutcome::Returned(job, fault) => {
                    assert_eq!(job, i as u64 + 1);
                    assert_eq!(fault.cause, FaultCause::Panic);
                    assert_eq!(fault.worker, 0);
                    assert!(fault.payload.contains("[chaos-exec]"), "{}", fault.payload);
                    returned += 1;
                }
                JobOutcome::Lost(f) => panic!("unexpected loss: {f}"),
            }
        }
        assert!(returned >= 1, "worker 0 must have faulted at least once");
        // Round 2 runs clean on the respawned worker.
        assert!(matches!(second[0], JobOutcome::Done(50)));
        assert_eq!(snap.panics as u32, returned);
        assert_eq!(snap.respawns as u32, returned);
        assert_eq!(snap.quarantined, 0);
    }

    #[test]
    fn stalled_worker_is_respawned_and_result_still_used() {
        let hook: ExecFaultHook = Arc::new(|w, round| {
            (w == 0 && round == 1).then_some(InjectedExecFault::Stall(Duration::from_millis(200)))
        });
        let policy = PoolPolicy {
            stall_timeout: Some(Duration::from_millis(20)),
            max_respawns: 4,
            fault_hook: Some(hook),
        };
        let (outs, snap) = scoped_supervised(
            2,
            policy,
            |_, x: u64| x + 1,
            |run, health| (run(vec![10, 20, 30, 40]), health.snapshot()),
        );
        // Every job completes despite the stall — the late result is
        // awaited and used, in submission order.
        let values: Vec<u64> = outs
            .into_iter()
            .map(|o| match o {
                JobOutcome::Done(v) => v,
                other => panic!("expected Done, got {other:?}"),
            })
            .collect();
        assert_eq!(values, vec![11, 21, 31, 41]);
        assert!(snap.stalls >= 1, "stall heartbeat must have tripped");
        assert!(snap.respawns >= 1);
    }

    #[test]
    fn respawn_exhaustion_degrades_to_inline() {
        // Every worker faults every round and there is no respawn
        // budget: after the initial panics the pool is fully dead and
        // the coordinator finishes the batch inline.
        let hook: ExecFaultHook = Arc::new(|_, _| Some(InjectedExecFault::Panic));
        let policy = PoolPolicy {
            stall_timeout: None,
            max_respawns: 0,
            fault_hook: Some(hook),
        };
        let (outs, snap) = scoped_supervised(
            2,
            policy,
            |_, x: u64| x * 3,
            |run, health| (run(vec![1, 2, 3, 4, 5, 6]), health.snapshot()),
        );
        let done = outs
            .iter()
            .filter(|o| matches!(o, JobOutcome::Done(_)))
            .count();
        let returned = outs
            .iter()
            .filter(|o| matches!(o, JobOutcome::Returned(..)))
            .count();
        assert_eq!(done + returned, 6);
        assert_eq!(snap.quarantined, 2, "both slots must die");
        assert_eq!(snap.respawns, 0);
        assert_eq!(snap.inline_jobs as usize, done);
        assert!(snap.inline_jobs >= 1, "inline degradation must engage");
        // Returned jobs carry their payload for the caller to replay.
        for o in &outs {
            if let JobOutcome::Returned(_, fault) = o {
                assert!(fault.payload.contains("injected panic"));
            }
        }
    }
}
