//! A tiny order-insensitive-free (i.e. strictly order-sensitive) 64-bit
//! fold used to fingerprint event streams and actor states.
//!
//! Both engines fold the exact same words in the exact same order, so a
//! single `u64` comparison is enough to assert that a parallel run
//! reproduced the sequential run bit-for-bit. One xor-multiply round
//! per word with a finalizing xor-shift mix: cheap (the fold sits on
//! the per-event hot path of the engines it fingerprints),
//! deterministic, and sensitive to both value and position.
//!
//! The digest value is never pinned as a constant anywhere — it exists
//! only to be compared against another digest computed by the same
//! code — so the mixing function can change freely; both sides of every
//! comparison move together.

/// Incremental 64-bit stream digest (xor-multiply over words, mixed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest64 {
    state: u64,
    words: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Odd multiplier (2^64 / phi): full-period under wrapping
/// multiplication, good high-bit diffusion after the final avalanche.
const MIX_PRIME: u64 = 0x9e37_79b9_7f4a_7c15;

impl Digest64 {
    /// A fresh digest (FNV-1a offset basis).
    pub fn new() -> Digest64 {
        Digest64 {
            state: FNV_OFFSET,
            words: 0,
        }
    }

    /// Folds one word into the digest. Order matters: the running state
    /// is multiplied between words, so permutations of equal words
    /// diverge — `((s^a)·K ^ b)·K ≠ ((s^b)·K ^ a)·K`.
    #[inline]
    pub fn fold(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(MIX_PRIME);
        self.words = self.words.wrapping_add(1);
    }

    /// Folds another digest's value into this one.
    #[inline]
    pub fn absorb(&mut self, other: &Digest64) {
        self.fold(other.value());
        self.fold(other.words);
    }

    /// The finalized digest value (does not consume the stream).
    pub fn value(&self) -> u64 {
        // xor-shift avalanche so short streams still differ widely.
        let mut x = self.state ^ self.words;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^ (x >> 33)
    }

    /// Number of words folded so far.
    pub fn words(&self) -> u64 {
        self.words
    }
}

impl Default for Digest64 {
    fn default() -> Digest64 {
        Digest64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_sensitive() {
        let mut a = Digest64::new();
        a.fold(1);
        a.fold(2);
        let mut b = Digest64::new();
        b.fold(2);
        b.fold(1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn deterministic() {
        let mut a = Digest64::new();
        let mut b = Digest64::new();
        for w in [7u64, 0, u64::MAX, 42] {
            a.fold(w);
            b.fold(w);
        }
        assert_eq!(a.value(), b.value());
        assert_eq!(a.words(), 4);
    }

    #[test]
    fn absorb_differs_from_inline() {
        let mut inner = Digest64::new();
        inner.fold(9);
        let mut outer = Digest64::new();
        outer.absorb(&inner);
        let mut plain = Digest64::new();
        plain.fold(9);
        assert_ne!(outer.value(), plain.value());
    }
}
