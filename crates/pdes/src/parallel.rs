//! The conservative-synchronization parallel engine.
//!
//! Actors are sharded contiguously across workers. Execution proceeds
//! in *windows*: with `t0` the earliest pending timestamp across all
//! shards and `L` the lookahead, every event in `[t0, t0 + L)` can be
//! processed without inter-worker communication, because any
//! cross-actor message emitted inside the window arrives at
//! `now + delay >= t0 + L` — at or after the window end (the [`Outbox`]
//! contract). Self-sends may arrive sooner and are inlined into the
//! shard's local heap.
//!
//! Between windows the coordinator routes cross-actor messages into the
//! destination shards. Merge order is deterministic by construction:
//! every event carries an [`EventKey`] `(timestamp, src actor, per-src
//! seq)` assigned at emission, and each shard processes its events in
//! strict key order — so the per-actor event streams, and every digest
//! over them, are bit-identical to the sequential oracle for any worker
//! count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sim_core::{SimDuration, SimTime};

use crate::actor::{Actor, EventKey, Outbox, INJECTED_SRC};
use crate::digest::Digest64;
use crate::pool;
use crate::sequential::combine;

struct Item<M> {
    key: EventKey,
    dst: u32,
    msg: M,
}

impl<M> PartialEq for Item<M> {
    fn eq(&self, other: &Item<M>) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Item<M> {}
impl<M> PartialOrd for Item<M> {
    fn partial_cmp(&self, other: &Item<M>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Item<M> {
    fn cmp(&self, other: &Item<M>) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct Slot<A> {
    actor: A,
    order: Digest64,
    processed: u64,
    out_seq: u64,
}

struct Shard<A: Actor> {
    /// Global index of `slots[0]`.
    base: u32,
    slots: Vec<Slot<A>>,
    heap: BinaryHeap<Reverse<Item<A::Msg>>>,
    lookahead: SimDuration,
    now: SimTime,
}

impl<A: Actor> Shard<A> {
    /// Processes every pending event with `at < wend` in key order.
    /// Returns messages bound for other actors (arrival `>= wend` by
    /// the lookahead contract, so routing between windows is safe).
    fn run_window(&mut self, wend: SimTime) -> Vec<Item<A::Msg>> {
        let mut outbound = Vec::new();
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.key.at >= wend {
                break;
            }
            let Reverse(item) = self.heap.pop().expect("peeked");
            self.now = item.key.at;
            let local = (item.dst - self.base) as usize;
            let slot = &mut self.slots[local];
            item.key.fold_into(&mut slot.order);
            slot.processed += 1;
            let mut out = Outbox::new(item.key.at, item.dst, self.lookahead);
            slot.actor.on_event(item.key.at, item.msg, &mut out);
            for (to, at, msg) in out.sends {
                let key = EventKey {
                    at,
                    src: item.dst,
                    seq: self.slots[local].out_seq,
                };
                self.slots[local].out_seq += 1;
                debug_assert!(at >= item.key.at, "send into the past");
                let next = Item { key, dst: to, msg };
                if to == item.dst {
                    self.heap.push(Reverse(next));
                } else {
                    outbound.push(next);
                }
            }
        }
        outbound
    }

    fn head_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(i)| i.key.at)
    }
}

/// What a supervised run observed: events processed, pool health, and
/// how many lookahead windows were replayed inline after a worker
/// fault. Digests are unaffected by any of it — that is the point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Events processed by this call.
    pub events: u64,
    /// Pool health counters at the end of the run.
    pub health: pool::HealthSnapshot,
    /// Windows replayed inline on the coordinator after a worker fault
    /// returned the job intact.
    pub replayed_windows: u64,
}

/// The parallel engine. Construct with the same actors, lookahead and
/// injections as a [`SequentialEngine`](crate::SequentialEngine) and
/// every digest matches, for any `workers >= 1`.
pub struct ParallelEngine<A: Actor> {
    shards: Vec<Shard<A>>,
    workers: usize,
    injected_seq: u64,
    now: SimTime,
}

impl<A: Actor> ParallelEngine<A> {
    /// Builds an engine over `actors`, sharded across `workers`
    /// threads (clamped to `1..=actors.len()` shards).
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero: a conservative window of width
    /// zero can never make progress.
    pub fn new(actors: Vec<A>, lookahead: SimDuration, workers: usize) -> ParallelEngine<A> {
        assert!(
            !lookahead.is_zero(),
            "conservative PDES requires a positive lookahead"
        );
        let n = actors.len().max(1);
        let workers = workers.clamp(1, n);
        let shard_count = workers;
        let mut shards = Vec::with_capacity(shard_count);
        let mut actors = actors.into_iter();
        let mut base = 0u32;
        for s in 0..shard_count {
            // Balanced contiguous chunks: first (n % shards) get one extra.
            let len = n / shard_count + usize::from(s < n % shard_count);
            let slots: Vec<Slot<A>> = actors
                .by_ref()
                .take(len)
                .map(|actor| Slot {
                    actor,
                    order: Digest64::new(),
                    processed: 0,
                    out_seq: 0,
                })
                .collect();
            let taken = slots.len() as u32;
            shards.push(Shard {
                base,
                slots,
                heap: BinaryHeap::new(),
                lookahead,
                now: SimTime::ZERO,
            });
            base += taken;
        }
        ParallelEngine {
            shards,
            workers,
            injected_seq: 0,
            now: SimTime::ZERO,
        }
    }

    fn shard_of(&self, dst: u32) -> usize {
        self.shards
            .partition_point(|s| s.base + s.slots.len() as u32 <= dst)
    }

    /// Injects an external stimulus for actor `dst` at time `at`.
    /// Injection order defines the tiebreak among equal timestamps,
    /// exactly as on the sequential engine.
    pub fn inject(&mut self, dst: u32, at: SimTime, msg: A::Msg) {
        let key = EventKey {
            at,
            src: INJECTED_SRC,
            seq: self.injected_seq,
        };
        self.injected_seq += 1;
        let s = self.shard_of(dst);
        self.shards[s].heap.push(Reverse(Item { key, dst, msg }));
    }

    /// Runs every event with `at <= until` across the worker pool;
    /// returns events processed by this call.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        self.run_until_supervised(until, pool::PoolPolicy::default())
            .events
    }

    /// Like [`run_until`](ParallelEngine::run_until), but under a
    /// supervision [`PoolPolicy`](pool::PoolPolicy): worker panics and
    /// stalls are caught, the faulty worker is quarantined and (budget
    /// permitting) respawned, and any window whose job came back intact
    /// is **replayed inline on the coordinator** — shard event order is
    /// fully determined by the heap keys, so the replay is bit-identical
    /// to what the worker would have produced and every digest matches
    /// the unfaulted run.
    ///
    /// # Panics
    ///
    /// A worker panic *mid-window* (a real bug in actor code, as
    /// opposed to an injected pre-window fault) loses the shard; the
    /// engine re-raises it with full [`WorkerFault`](pool::WorkerFault)
    /// context rather than guessing at recovery.
    pub fn run_until_supervised(
        &mut self,
        until: SimTime,
        policy: pool::PoolPolicy,
    ) -> SupervisorReport {
        let before: u64 = self.events_processed();
        let until_excl = SimTime::from_picos(until.as_picos().saturating_add(1));
        let lookahead = self.shards[0].lookahead;
        let shards = std::mem::take(&mut self.shards);
        let (shards, health, replayed_windows) = pool::scoped_supervised(
            self.workers,
            policy,
            |_, (mut shard, wend): (Shard<A>, SimTime)| {
                let outbound = shard.run_window(wend);
                (shard, outbound)
            },
            |run, health| {
                let mut shards = shards;
                let mut replayed = 0u64;
                while let Some(t0) = shards.iter().filter_map(Shard::head_at).min() {
                    if t0 > until {
                        break;
                    }
                    let wend = (t0 + lookahead).min(until_excl);
                    let jobs: Vec<(Shard<A>, SimTime)> =
                        shards.drain(..).map(|s| (s, wend)).collect();
                    let mut outbound = Vec::new();
                    for outcome in run(jobs) {
                        match outcome {
                            pool::JobOutcome::Done((shard, mut sends)) => {
                                shards.push(shard);
                                outbound.append(&mut sends);
                            }
                            pool::JobOutcome::Returned((mut shard, wend), _fault) => {
                                // The job never reached actor code, so
                                // the shard is intact: replaying the
                                // window here IS the sequential oracle.
                                let mut sends = shard.run_window(wend);
                                replayed += 1;
                                shards.push(shard);
                                outbound.append(&mut sends);
                            }
                            pool::JobOutcome::Lost(fault) => {
                                panic!("pdes window unrecoverable: {fault}");
                            }
                        }
                    }
                    for item in outbound {
                        let s = shards
                            .partition_point(|sh| sh.base + sh.slots.len() as u32 <= item.dst);
                        shards[s].heap.push(Reverse(item));
                    }
                }
                (shards, health.snapshot(), replayed)
            },
        );
        self.shards = shards;
        self.now = self
            .shards
            .iter()
            .map(|s| s.now)
            .max()
            .unwrap_or(SimTime::ZERO);
        SupervisorReport {
            events: self.events_processed() - before,
            health,
            replayed_windows,
        }
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.slots.iter())
            .map(|s| s.processed)
            .sum()
    }

    /// The current simulated time (latest event run on any shard).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Digest of the processed-event key streams, per actor, combined
    /// in actor order — compare against the sequential oracle.
    pub fn order_digest(&self) -> u64 {
        let per_actor: Vec<Digest64> = self
            .shards
            .iter()
            .flat_map(|s| s.slots.iter())
            .map(|s| s.order)
            .collect();
        combine(&per_actor)
    }

    /// Digest of every actor's final observable state, in actor order.
    pub fn state_digest(&self) -> u64 {
        let actors: Vec<&A> = self
            .shards
            .iter()
            .flat_map(|s| s.slots.iter())
            .map(|s| &s.actor)
            .collect();
        let mut d = Digest64::new();
        for a in actors {
            let mut s = Digest64::new();
            a.state_digest(&mut s);
            d.absorb(&s);
        }
        d.value()
    }

    /// Runs actors to completion through `f` on the borrowed slice —
    /// not exposed; kept for future in-place inspection.
    #[doc(hidden)]
    pub fn for_each_actor(&self, mut f: impl FnMut(u32, &A)) {
        for s in &self.shards {
            for (i, slot) in s.slots.iter().enumerate() {
                f(s.base + i as u32, &slot.actor);
            }
        }
    }
}
