//! The actor abstraction both engines execute: independent state
//! machines exchanging timestamped messages, with a declared minimum
//! cross-actor latency (the *lookahead*) that makes conservative
//! parallel windows safe.

use sim_core::{SimDuration, SimTime};

use crate::digest::Digest64;

/// The source slot reserved for events injected from outside any actor
/// (initial stimuli). Real actors use their index; `u32::MAX` can never
/// collide because actor counts are far below it.
pub const INJECTED_SRC: u32 = u32::MAX;

/// The deterministic merge key: events are globally ordered by
/// timestamp, then by source actor, then by per-source sequence number.
/// Identical on both engines, so the total order — and every digest
/// derived from it — is independent of worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Delivery timestamp.
    pub at: SimTime,
    /// Source actor index ([`INJECTED_SRC`] for injected events).
    pub src: u32,
    /// Per-source emission sequence number.
    pub seq: u64,
}

impl EventKey {
    /// Folds the key into an order digest.
    #[inline]
    pub fn fold_into(&self, d: &mut Digest64) {
        d.fold(self.at.as_picos());
        d.fold(u64::from(self.src));
        d.fold(self.seq);
    }
}

/// One simulated entity (a host, a NIC, a switch port group). Actors
/// only interact through messages; the engine owns delivery order.
pub trait Actor: Send {
    /// The message type exchanged between actors of this simulation.
    type Msg: Send;

    /// Handles one message at simulated time `now`. New messages go
    /// through `out`; cross-actor sends must respect the lookahead.
    fn on_event(&mut self, now: SimTime, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// Folds the actor's observable final state into `d`. Used by the
    /// differential suite to compare end states across engines.
    fn state_digest(&self, d: &mut Digest64);
}

/// The send surface handed to [`Actor::on_event`]. Enforces the
/// conservative-synchronization contract at the source: a cross-actor
/// message may never arrive sooner than `lookahead` after emission,
/// which is exactly what lets the parallel engine process a whole
/// window `[W, W + lookahead)` without inter-worker communication.
pub struct Outbox<M> {
    now: SimTime,
    src: u32,
    lookahead: SimDuration,
    pub(crate) sends: Vec<(u32, SimTime, M)>,
}

impl<M> Outbox<M> {
    pub(crate) fn new(now: SimTime, src: u32, lookahead: SimDuration) -> Outbox<M> {
        Outbox {
            now,
            src,
            lookahead,
            sends: Vec::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The index of the actor being executed.
    pub fn self_idx(&self) -> u32 {
        self.src
    }

    /// Sends `msg` to actor `dst`, arriving `delay` from now.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is another actor and `delay` is below the
    /// engine lookahead — such a send would make conservative windows
    /// unsound, so it is rejected loudly rather than silently racing.
    pub fn send(&mut self, dst: u32, delay: SimDuration, msg: M) {
        if dst != self.src {
            assert!(
                delay >= self.lookahead,
                "cross-actor send {} -> {} with delay {}ps below lookahead {}ps",
                self.src,
                dst,
                delay.as_picos(),
                self.lookahead.as_picos()
            );
        }
        self.sends.push((dst, self.now + delay, msg));
    }
}
