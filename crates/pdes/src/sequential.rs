//! The sequential oracle: one global heap ordered by [`EventKey`].
//!
//! This engine defines the canonical total order. The parallel engine
//! must reproduce its order digest, state digest and processed count
//! exactly, for every worker count — that is what the differential
//! suite in `tests/differential.rs` pins.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sim_core::{SimDuration, SimTime};

use crate::actor::{Actor, EventKey, Outbox, INJECTED_SRC};
use crate::digest::Digest64;

struct Item<M> {
    key: EventKey,
    dst: u32,
    msg: M,
}

impl<M> PartialEq for Item<M> {
    fn eq(&self, other: &Item<M>) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Item<M> {}
impl<M> PartialOrd for Item<M> {
    fn partial_cmp(&self, other: &Item<M>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Item<M> {
    fn cmp(&self, other: &Item<M>) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The single-threaded reference engine.
pub struct SequentialEngine<A: Actor> {
    actors: Vec<A>,
    heap: BinaryHeap<Reverse<Item<A::Msg>>>,
    lookahead: SimDuration,
    /// Per-actor emission counters (index = src), plus one injected
    /// counter, so keys are dense and engine-independent.
    out_seq: Vec<u64>,
    injected_seq: u64,
    order: Vec<Digest64>,
    processed: u64,
    now: SimTime,
}

impl<A: Actor> SequentialEngine<A> {
    /// Builds an engine over `actors` with the given lookahead (only
    /// used to enforce the [`Outbox`] send contract — the sequential
    /// engine itself needs no lookahead to be correct).
    pub fn new(actors: Vec<A>, lookahead: SimDuration) -> SequentialEngine<A> {
        let n = actors.len();
        SequentialEngine {
            actors,
            heap: BinaryHeap::new(),
            lookahead,
            out_seq: vec![0; n],
            injected_seq: 0,
            order: vec![Digest64::new(); n],
            processed: 0,
            now: SimTime::ZERO,
        }
    }

    /// Injects an external stimulus for actor `dst` at absolute time
    /// `at` (source slot [`INJECTED_SRC`]).
    pub fn inject(&mut self, dst: u32, at: SimTime, msg: A::Msg) {
        let key = EventKey {
            at,
            src: INJECTED_SRC,
            seq: self.injected_seq,
        };
        self.injected_seq += 1;
        self.heap.push(Reverse(Item { key, dst, msg }));
    }

    /// Runs every event with `at <= until`; returns events processed
    /// by this call.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let before = self.processed;
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.key.at > until {
                break;
            }
            let Reverse(item) = self.heap.pop().expect("peeked");
            self.now = item.key.at;
            self.dispatch(item);
        }
        self.processed - before
    }

    fn dispatch(&mut self, item: Item<A::Msg>) {
        let dst = item.dst as usize;
        item.key.fold_into(&mut self.order[dst]);
        self.processed += 1;
        let mut out = Outbox::new(item.key.at, item.dst, self.lookahead);
        self.actors[dst].on_event(item.key.at, item.msg, &mut out);
        for (to, at, msg) in out.sends {
            let key = EventKey {
                at,
                src: item.dst,
                seq: self.out_seq[dst],
            };
            self.out_seq[dst] += 1;
            debug_assert!(at >= item.key.at, "send into the past");
            self.heap.push(Reverse(Item { key, dst: to, msg }));
        }
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The current simulated time (timestamp of the last event run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Digest of the processed-event key stream, folded per destination
    /// actor then combined in actor order — identical across engines
    /// and worker counts when execution is equivalent.
    pub fn order_digest(&self) -> u64 {
        combine(&self.order)
    }

    /// Digest of every actor's final observable state, in actor order.
    pub fn state_digest(&self) -> u64 {
        state_digest_of(&self.actors)
    }

    /// Read access to the actors (for test assertions).
    pub fn actors(&self) -> &[A] {
        &self.actors
    }
}

pub(crate) fn combine(per_actor: &[Digest64]) -> u64 {
    let mut d = Digest64::new();
    for a in per_actor {
        d.absorb(a);
    }
    d.value()
}

pub(crate) fn state_digest_of<A: Actor>(actors: &[A]) -> u64 {
    let mut d = Digest64::new();
    for a in actors {
        let mut s = Digest64::new();
        a.state_digest(&mut s);
        d.absorb(&s);
    }
    d.value()
}
