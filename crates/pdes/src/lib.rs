//! # pdes — conservative-sync parallel discrete-event engine
//!
//! A worker/synchronizer split for actor-style simulations, with the
//! single-threaded engine kept as the *differential oracle*:
//!
//! - [`Actor`] — one simulated entity (a host, a NIC); communicates
//!   only through timestamped messages.
//! - [`EventKey`] — the deterministic merge order: `(timestamp, source
//!   actor, per-source sequence)`. Total, engine-independent, and the
//!   basis of every digest.
//! - [`SequentialEngine`] — one global heap; defines the canonical
//!   order.
//! - [`ParallelEngine`] — conservative synchronization: with lookahead
//!   `L` (the minimum cross-actor latency, e.g. PCIe + fiber), all
//!   events in `[t0, t0 + L)` are independent across actors and run in
//!   parallel on sharded workers; self-sends are inlined, cross-sends
//!   are merged between windows in key order.
//! - [`pool::scoped`] — the safe ownership ping-pong worker pool both
//!   this crate and `rdma-verbs::Simulation::run_until_workers` use.
//! - [`Digest64`] — the order/state fingerprint the differential suite
//!   compares across engines and worker counts.
//!
//! The crate also hosts the process-wide *ambient worker count*
//! ([`set_ambient_workers`] / [`ambient_workers`]) that the harness
//! `--workers N` flag sets and the cluster scenarios read — threading
//! the knob without widening every `Experiment::run` signature (and
//! keeping it out of cache keys by construction, exactly like
//! `--threads`).
//!
//! ```
//! use pdes::{Actor, Digest64, Outbox, ParallelEngine, SequentialEngine};
//! use sim_core::{SimDuration, SimTime};
//!
//! struct Counter(u64);
//! impl Actor for Counter {
//!     type Msg = u64;
//!     fn on_event(&mut self, _now: SimTime, msg: u64, _out: &mut Outbox<u64>) {
//!         self.0 = self.0.wrapping_mul(31).wrapping_add(msg);
//!     }
//!     fn state_digest(&self, d: &mut Digest64) {
//!         d.fold(self.0);
//!     }
//! }
//!
//! let lookahead = SimDuration::from_nanos(100);
//! let mut seq = SequentialEngine::new(vec![Counter(0), Counter(0)], lookahead);
//! let mut par = ParallelEngine::new(vec![Counter(0), Counter(0)], lookahead, 2);
//! seq.inject(0, SimTime::from_nanos(5), 7);
//! par.inject(0, SimTime::from_nanos(5), 7);
//! seq.run_until(SimTime::from_micros(1));
//! par.run_until(SimTime::from_micros(1));
//! assert_eq!(seq.order_digest(), par.order_digest());
//! assert_eq!(seq.state_digest(), par.state_digest());
//! ```

#![warn(missing_docs)]

mod actor;
mod digest;
mod parallel;
pub mod pool;
mod sequential;

pub use actor::{Actor, EventKey, Outbox, INJECTED_SRC};
pub use digest::Digest64;
pub use parallel::{ParallelEngine, SupervisorReport};
pub use pool::{
    ExecFaultHook, FaultCause, HealthSnapshot, InjectedExecFault, JobOutcome, PoolHealth,
    PoolPolicy, WorkerFault,
};
pub use sequential::SequentialEngine;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

static AMBIENT_WORKERS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide worker count scenario code should use for
/// parallel simulation runs. The harness calls this from `--workers N`
/// before dispatching experiment cells; `1` (the default) means the
/// plain sequential engine.
pub fn set_ambient_workers(n: usize) {
    AMBIENT_WORKERS.store(n.max(1), Ordering::Relaxed);
}

/// The worker count last set by [`set_ambient_workers`] (default 1).
pub fn ambient_workers() -> usize {
    AMBIENT_WORKERS.load(Ordering::Relaxed)
}

static AMBIENT_SUPERVISION: Mutex<Option<PoolPolicy>> = Mutex::new(None);

/// Installs (or clears, with `None`) the process-wide supervision
/// policy that parallel runs pick up, the same way [`ambient_workers`]
/// threads `--workers`. The harness sets this from `--cell-timeout` /
/// exec-chaos flags before dispatching cells; `None` (the default)
/// means unsupervised pools with default policy.
pub fn set_ambient_supervision(policy: Option<PoolPolicy>) {
    *AMBIENT_SUPERVISION
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = policy;
}

/// The supervision policy last installed by [`set_ambient_supervision`].
pub fn ambient_supervision() -> Option<PoolPolicy> {
    AMBIENT_SUPERVISION
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}
