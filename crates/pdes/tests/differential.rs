//! Differential suite: the parallel engine must reproduce the
//! sequential oracle bit-for-bit — order digest, state digest, event
//! count — for randomized actor graphs, workloads and worker counts.

use pdes::{Actor, Digest64, Outbox, ParallelEngine, SequentialEngine};
use proptest::prelude::*;
use sim_core::{derive_seed, SimDuration, SimRng, SimTime};

/// A little stateful relay: on each message it mixes the payload into
/// its state and forwards derived messages to pseudo-random peers with
/// delays >= lookahead, plus occasional self-messages below lookahead
/// (exercising the inline path).
struct Relay {
    idx: u32,
    peers: u32,
    state: u64,
    rng: SimRng,
    lookahead: SimDuration,
    /// Remaining forwards this actor may emit (bounds the cascade).
    budget: u32,
}

impl Actor for Relay {
    type Msg = u64;

    fn on_event(&mut self, _now: SimTime, msg: u64, out: &mut Outbox<u64>) {
        self.state = self
            .state
            .rotate_left(7)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(msg);
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        // Fan out 0..=2 cross-actor sends and maybe one self-send.
        let fan = self.rng.next_u64() % 3;
        for _ in 0..fan {
            let dst = (self.rng.next_u64() % u64::from(self.peers)) as u32;
            let extra = self.rng.next_u64() % 2_000_000; // up to 2 us
            let delay = self.lookahead + SimDuration::from_picos(extra);
            if dst != self.idx {
                out.send(dst, delay, self.state ^ u64::from(dst));
            } else {
                out.send(dst, delay, self.state);
            }
        }
        if self.rng.chance(0.4) {
            // Self-sends may violate the lookahead freely.
            let delay = SimDuration::from_picos(self.rng.next_u64() % 500_000);
            out.send(self.idx, delay, self.state.wrapping_add(1));
        }
    }

    fn state_digest(&self, d: &mut Digest64) {
        d.fold(self.state);
        d.fold(u64::from(self.budget));
    }
}

fn build(seed: u64, actors: u32, lookahead: SimDuration, budget: u32) -> Vec<Relay> {
    (0..actors)
        .map(|idx| Relay {
            idx,
            peers: actors,
            state: derive_seed(seed, "relay-state") ^ u64::from(idx),
            rng: SimRng::derive(seed, &format!("relay-{idx}")),
            lookahead,
            budget,
        })
        .collect()
}

fn inject_all(seed: u64, actors: u32, stimuli: u32, inject: &mut dyn FnMut(u32, SimTime, u64)) {
    let mut rng = SimRng::derive(seed, "inject");
    for i in 0..stimuli {
        let dst = (rng.next_u64() % u64::from(actors)) as u32;
        let at = SimTime::from_picos(rng.next_u64() % 5_000_000); // first 5 us
        inject(dst, at, u64::from(i) << 32 | u64::from(dst));
    }
}

/// Runs one configuration on the oracle and on the parallel engine at
/// `workers`, asserting every observable is identical.
fn assert_equivalent(seed: u64, actors: u32, stimuli: u32, budget: u32, workers: usize) {
    let lookahead = SimDuration::from_nanos(700); // PCIe + fiber scale
    let horizon = SimTime::from_micros(200);

    let mut oracle = SequentialEngine::new(build(seed, actors, lookahead, budget), lookahead);
    inject_all(seed, actors, stimuli, &mut |d, at, m| {
        oracle.inject(d, at, m)
    });
    let oracle_n = oracle.run_until(horizon);

    let mut par = ParallelEngine::new(build(seed, actors, lookahead, budget), lookahead, workers);
    inject_all(seed, actors, stimuli, &mut |d, at, m| par.inject(d, at, m));
    let par_n = par.run_until(horizon);

    assert_eq!(oracle_n, par_n, "event counts diverged (workers={workers})");
    assert_eq!(
        oracle.order_digest(),
        par.order_digest(),
        "order digests diverged (workers={workers})"
    );
    assert_eq!(
        oracle.state_digest(),
        par.state_digest(),
        "state digests diverged (workers={workers})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_matches_oracle(
        seed in any::<u64>(),
        actors in 1u32..24,
        stimuli in 1u32..32,
        budget in 0u32..64,
    ) {
        for workers in [2usize, 4, 8] {
            assert_equivalent(seed, actors, stimuli, budget, workers);
        }
    }
}

#[test]
fn single_actor_single_worker() {
    assert_equivalent(7, 1, 4, 16, 1);
}

#[test]
fn dense_same_timestamp_tiebreaks() {
    // Many stimuli at identical timestamps: the (src, seq) tiebreak is
    // the only thing separating them.
    let lookahead = SimDuration::from_nanos(700);
    let mut oracle = SequentialEngine::new(build(3, 6, lookahead, 8), lookahead);
    let mut par = ParallelEngine::new(build(3, 6, lookahead, 8), lookahead, 4);
    for i in 0..24u64 {
        let dst = (i % 6) as u32;
        oracle.inject(dst, SimTime::from_nanos(10), i);
        par.inject(dst, SimTime::from_nanos(10), i);
    }
    let a = oracle.run_until(SimTime::from_micros(100));
    let b = par.run_until(SimTime::from_micros(100));
    assert_eq!(a, b);
    assert_eq!(oracle.order_digest(), par.order_digest());
    assert_eq!(oracle.state_digest(), par.state_digest());
}

#[test]
fn worker_count_exceeding_actors_is_clamped() {
    assert_equivalent(11, 3, 8, 12, 64);
}

#[test]
#[should_panic(expected = "below lookahead")]
fn cross_actor_send_below_lookahead_panics() {
    struct Bad;
    impl Actor for Bad {
        type Msg = ();
        fn on_event(&mut self, _now: SimTime, _msg: (), out: &mut Outbox<()>) {
            out.send(1, SimDuration::from_nanos(1), ());
        }
        fn state_digest(&self, _d: &mut Digest64) {}
    }
    let mut eng = SequentialEngine::new(vec![Bad, Bad], SimDuration::from_nanos(700));
    eng.inject(0, SimTime::ZERO, ());
    eng.run_until(SimTime::from_micros(1));
}
