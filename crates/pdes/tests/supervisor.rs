//! Supervisor determinism suite: `run_until_supervised` must reproduce
//! the sequential oracle bit-for-bit — order digest, state digest,
//! event count — under *any* injected worker-fault schedule (panics,
//! stalls, slow starts) at every worker count. The healing machinery
//! (quarantine, respawn, inline window replay) is allowed to change
//! wall-clock behavior only, never results.

use pdes::{
    Actor, Digest64, InjectedExecFault, Outbox, ParallelEngine, PoolPolicy, SequentialEngine,
};
use proptest::prelude::*;
use sim_core::{derive_seed, SimDuration, SimRng, SimTime};
use std::sync::Arc;
use std::time::Duration;

/// Same relay workload as the differential suite: stateful actors
/// forwarding derived messages to pseudo-random peers.
struct Relay {
    idx: u32,
    peers: u32,
    state: u64,
    rng: SimRng,
    lookahead: SimDuration,
    budget: u32,
}

impl Actor for Relay {
    type Msg = u64;

    fn on_event(&mut self, _now: SimTime, msg: u64, out: &mut Outbox<u64>) {
        self.state = self
            .state
            .rotate_left(7)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(msg);
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let fan = self.rng.next_u64() % 3;
        for _ in 0..fan {
            let dst = (self.rng.next_u64() % u64::from(self.peers)) as u32;
            let extra = self.rng.next_u64() % 2_000_000;
            let delay = self.lookahead + SimDuration::from_picos(extra);
            out.send(dst, delay, self.state ^ u64::from(dst));
        }
        if self.rng.chance(0.4) {
            let delay = SimDuration::from_picos(self.rng.next_u64() % 500_000);
            out.send(self.idx, delay, self.state.wrapping_add(1));
        }
    }

    fn state_digest(&self, d: &mut Digest64) {
        d.fold(self.state);
        d.fold(u64::from(self.budget));
    }
}

fn build(seed: u64, actors: u32, lookahead: SimDuration, budget: u32) -> Vec<Relay> {
    (0..actors)
        .map(|idx| Relay {
            idx,
            peers: actors,
            state: derive_seed(seed, "relay-state") ^ u64::from(idx),
            rng: SimRng::derive(seed, &format!("relay-{idx}")),
            lookahead,
            budget,
        })
        .collect()
}

fn inject_all(seed: u64, actors: u32, stimuli: u32, inject: &mut dyn FnMut(u32, SimTime, u64)) {
    let mut rng = SimRng::derive(seed, "inject");
    for i in 0..stimuli {
        let dst = (rng.next_u64() % u64::from(actors)) as u32;
        let at = SimTime::from_picos(rng.next_u64() % 5_000_000);
        inject(dst, at, u64::from(i) << 32 | u64::from(dst));
    }
}

/// A seed-derived fault schedule: per `(worker, round)` the hook draws
/// from a stateless derived stream, so the schedule is a pure function
/// of its seed — identical across runs and independent of dispatch
/// timing.
fn fault_hook(seed: u64, rate_pct: u64) -> pdes::ExecFaultHook {
    Arc::new(move |worker, round| {
        let draw = derive_seed(seed, &format!("fault/{worker}/{round}"));
        if draw % 100 >= rate_pct {
            return None;
        }
        // Panic-heavy mix: panics are wall-clock free, while every
        // stall costs its sleep, so the suite stays fast even under a
        // dense schedule.
        Some(match draw / 100 % 4 {
            0 | 1 => InjectedExecFault::Panic,
            2 => InjectedExecFault::Stall(Duration::from_millis(5)),
            _ => InjectedExecFault::SlowStart(Duration::from_micros(300)),
        })
    })
}

fn policy(seed: u64, rate_pct: u64) -> PoolPolicy {
    PoolPolicy {
        // Short enough that every injected 5 ms stall trips the
        // watchdog; long enough that healthy sub-millisecond windows
        // never do.
        stall_timeout: Some(Duration::from_millis(2)),
        max_respawns: 64,
        fault_hook: Some(fault_hook(seed, rate_pct)),
    }
}

/// Oracle observables for one configuration.
fn oracle(seed: u64, actors: u32, stimuli: u32, budget: u32) -> (u64, u64, u64) {
    let lookahead = SimDuration::from_nanos(700);
    let mut seq = SequentialEngine::new(build(seed, actors, lookahead, budget), lookahead);
    inject_all(seed, actors, stimuli, &mut |d, at, m| seq.inject(d, at, m));
    let n = seq.run_until(SimTime::from_micros(200));
    (n, seq.order_digest(), seq.state_digest())
}

fn assert_supervised_equivalent(seed: u64, actors: u32, stimuli: u32, budget: u32, rate_pct: u64) {
    let lookahead = SimDuration::from_nanos(700);
    let (oracle_n, oracle_order, oracle_state) = oracle(seed, actors, stimuli, budget);
    for workers in [2usize, 4, 8] {
        let mut par =
            ParallelEngine::new(build(seed, actors, lookahead, budget), lookahead, workers);
        inject_all(seed, actors, stimuli, &mut |d, at, m| par.inject(d, at, m));
        let report = par.run_until_supervised(SimTime::from_micros(200), policy(seed, rate_pct));
        assert_eq!(
            report.events, oracle_n,
            "event counts diverged (workers={workers})"
        );
        assert_eq!(
            par.order_digest(),
            oracle_order,
            "order digests diverged under faults (workers={workers})"
        );
        assert_eq!(
            par.state_digest(),
            oracle_state,
            "state digests diverged under faults (workers={workers})"
        );
        // Every panic-returned window must have been replayed, and the
        // ledger must agree with the pool's own panic counter.
        assert_eq!(
            report.replayed_windows, report.health.panics,
            "replay ledger out of step with panic count (workers={workers})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random workloads under a ~25% per-(worker, round) fault rate:
    /// digests must match the fault-free sequential oracle exactly.
    #[test]
    fn faulted_supervised_runs_match_oracle(
        seed in any::<u64>(),
        actors in 2u32..16,
        stimuli in 4u32..24,
        budget in 4u32..48,
    ) {
        assert_supervised_equivalent(seed, actors, stimuli, budget, 25);
    }
}

/// A guaranteed-dense panic schedule: every worker faults on every
/// third round. The run must both heal (digests match) and *record*
/// the healing (non-zero panic and replay counters).
#[test]
fn dense_panic_schedule_heals_and_is_recorded() {
    let lookahead = SimDuration::from_nanos(700);
    let (oracle_n, oracle_order, oracle_state) = oracle(99, 8, 16, 32);
    let hook: pdes::ExecFaultHook =
        Arc::new(|_worker, round| (round % 3 == 1).then_some(InjectedExecFault::Panic));
    let mut par = ParallelEngine::new(build(99, 8, lookahead, 32), lookahead, 4);
    inject_all(99, 8, 16, &mut |d, at, m| par.inject(d, at, m));
    let report = par.run_until_supervised(
        SimTime::from_micros(200),
        PoolPolicy {
            stall_timeout: Some(Duration::from_millis(50)),
            max_respawns: 64,
            fault_hook: Some(hook),
        },
    );
    assert_eq!(report.events, oracle_n);
    assert_eq!(par.order_digest(), oracle_order);
    assert_eq!(par.state_digest(), oracle_state);
    assert!(report.health.panics > 0, "schedule never fired: {report:?}");
    assert_eq!(report.replayed_windows, report.health.panics);
    assert!(
        report.health.respawns > 0,
        "panicked workers were never respawned: {report:?}"
    );
}

/// Stall quarantine: a worker that goes silent past the watchdog is
/// quarantined and respawned, its late result is still folded in, and
/// the digests never notice.
#[test]
fn stalled_workers_are_quarantined_without_divergence() {
    let lookahead = SimDuration::from_nanos(700);
    let (oracle_n, oracle_order, oracle_state) = oracle(7, 6, 12, 24);
    let hook: pdes::ExecFaultHook = Arc::new(|worker, round| {
        (worker == 0 && round == 2).then_some(InjectedExecFault::Stall(Duration::from_millis(40)))
    });
    let mut par = ParallelEngine::new(build(7, 6, lookahead, 24), lookahead, 4);
    inject_all(7, 6, 12, &mut |d, at, m| par.inject(d, at, m));
    let report = par.run_until_supervised(
        SimTime::from_micros(200),
        PoolPolicy {
            stall_timeout: Some(Duration::from_millis(5)),
            max_respawns: 8,
            fault_hook: Some(hook),
        },
    );
    assert_eq!(report.events, oracle_n);
    assert_eq!(par.order_digest(), oracle_order);
    assert_eq!(par.state_digest(), oracle_state);
}

/// Respawn-budget exhaustion degrades to inline coordinator execution —
/// slower, never wrong.
#[test]
fn respawn_exhaustion_falls_back_inline() {
    let lookahead = SimDuration::from_nanos(700);
    let (oracle_n, oracle_order, oracle_state) = oracle(13, 5, 10, 20);
    // Every round, every worker: the budget drains almost immediately.
    let hook: pdes::ExecFaultHook = Arc::new(|_w, _round| Some(InjectedExecFault::Panic));
    let mut par = ParallelEngine::new(build(13, 5, lookahead, 20), lookahead, 3);
    inject_all(13, 5, 10, &mut |d, at, m| par.inject(d, at, m));
    let report = par.run_until_supervised(
        SimTime::from_micros(200),
        PoolPolicy {
            stall_timeout: Some(Duration::from_millis(50)),
            max_respawns: 2,
            fault_hook: Some(hook),
        },
    );
    assert_eq!(report.events, oracle_n);
    assert_eq!(par.order_digest(), oracle_order);
    assert_eq!(par.state_digest(), oracle_state);
    assert!(
        report.health.quarantined > 0,
        "no slot ever exhausted its budget: {report:?}"
    );
}

/// Seed-determinism of the schedule itself: the same hook seed produces
/// the same health counters run over run (the schedule is a pure
/// function of `(seed, worker, round)`, not of thread timing).
#[test]
fn fault_schedule_is_seed_deterministic() {
    let lookahead = SimDuration::from_nanos(700);
    let run = || {
        let mut par = ParallelEngine::new(build(21, 6, lookahead, 24), lookahead, 4);
        inject_all(21, 6, 12, &mut |d, at, m| par.inject(d, at, m));
        let report = par.run_until_supervised(
            SimTime::from_micros(200),
            PoolPolicy {
                // No stall injection and a generous watchdog: the only
                // nondeterministic counter source (wall-clock timeouts)
                // is out of the picture.
                stall_timeout: Some(Duration::from_secs(5)),
                max_respawns: 64,
                fault_hook: Some(Arc::new(|w, round| {
                    (round % 4 == 1 && w % 2 == 0).then_some(InjectedExecFault::Panic)
                })),
            },
        );
        (par.order_digest(), par.state_digest(), report.health.panics)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same schedule, different outcome");
}
