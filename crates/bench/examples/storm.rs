//! Standalone nic_storm driver for profiling: the same workload as the
//! `eventcore` bench's storm, run in a flat loop so `gprofng`/`perf`
//! samples attribute to the simulator instead of criterion plumbing.
//!
//! Doubles as the CI nic_storm smoke: it prints the run's event-order
//! digest and enforces the packet-arena ledger (zero clones, zero
//! leaks) on every iteration, so `ci.sh` can diff the digest across
//! queue backends without a criterion run.
//!
//! Usage: `cargo run --release -p ragnar-bench --example storm [iters] [calendar|reference] [--profile]`
//!
//! With `--profile`, the engine phase profiler is armed for the whole
//! run and a per-phase wall-clock breakdown is printed to stderr at the
//! end — the digest line is unchanged, so CI can assert profiler
//! bit-invariance by diffing the two modes.

use ragnar_telemetry::profile;
use rdma_verbs::{
    AccessFlags, ConnectOptions, DeviceProfile, QueueBackend, Simulation, WorkRequest,
};
use sim_core::SimTime;
use std::hint::black_box;

fn storm(backend: QueueBackend) -> (u64, u64) {
    let mut sim = Simulation::with_backend(1, backend);
    let requester = sim.add_host(DeviceProfile::connectx5());
    let responder = sim.add_host(DeviceProfile::connectx5());
    let pd_r = sim.alloc_pd(requester);
    let pd_s = sim.alloc_pd(responder);
    let mr = sim.register_mr(responder, pd_s, 1 << 21, AccessFlags::remote_all());
    let qps: Vec<_> = (0..4)
        .map(|_| {
            sim.connect(
                requester,
                pd_r,
                responder,
                pd_s,
                ConnectOptions {
                    max_send_queue: 64,
                    ..ConnectOptions::default()
                },
            )
            .0
        })
        .collect();
    let mut wr_id = 0u64;
    for &qp in &qps {
        for _ in 0..64 {
            wr_id += 1;
            sim.post_send(
                qp,
                WorkRequest::read(wr_id, 0x1000, mr.addr(0), mr.key, 256),
            )
            .expect("post");
        }
    }
    let mut done = 0u64;
    while sim.now() < SimTime::from_micros(300) {
        sim.run_until(SimTime::from_micros(300));
        let completions = sim.take_completions();
        if completions.is_empty() {
            break;
        }
        for _ in completions {
            done += 1;
            wr_id += 1;
            let qp = qps[(done % qps.len() as u64) as usize];
            let _ = sim.post_send(
                qp,
                WorkRequest::read(wr_id, 0x1000, mr.addr(0), mr.key, 256),
            );
        }
    }
    // The storm stops mid-flight at the horizon, so live() > 0 is
    // expected (in-flight packets, not leaks — the draining ledger
    // tests live in rdma-verbs/tests/packet_arena.rs). Zero clones
    // must hold regardless: a fault-free run never copies a packet.
    let stats = sim.packet_arena_stats();
    assert_eq!(stats.dup_clones, 0, "fault-free storm cloned a packet");
    (done, sim.order_digest())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: u32 = args.first().and_then(|a| a.parse().ok()).unwrap_or(50);
    let backend = if args.iter().any(|a| a == "reference") {
        QueueBackend::Reference
    } else {
        QueueBackend::Calendar
    };
    let profiled = args.iter().any(|a| a == "--profile");
    if profiled {
        profile::reset();
        profile::set_enabled(true);
    }
    let start = std::time::Instant::now();
    let mut total = 0u64;
    let mut digest = 0u64;
    for _ in 0..iters {
        let (done, d) = black_box(storm(backend));
        total += done;
        digest = d;
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_secs_f64() * 1e3 / f64::from(iters);
    println!("{iters} iters, {total} completions, {per_iter:.3} ms/iter, digest {digest:016x}");
    if profiled {
        profile::set_enabled(false);
        let snap = profile::snapshot();
        for (phase, t) in &snap.phases {
            if t.calls > 0 {
                ragnar_telemetry::progress(format!(
                    "phase {:>14}: {:>10.3} ms over {} calls",
                    phase.name(),
                    t.ns as f64 / 1e6,
                    t.calls
                ));
            }
        }
    }
}
