//! One-shot wall-clock probe for the PDES noisy cell (debug aid).
use ragnar_bench::experiments::cluster::NoisyNeighbor;
use ragnar_harness::{Config, Experiment};
use std::time::Instant;

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    pdes::set_ambient_workers(workers);
    let config = Config::new()
        .with("topology", "leaf-spine:hosts=256,leaves=8,spines=4")
        .with("attacker_qps", 64u64)
        .with("pfc", false)
        .with("placement_seed", 0u64);
    let t = Instant::now();
    let artifact = NoisyNeighbor.run(&config, 0).expect("cell runs");
    eprintln!("workers={workers} elapsed={:?}", t.elapsed());
    eprintln!(
        "p99={:?}",
        artifact
            .metrics
            .get("victim_p99_ns")
            .and_then(|v| v.as_f64())
    );
}
