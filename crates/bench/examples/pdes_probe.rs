//! One-shot wall-clock probe for the PDES noisy cell (debug aid).
//!
//! Pass a PDES worker count as the first argument (default 8) and
//! `--profile` to print the engine phase breakdown.
use ragnar_bench::experiments::cluster::NoisyNeighbor;
use ragnar_harness::{Config, Experiment};
use ragnar_telemetry::profile::{self, Phase};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers: usize = args.iter().find_map(|s| s.parse().ok()).unwrap_or(8);
    let profiled = args.iter().any(|s| s == "--profile");
    if profiled {
        profile::reset();
        profile::set_enabled(true);
    }
    pdes::set_ambient_workers(workers);
    let config = Config::new()
        .with("topology", "leaf-spine:hosts=256,leaves=8,spines=4")
        .with("attacker_qps", 64u64)
        .with("pfc", false)
        .with("placement_seed", 0u64);
    let t = Instant::now();
    let artifact = NoisyNeighbor.run(&config, 0).expect("cell runs");
    ragnar_telemetry::info!("workers={workers} elapsed={:?}", t.elapsed());
    ragnar_telemetry::progress(format!("workers={workers} elapsed={:?}", t.elapsed()));
    ragnar_telemetry::progress(format!(
        "p99={:?}",
        artifact
            .metrics
            .get("victim_p99_ns")
            .and_then(|v| v.as_f64())
    ));
    if profiled {
        profile::set_enabled(false);
        let snap = profile::snapshot();
        for phase in Phase::ALL {
            let t = snap
                .phases
                .iter()
                .find(|(p, _)| *p == phase)
                .map(|(_, t)| *t)
                .unwrap_or_default();
            if t.calls > 0 {
                ragnar_telemetry::progress(format!(
                    "phase {:>14}: {:>10.3} ms over {} calls",
                    phase.name(),
                    t.ns as f64 / 1e6,
                    t.calls
                ));
            }
        }
    }
}
