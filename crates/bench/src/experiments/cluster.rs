//! Cluster-scale scenarios on the multi-hop fabric: the Noisy-Neighbor
//! exhaustion study and the Bankrupt-style remote-memory covert channel.
//!
//! Both experiments place tenants on a [`Topology`] (leaf-spine by
//! default, overridable with `--topology`) and drive them *open-loop*
//! from seed-derived arrival processes, so an overloaded fabric builds
//! queue instead of self-throttling. Tenant placement comes from a
//! `placement_seed` shared by every cell of a sweep — the attacker-QP
//! axis varies load, never geometry, so the quiet baseline is directly
//! comparable.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use ragnar_core::covert::sync::{async_decode, strip_preamble_fuzzy};
use ragnar_core::covert::{binary_entropy, count_errors, parse_bits, random_bits};
use ragnar_harness::{Artifact, Cli, Config, Experiment, RunRecord};
use ragnar_topology::traffic::{gap_for_load, OpenLoopGen, Population, TenantRole};
use rdma_verbs::{
    AccessFlags, App, ConnectOptions, Cqe, Ctx, DeviceProfile, HostId, LinkId, MrHandle,
    PfcPortConfig, QpHandle, Simulation, WorkRequest,
};
use sim_core::{percentile_sorted, SimDuration, SimTime};

use crate::{fmt_bps, fmt_pct, fmt_table};

/// Scratch local buffer used by every tenant (local addresses are not
/// validated against an MR; only the remote side is).
const LOCAL_BUF: u64 = 0x20_0000;

/// Completion-latency samples (ns) shared between apps and the driver.
/// `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>` because tenants are
/// *send apps*: the PDES engine ships them to worker threads.
type Samples = Arc<Mutex<Vec<f64>>>;

/// `(time, latency-ns)` samples for windowed covert decoding.
type TimedSamples = Arc<Mutex<Vec<(SimTime, f64)>>>;

/// One open-loop tenant: posts a fixed-shape verb on its QPs (round-
/// robin) at times dictated by its private arrival process, and records
/// completion latencies if asked. Never paces off completions — a full
/// send queue counts as an overrun and the message is lost.
struct Tenant {
    qps: Vec<QpHandle>,
    next_qp: usize,
    gen: OpenLoopGen,
    /// `Some(gap)` for constant-rate probes, `None` for Poisson.
    fixed_gap: Option<SimDuration>,
    write: bool,
    msg_len: u64,
    remote: MrHandle,
    remote_offset: u64,
    stop_at: SimTime,
    measure_from: SimTime,
    latencies: Option<Samples>,
    timed: Option<TimedSamples>,
    overruns: Arc<Mutex<u64>>,
    seq: u64,
}

impl App for Tenant {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let due = self.gen.next_at();
        ctx.set_timer(due.saturating_since(ctx.now()), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if ctx.now() >= self.stop_at {
            return;
        }
        let qp = self.qps[self.next_qp];
        self.next_qp = (self.next_qp + 1) % self.qps.len();
        self.seq += 1;
        let addr = self.remote.addr(self.remote_offset);
        let wr = if self.write {
            WorkRequest::write(self.seq, LOCAL_BUF, addr, self.remote.key, self.msg_len)
        } else {
            WorkRequest::read(self.seq, LOCAL_BUF, addr, self.remote.key, self.msg_len)
        };
        if ctx.post_send(qp, wr).is_err() {
            *self.overruns.lock().unwrap() += 1;
        }
        self.gen.advance(self.fixed_gap);
        let due = self.gen.next_at();
        ctx.set_timer(due.saturating_since(ctx.now()), 0);
    }

    fn on_cqe(&mut self, _ctx: &mut Ctx<'_>, _host: HostId, cqe: Cqe) {
        if !cqe.status.is_ok() || cqe.is_recv {
            return;
        }
        let lat_ns = cqe.latency().as_nanos_f64();
        if let Some(samples) = &self.latencies {
            if cqe.completed_at >= self.measure_from && cqe.completed_at <= self.stop_at {
                samples.lock().unwrap().push(lat_ns);
            }
        }
        if let Some(timed) = &self.timed {
            // Timestamp at the *post* time. Sender hammers and receiver
            // probes cross the same fabric, so their outbound delays
            // cancel: a probe posted during nominal bit window k samples
            // the remote row-buffer state the sender set for bit k, no
            // matter how long either flight takes.
            timed.lock().unwrap().push((cqe.posted_at, lat_ns));
        }
    }
}

/// p-th percentile of unsorted latency samples.
fn pctl(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    percentile_sorted(&sorted, q)
}

fn fmt_us(ns: f64) -> String {
    format!("{:.2} us", ns / 1000.0)
}

// ---------------------------------------------------------------------
// Noisy neighbor
// ---------------------------------------------------------------------

/// Default fabric for the noisy-neighbor sweep: the paper-scale 256-host
/// leaf-spine pod at 8:1 oversubscription.
const NOISY_TOPOLOGY: &str = "leaf-spine:hosts=256,leaves=8,spines=4";
/// Victim hosts (constant-rate probers whose p99 we report).
const VICTIMS: u32 = 4;
/// Attacker hosts the QP budget is spread across.
const ATTACKER_HOSTS: u32 = 8;
/// Bystander hosts carrying ambient load (drawn from the population in
/// ascending host order).
const ACTIVE_BYSTANDERS: usize = 16;
/// Measurement window: ignore completions before the warmup boundary.
const WARMUP: SimTime = SimTime::from_micros(50);
/// Tenants stop generating (and samples stop counting) here.
const MEASURE_END: SimTime = SimTime::from_micros(200);
/// Extra drain time so in-flight traffic settles before teardown.
const HORIZON: SimTime = SimTime::from_micros(220);

/// Noisy-neighbor exhaustion: attacker tenants sweep their aggregate QP
/// count while victims probe across the oversubscribed fabric; the
/// report shows victim p99 completion-latency degradation versus the
/// quiet baseline, with and without PFC back-pressure.
pub struct NoisyNeighbor;

impl Experiment for NoisyNeighbor {
    fn name(&self) -> &'static str {
        "noisy_neighbor"
    }

    fn description(&self) -> &'static str {
        "victim p99 latency vs. attacker QP count on a leaf-spine fabric (--full widens the sweep)"
    }

    fn version(&self) -> u32 {
        // v2: attackers incast one shared sink instead of per-host
        // partners, moving the congestion onto switch egress queues.
        2
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        let mut sweeps: Vec<(u64, bool)> = vec![(0, false), (16, false), (64, false), (64, true)];
        if cli.flag("--full") {
            sweeps.extend([(8, false), (32, false), (128, false), (128, true)]);
        }
        let configs = sweeps
            .into_iter()
            .map(|(qps, pfc)| {
                Config::new()
                    .with("topology", NOISY_TOPOLOGY)
                    .with("attacker_qps", qps)
                    .with("pfc", pfc)
                    // Shared across cells: the sweep varies load, not
                    // placement, so degradation is measured against the
                    // same geometry.
                    .with("placement_seed", cli.seed)
            })
            .collect();
        super::topology_configs(super::chaos_configs(configs, cli), cli)
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let topo = super::topology_from(config)?.ok_or("missing topology")?;
        let hosts = topo.num_hosts();
        let rate = topo.spec().rate_bps();
        let n_links = topo.links().len();
        if hosts < 2 * (VICTIMS + ATTACKER_HOSTS) {
            return Err(format!(
                "topology too small for the tenant mix: {hosts} hosts"
            ));
        }
        let attacker_qps = config.u64("attacker_qps").ok_or("missing attacker_qps")?;
        let pfc_on = config.bool("pfc").unwrap_or(false);
        let placement_seed = config
            .u64("placement_seed")
            .ok_or("missing placement_seed")?;

        let mut sim = Simulation::with_topology(seed, topo, pfc_on.then(PfcPortConfig::default));
        if let Some(plan) = super::chaos_plan(config)? {
            sim.install_fault_plan(&plan);
        }
        for _ in 0..hosts {
            sim.add_host(DeviceProfile::connectx5());
        }

        let pop = Population::sampled(hosts, VICTIMS, ATTACKER_HOSTS, placement_seed);
        let victim_lat: Samples = Arc::new(Mutex::new(Vec::new()));
        let bystander_lat: Samples = Arc::new(Mutex::new(Vec::new()));
        let overruns = Arc::new(Mutex::new(0u64));
        // Each tenant targets the host half the fabric away, so flows
        // cross leaves and contend on the oversubscribed trunks.
        let partner = |h: HostId| HostId((h.0 + hosts / 2) % hosts);

        let spawn = |sim: &mut Simulation,
                     host: HostId,
                     peer: Option<HostId>,
                     n_qps: usize,
                     gen: OpenLoopGen,
                     fixed_gap: Option<SimDuration>,
                     write: bool,
                     msg_len: u64,
                     latencies: Option<Samples>| {
            let peer = peer.unwrap_or_else(|| partner(host));
            let pd = sim.alloc_pd(host);
            let pd_peer = sim.alloc_pd(peer);
            let mr = sim.register_mr(peer, pd_peer, 2 << 20, AccessFlags::remote_all());
            let mut qps = Vec::with_capacity(n_qps);
            for _ in 0..n_qps {
                let (qp, _) = sim.connect(host, pd, peer, pd_peer, ConnectOptions::default());
                qps.push(qp);
            }
            let app = sim.add_send_app(Box::new(Tenant {
                qps: qps.clone(),
                next_qp: 0,
                gen,
                fixed_gap,
                write,
                msg_len,
                remote: mr,
                remote_offset: 0,
                stop_at: MEASURE_END,
                measure_from: WARMUP,
                latencies,
                timed: None,
                overruns: Arc::clone(&overruns),
                seq: 0,
            }));
            for qp in qps {
                sim.own_qp(app, qp);
            }
            // Declare the tenant's home host only: send-app callbacks run
            // worker-side, so the PDES engine can place each tenant in its
            // own single-host partition group and the incast fan-in no
            // longer serializes every attacker behind one group.
            sim.set_app_scope(app, &[host]);
        };

        // Victims: constant 512 B cross-fabric reads, one per microsecond.
        let probe_gap = SimDuration::from_micros(1);
        for v in pop.hosts_with(TenantRole::Victim) {
            spawn(
                &mut sim,
                v,
                None,
                1,
                OpenLoopGen::constant(SimTime::ZERO, probe_gap),
                Some(probe_gap),
                false,
                512,
                Some(Arc::clone(&victim_lat)),
            );
        }
        // Attackers: the QP budget spread over the attacker hosts, each
        // host offering 25% of line rate per QP in 2 KiB writes, all
        // aimed at ONE shared target host. The incast is the point:
        // host uplinks clip each attacker at line rate, but the flows
        // still converge on the target's leaf, so the congestion sits
        // on switch egress queues — the trunks the victims share, and
        // (with PFC on) the queues that emit XOFF back up the tree.
        if attacker_qps > 0 {
            let atk_hosts = pop.hosts_with(TenantRole::Attacker);
            // Incast onto the first attacker's cross-fabric partner that
            // holds no role of its own, so the sink's uplink traffic
            // never perturbs a victim or another attacker.
            let incast = atk_hosts
                .iter()
                .map(|&a| partner(a))
                .find(|&p| pop.role(p) == TenantRole::Bystander)
                .ok_or("no role-free incast target in the population")?;
            let base = attacker_qps as usize / atk_hosts.len();
            let rem = attacker_qps as usize % atk_hosts.len();
            for (i, a) in atk_hosts.into_iter().enumerate() {
                let n_qps = base + usize::from(i < rem);
                if n_qps == 0 {
                    continue;
                }
                let mean_gap = SimDuration::serialization(2048, rate).mul_f64(4.0 / n_qps as f64);
                spawn(
                    &mut sim,
                    a,
                    Some(incast),
                    n_qps,
                    OpenLoopGen::poisson(seed, &format!("atk-{}", a.0), SimTime::ZERO, mean_gap),
                    None,
                    true,
                    2048,
                    None,
                );
            }
        }
        // Bystanders: light ambient load from a fixed-size sample.
        let ambient_gap = gap_for_load(0.10, 1024, rate);
        for b in pop
            .hosts_with(TenantRole::Bystander)
            .into_iter()
            .take(ACTIVE_BYSTANDERS)
        {
            spawn(
                &mut sim,
                b,
                None,
                1,
                OpenLoopGen::poisson(seed, &format!("bys-{}", b.0), SimTime::ZERO, ambient_gap),
                None,
                true,
                1024,
                Some(Arc::clone(&bystander_lat)),
            );
        }

        sim.run_until_workers(HORIZON, pdes::ambient_workers());

        let victims = victim_lat.lock().unwrap();
        let bystanders = bystander_lat.lock().unwrap();
        if victims.is_empty() {
            return Err("no victim completions inside the measure window".into());
        }
        let p50 = pctl(&victims, 0.50);
        let p99 = pctl(&victims, 0.99);
        let bys_p99 = if bystanders.is_empty() {
            f64::NAN
        } else {
            pctl(&bystanders, 0.99)
        };
        let drops = sim.dropped_packets();
        let overrun_count = *overruns.lock().unwrap();
        let pauses: u64 = (0..n_links)
            .filter_map(|i| sim.link_counters(LinkId(i as u32)))
            .map(|c| c.pauses_taken)
            .sum();
        let row = [
            attacker_qps.to_string(),
            if pfc_on { "on" } else { "off" }.to_string(),
            fmt_us(p50),
            fmt_us(p99),
            fmt_us(bys_p99),
            drops.to_string(),
            pauses.to_string(),
            overrun_count.to_string(),
        ];
        Ok(Artifact::text(row.join("\t"))
            .with_metric("victim_p50_ns", p50)
            .with_metric("victim_p99_ns", p99)
            .with_metric("bystander_p99_ns", bys_p99)
            .with_metric("victim_samples", victims.len() as u64)
            .with_metric("dropped_packets", drops)
            .with_metric("pfc_pauses", pauses)
            .with_metric("attacker_overruns", overrun_count))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        let p99_of = |r: &RunRecord| {
            r.outcome
                .artifact()
                .and_then(|a| a.metrics.get("victim_p99_ns")?.as_f64())
        };
        let baseline = records
            .iter()
            .find(|r| r.config.u64("attacker_qps") == Some(0) && r.config.bool("pfc") != Some(true))
            .and_then(p99_of);
        let mut rows = Vec::new();
        for r in records {
            let mut row: Vec<String> = match r.outcome.artifact() {
                Some(a) => a
                    .rendered
                    .trim_end_matches('\n')
                    .split('\t')
                    .map(str::to_string)
                    .collect(),
                None => continue,
            };
            let vs_quiet = match (baseline, p99_of(r)) {
                (Some(b), Some(p)) if b > 0.0 => format!("{:.2}x", p / b),
                _ => "-".into(),
            };
            row.insert(4, vs_quiet);
            rows.push(row);
        }
        let topology = records
            .first()
            .and_then(|r| r.config.str("topology"))
            .unwrap_or("?");
        out.push_str(&format!(
            "## Noisy neighbor — victim latency vs. attacker QPs ({topology})\n\n"
        ));
        out.push_str(&fmt_table(
            &[
                "attacker QPs",
                "PFC",
                "victim p50",
                "victim p99",
                "p99 vs quiet",
                "bystander p99",
                "drops",
                "pauses",
                "overruns",
            ],
            &rows,
        ));
        out.push_str(
            "\nOpen-loop attackers exhaust the oversubscribed trunks: victim tail\n\
             latency grows with the attacker QP budget even though victims and\n\
             attackers never share a QP, MR or host — only fabric links. PFC\n\
             back-pressure shifts the damage upstream rather than removing it.\n",
        );
    }
}

// ---------------------------------------------------------------------
// Bankrupt covert channel
// ---------------------------------------------------------------------

/// Default fabric for the covert channel: a small leaf-spine pod —
/// sender, receiver and memory server sit on three different leaves.
const BANKRUPT_TOPOLOGY: &str = "leaf-spine:hosts=16,leaves=4,spines=2";
/// Modulation starts here (fabric warmup before the first bit window).
const BANKRUPT_START: SimTime = SimTime::from_micros(20);

/// Bankrupt-style covert channel through a remote memory server: the
/// sender modulates bits by hammering either the receiver's probe row
/// (conflict ⇒ slow probes ⇒ `1`) or a row in a different TPU buffer
/// class (`0`); the receiver threshold-decodes windowed probe-latency
/// means. Neither party ever touches the other's memory — the channel
/// lives entirely in the server NIC's row-buffer state.
pub struct BankruptCovert;

impl Experiment for BankruptCovert {
    fn name(&self) -> &'static str {
        "bankrupt_covert"
    }

    fn description(&self) -> &'static str {
        "remote-memory row-conflict covert channel across the fabric (--bits <n>, --full for more periods)"
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        let n_bits = cli.option_u64("--bits").unwrap_or(64);
        let mut periods: Vec<u64> = vec![4_000, 8_000];
        if cli.flag("--full") {
            periods.extend([2_000, 16_000]);
        }
        let configs = periods
            .into_iter()
            .map(|p| {
                Config::new()
                    .with("topology", BANKRUPT_TOPOLOGY)
                    .with("period_ns", p)
                    .with("bits", n_bits)
            })
            .collect();
        super::topology_configs(super::chaos_configs(configs, cli), cli)
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let topo = super::topology_from(config)?.ok_or("missing topology")?;
        let hosts = topo.num_hosts();
        if hosts < 3 {
            return Err(format!("need at least 3 hosts, topology has {hosts}"));
        }
        let period_ns = config.u64("period_ns").ok_or("missing period_ns")?;
        let n_bits = config.u64("bits").ok_or("missing bits")? as usize;
        // The receiver shares no clock with the sender — one-way fabric
        // delays differ per placement — so the payload is framed behind
        // a known preamble and the phase is recovered from the signal.
        // Barker-7: unlike an alternating pattern it cannot alias onto
        // itself when the recovered clock is a whole window off, so the
        // preamble match also absorbs any residual window shift.
        let preamble = parse_bits("1110010");
        let payload = random_bits(n_bits, seed);
        let mut framed = preamble.clone();
        framed.extend(&payload);
        let period = SimDuration::from_nanos(period_ns);
        let total = SimDuration::from_nanos(period_ns * framed.len() as u64);

        let profile = DeviceProfile::connectx5();
        // Row-buffer geometry: rows whose index is congruent mod the
        // buffer count share a buffer. Hammering row `buffers` evicts the
        // probe's row 0; hammering row 1 leaves it resident. Both hammer
        // targets sit one 64 B token into their row so they use a
        // different TPU *bank* than the probe — the channel must come
        // from row state, not from shared bank-queue contention.
        let hot = profile.tpu_row_buffers as u64 * profile.tpu_row_bytes + 64;
        let cold = profile.tpu_row_bytes + 64;

        let mut sim = Simulation::with_topology(seed, topo, None);
        if let Some(plan) = super::chaos_plan(config)? {
            sim.install_fault_plan(&plan);
        }
        for _ in 0..hosts {
            sim.add_host(profile.clone());
        }
        let server = HostId(0);
        let receiver = HostId((hosts / 3).max(1));
        let sender = HostId((2 * hosts / 3).max(2));

        let pd_server = sim.alloc_pd(server);
        let mr = sim.register_mr(server, pd_server, 2 << 20, AccessFlags::remote_all());
        let overruns = Arc::new(Mutex::new(0u64));
        let samples: TimedSamples = Arc::new(Mutex::new(Vec::new()));

        // Receiver: constant-rate 8 B probes of row 0, one every 100 ns —
        // just above the TPU's row-miss service time. During a hot window
        // every probe misses (~105 ns service > 100 ns arrivals), so the
        // probe bank builds a queue that *integrates* the 45 ns penalty
        // into a per-window level far above the jitter floor; a cold
        // window (~60 ns hits) drains it again. Probing starts well
        // before the modulation so the cold-start costs (MPT miss, MR
        // context load) are paid on samples the decoder never sees, and
        // runs one extra period past the payload so the last window has
        // samples.
        let pd_rx = sim.alloc_pd(receiver);
        let (rx_qp, _) = sim.connect(
            receiver,
            pd_rx,
            server,
            pd_server,
            ConnectOptions::default(),
        );
        let probe_gap = SimDuration::from_nanos(100);
        let rx_app = sim.add_send_app(Box::new(Tenant {
            qps: vec![rx_qp],
            next_qp: 0,
            gen: OpenLoopGen::constant(SimTime::from_micros(10), probe_gap),
            fixed_gap: Some(probe_gap),
            write: false,
            msg_len: 8,
            remote: mr,
            remote_offset: 0,
            stop_at: BANKRUPT_START + total + period,
            measure_from: SimTime::ZERO,
            latencies: None,
            timed: Some(Arc::clone(&samples)),
            overruns: Arc::clone(&overruns),
            seq: 0,
        }));
        sim.own_qp(rx_app, rx_qp);
        sim.set_app_scope(rx_app, &[receiver]);

        // Sender: hammers the bit-selected row with 64 B reads at the
        // same cadence as the probes. The load is identical for both
        // symbols — only the target row differs, so the channel cannot
        // be explained by fabric congestion.
        let pd_tx = sim.alloc_pd(sender);
        let (tx_qp, _) = sim.connect(sender, pd_tx, server, pd_server, ConnectOptions::default());
        let tx_app = sim.add_send_app(Box::new(Modulator {
            qp: tx_qp,
            remote: mr,
            bits: framed.clone(),
            start: BANKRUPT_START,
            period,
            gap: probe_gap,
            hot,
            cold,
            overruns: Arc::clone(&overruns),
            seq: 0,
        }));
        sim.own_qp(tx_app, tx_qp);
        sim.set_app_scope(tx_app, &[sender]);

        sim.run_until_workers(
            BANKRUPT_START + total + SimDuration::from_micros(20),
            pdes::ambient_workers(),
        );

        // Decode only samples taken while the sender modulated; the
        // earlier warm-up probes would dilute the phase search.
        let samples: Vec<(SimTime, f64)> = samples
            .lock()
            .unwrap()
            .iter()
            .copied()
            .filter(|&(t, _)| t >= BANKRUPT_START)
            .collect();
        if samples.is_empty() {
            return Err("no probe samples inside the modulation window".into());
        }
        let (decoded, _clock) = async_decode(&samples, period, true);
        // Fuzzy match: a single bad window inside the preamble, or a
        // recovered clock one window late (clipping the preamble's head),
        // must not desynchronise the whole payload.
        let (n, errors) = match strip_preamble_fuzzy(&decoded, &preamble, 5) {
            Some(got) => {
                let n = got.len().min(payload.len());
                (n, count_errors(&payload[..n], &got[..n]))
            }
            // Preamble never appeared: the channel carried nothing this
            // run. Score it at chance so the effective bandwidth is zero.
            None => (payload.len(), payload.len().div_ceil(2)),
        };
        if n == 0 {
            return Err("capture ended before any payload bit".into());
        }
        let error_rate = errors as f64 / n as f64;
        let raw_bps = 1.0 / period.as_secs_f64();
        let effective_bps = raw_bps * (1.0 - binary_entropy(error_rate));
        let overrun_count = *overruns.lock().unwrap();
        let row = [
            format!("{:.1} us", period_ns as f64 / 1000.0),
            fmt_bps(raw_bps),
            format!("{errors}/{n} ({})", fmt_pct(error_rate)),
            fmt_bps(effective_bps),
        ];
        Ok(Artifact::text(row.join("\t"))
            .with_metric("raw_bps", raw_bps)
            .with_metric("error_rate", error_rate)
            .with_metric("effective_bps", effective_bps)
            .with_metric("bits_decoded", n as u64)
            .with_metric("overruns", overrun_count))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        let topology = records
            .first()
            .and_then(|r| r.config.str("topology"))
            .unwrap_or("?");
        let n_bits = records
            .first()
            .and_then(|r| r.config.u64("bits"))
            .unwrap_or(0);
        out.push_str(&format!(
            "## Bankrupt covert channel — {n_bits} random bits over {topology}\n\n"
        ));
        out.push_str(&fmt_table(
            &["bit period", "raw BW", "bit errors", "effective BW"],
            &super::tab_rows(records),
        ));
        writeln!(
            out,
            "\nThe sender and receiver share nothing but a third host's memory\n\
             server: row-buffer conflicts inside its NIC TPU modulate probe\n\
             latency across the fabric, reproducing the Bankrupt attack's\n\
             volatile-channel premise on the Ragnar device model."
        )
        .ok();
    }
}

/// The covert sender: each timer tick posts one 64 B read whose target
/// row encodes the current bit, until the payload is exhausted.
struct Modulator {
    qp: QpHandle,
    remote: MrHandle,
    bits: Vec<bool>,
    start: SimTime,
    period: SimDuration,
    gap: SimDuration,
    hot: u64,
    cold: u64,
    overruns: Arc<Mutex<u64>>,
    seq: u64,
}

impl App for Modulator {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start.saturating_since(ctx.now()), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let now = ctx.now();
        if now < self.start {
            ctx.set_timer(self.start.saturating_since(now), 0);
            return;
        }
        let idx = ((now - self.start).as_picos() / self.period.as_picos()) as usize;
        let Some(&bit) = self.bits.get(idx) else {
            return;
        };
        let offset = if bit { self.hot } else { self.cold };
        self.seq += 1;
        let wr = WorkRequest::read(
            self.seq,
            LOCAL_BUF,
            self.remote.addr(offset),
            self.remote.key,
            64,
        );
        if ctx.post_send(self.qp, wr).is_err() {
            *self.overruns.lock().unwrap() += 1;
        }
        ctx.set_timer(self.gap, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noisy_sweep_shares_placement_and_includes_pfc_cell() {
        let cli = Cli::default();
        let configs = NoisyNeighbor.params(&cli);
        assert_eq!(configs.len(), 4);
        let seeds: Vec<_> = configs.iter().map(|c| c.u64("placement_seed")).collect();
        assert!(seeds.windows(2).all(|w| w[0] == w[1]));
        assert!(configs
            .iter()
            .any(|c| c.bool("pfc") == Some(true) && c.u64("attacker_qps") == Some(64)));
        assert!(configs
            .iter()
            .all(|c| c.str("topology") == Some(NOISY_TOPOLOGY)));
    }

    #[test]
    fn bankrupt_channel_decodes_on_a_small_fabric() {
        let config = Config::new()
            .with("topology", "leaf-spine:hosts=8,leaves=2,spines=2")
            .with("period_ns", 4_000u64)
            .with("bits", 16u64);
        let artifact = BankruptCovert.run(&config, 7).expect("run succeeds");
        let decoded = artifact
            .metrics
            .get("bits_decoded")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(decoded >= 15.0, "decoded only {decoded} windows");
        let err = artifact
            .metrics
            .get("error_rate")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(err <= 0.25, "row-conflict channel too noisy: {err}");
    }
}
