//! The covert-channel evaluations: Fig. 9 (priority channel), Table V,
//! the Pythia comparison, the capacity sweep and the robustness study.

use std::fmt::Write as _;

use pythia_baseline::{run_channel, PythiaConfig};
use ragnar_core::covert::capacity::{capacity_sweep, UliChannel};
use ragnar_core::covert::priority::{self, PriorityChannelConfig};
use ragnar_core::covert::sync::{async_decode, strip_preamble};
use ragnar_core::covert::{
    binary_entropy, inter_mr, intra_mr, parse_bits, random_bits, UliChannelConfig, FIG9_BITS,
};
use ragnar_harness::{Artifact, Cli, Config, Experiment, Outcome, RunRecord};
use rdma_verbs::DeviceKind;
use sim_core::SimDuration;

use crate::{fmt_bps, fmt_pct, fmt_table, sparkline};

/// Fig. 9: the Grain-I/II priority-based covert channel on CX-4/5/6,
/// transmitting the paper's bitstream — one config per NIC generation.
pub struct Fig9PriorityChannel;

impl Experiment for Fig9PriorityChannel {
    fn name(&self) -> &'static str {
        "fig9_priority_channel"
    }

    fn description(&self) -> &'static str {
        "Grain-I/II priority covert channel per NIC (pass --paper-rate for 1 s/bit)"
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        DeviceKind::ALL
            .iter()
            .map(|kind| {
                Config::new()
                    .with("device", kind.name())
                    .with("paper_rate", cli.flag("--paper-rate"))
            })
            .collect()
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let paper_rate = config.bool("paper_rate").unwrap_or(false);
        // The paper's channel runs at 1 s per bit (ethtool-granularity
        // counters). Everything is time-scaled (DESIGN.md): rates ÷ 200,
        // so the simulated second of each bit stays tractable while
        // every contention ratio is preserved.
        let cfg = if paper_rate {
            PriorityChannelConfig {
                scale: 0.005,
                bit_period: SimDuration::from_secs(1),
                sample_interval: SimDuration::from_millis(100),
                seed,
                ..PriorityChannelConfig::default()
            }
        } else {
            PriorityChannelConfig {
                seed,
                ..PriorityChannelConfig::default()
            }
        };
        let bits = parse_bits(FIG9_BITS);
        let r = priority::run(kind, &bits, &cfg);
        let decoded: String = r
            .report
            .decoded
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        let mut s = String::new();
        writeln!(s, "{kind}:").ok();
        writeln!(s, "  rx bandwidth  {}", sparkline(&r.rx_bandwidth.values())).ok();
        writeln!(s, "  bit levels    {}", sparkline(&r.report.levels)).ok();
        writeln!(
            s,
            "  decoded       {decoded}   errors {}  raw {}",
            r.report.bit_errors,
            fmt_bps(r.report.raw_bandwidth_bps),
        )
        .ok();
        Ok(Artifact::text(s)
            .with_metric("bit_errors", r.report.bit_errors as u64)
            .with_metric("raw_bandwidth_bps", r.report.raw_bandwidth_bps))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        out.push_str(&format!(
            "## Fig. 9 — priority-based covert channel, bitstream {FIG9_BITS}\n\n"
        ));
        for record in records {
            if let Outcome::Done(artifact) = &record.outcome {
                out.push_str(&artifact.rendered);
            }
        }
        let paper_rate = records
            .first()
            .and_then(|r| r.config.bool("paper_rate"))
            .unwrap_or(false);
        if !paper_rate {
            let bit_period = PriorityChannelConfig::default().bit_period;
            out.push_str(&format!(
                "\n(bit period {bit_period:?}-scaled for runtime; pass --paper-rate for the\n"
            ));
            out.push_str(" paper's 1 s/bit setting, which reports ~1 bps as in Table V)\n");
        }
    }
}

/// Table V: bandwidth / error rate / effective bandwidth of the three
/// covert channels — one config per (channel, NIC) cell.
pub struct Table5Covert;

const TABLE5_CHANNELS: [&str; 3] = ["priority", "inter_mr", "intra_mr"];

impl Experiment for Table5Covert {
    fn name(&self) -> &'static str {
        "table5_covert"
    }

    fn description(&self) -> &'static str {
        "covert-channel evaluation per (channel, NIC) cell (--bits <n> for payload length)"
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        let n_bits = cli.option_u64("--bits").unwrap_or(400);
        let mut configs = Vec::new();
        for channel in TABLE5_CHANNELS {
            for kind in DeviceKind::ALL {
                configs.push(
                    Config::new()
                        .with("channel", channel)
                        .with("device", kind.name())
                        .with("bits", n_bits),
                );
            }
        }
        super::chaos_configs(configs, cli)
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let n_bits = config.u64("bits").ok_or("missing bits")? as usize;
        let bits = random_bits(n_bits, seed);
        let fault_plan = super::chaos_plan(config)?;
        let row = match config.str("channel") {
            // Grain-I+II: at the paper's 1 s bit period the channel
            // carries ~1 bps; the run here uses the time-scaled profile
            // (see fig9) and reports the equivalent paper-setting
            // bandwidth.
            Some("priority") => {
                let pr_cfg = PriorityChannelConfig {
                    seed,
                    fault_plan,
                    ..PriorityChannelConfig::default()
                };
                let short = &bits[..16.min(bits.len())];
                let r = priority::run(kind, short, &pr_cfg);
                // Paper setting: 1 bit per second of (scaled) wall time.
                let paper_equivalent_bps = 1.0 / (pr_cfg.bit_period.as_secs_f64() / 0.1);
                vec![
                    format!("Inter traffic-class (I+II) {kind}"),
                    fmt_bps(paper_equivalent_bps),
                    fmt_pct(r.report.error_rate()),
                    fmt_bps(paper_equivalent_bps * (1.0 - binary_entropy(r.report.error_rate()))),
                ]
            }
            Some("inter_mr") => {
                let cfg = UliChannelConfig {
                    seed,
                    fault_plan,
                    ..inter_mr::default_config(kind)
                };
                let r = inter_mr::run(kind, &bits, &cfg);
                vec![
                    format!("Inter MR (III) {kind}"),
                    fmt_bps(r.report.raw_bandwidth_bps),
                    fmt_pct(r.report.error_rate()),
                    fmt_bps(r.report.effective_bandwidth_bps()),
                ]
            }
            Some("intra_mr") => {
                let cfg = UliChannelConfig {
                    seed,
                    fault_plan,
                    ..intra_mr::default_config(kind)
                };
                let r = intra_mr::run(kind, &bits, &cfg);
                vec![
                    format!("Intra MR (IV) {kind}"),
                    fmt_bps(r.report.raw_bandwidth_bps),
                    fmt_pct(r.report.error_rate()),
                    fmt_bps(r.report.effective_bandwidth_bps()),
                ]
            }
            other => return Err(format!("unknown channel {other:?}")),
        };
        Ok(Artifact::text(row.join("\t")))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        let n_bits = records
            .first()
            .and_then(|r| r.config.u64("bits"))
            .unwrap_or(400);
        out.push_str(&format!(
            "## Table V — covert-channel evaluation ({n_bits} random bits per cell)\n\n"
        ));
        out.push_str(&fmt_table(
            &[
                "Covert channel (grain) / RNIC",
                "Bandwidth",
                "Error rate",
                "Effective BW",
            ],
            &super::tab_rows(records),
        ));
        out.push_str("\nPaper reference (Table V):\n");
        out.push_str("  priority: 1.0/1.1/1.1 bps at 0% error\n");
        out.push_str("  inter-MR: 31.8/63.6/84.3 Kbps at 5.92/3.98/7.59% error\n");
        out.push_str("  intra-MR: 32.2/31.5/81.3 Kbps at 6.95/4.84/4.08% error\n");
    }
}

/// The §I headline: Ragnar's inter-MR channel vs. the Pythia
/// (cache-based persistent-channel) baseline on the same CX-5 setup.
pub struct PythiaCompare;

impl Experiment for PythiaCompare {
    fn name(&self) -> &'static str {
        "pythia_compare"
    }

    fn description(&self) -> &'static str {
        "Ragnar inter-MR vs. Pythia evict+reload bandwidth on CX-5"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        vec![Config::new()
            .with("device", DeviceKind::ConnectX5.name())
            .with("bits", 400u64)]
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let n_bits = config.u64("bits").ok_or("missing bits")? as usize;
        let bits = random_bits(n_bits, seed);

        let ragnar_cfg = UliChannelConfig {
            seed,
            ..inter_mr::default_config(kind)
        };
        let ragnar = inter_mr::run(kind, &bits, &ragnar_cfg);
        let pythia_cfg = PythiaConfig {
            seed,
            ..PythiaConfig::default()
        };
        let pythia = run_channel(kind, &bits[..n_bits / 2], &pythia_cfg);

        let mut s = String::new();
        writeln!(
            s,
            "## Ragnar vs. Pythia covert-channel bandwidth on {}\n",
            kind.name()
        )
        .ok();
        s.push_str(&fmt_table(
            &["channel", "type", "bandwidth", "error", "effective"],
            &[
                vec![
                    "Ragnar inter-MR".into(),
                    "volatile (contention)".into(),
                    fmt_bps(ragnar.report.raw_bandwidth_bps),
                    fmt_pct(ragnar.report.error_rate()),
                    fmt_bps(ragnar.report.effective_bandwidth_bps()),
                ],
                vec![
                    format!("Pythia evict+reload (set of {})", pythia.eviction_set_size),
                    "persistent (MPT cache)".into(),
                    fmt_bps(pythia.report.raw_bandwidth_bps),
                    fmt_pct(pythia.report.error_rate()),
                    fmt_bps(pythia.report.effective_bandwidth_bps()),
                ],
            ],
        ));
        let ratio = ragnar.report.raw_bandwidth_bps / pythia.report.raw_bandwidth_bps;
        writeln!(
            s,
            "\nbandwidth ratio: {ratio:.2}x   (paper: 3.2x — 63.6 vs 20 Kbps)"
        )
        .ok();
        Ok(Artifact::text(s).with_metric("bandwidth_ratio", ratio))
    }
}

/// Channel-capacity sweep: how the paper's "best parameter combinations"
/// arise — one config per (channel, bit period) point.
pub struct CapacityStudy;

const CAPACITY_PERIODS_NS: [u64; 7] = [4_000, 8_000, 12_000, 15_700, 24_000, 48_000, 96_000];

impl Experiment for CapacityStudy {
    fn name(&self) -> &'static str {
        "capacity_study"
    }

    fn description(&self) -> &'static str {
        "effective-bandwidth peak vs. bit period for the inter/intra-MR channels (CX-5)"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        let mut configs = Vec::new();
        for channel in ["inter_mr", "intra_mr"] {
            for period_ns in CAPACITY_PERIODS_NS {
                configs.push(
                    Config::new()
                        .with("channel", channel)
                        .with("device", DeviceKind::ConnectX5.name())
                        .with("period_ns", period_ns)
                        .with("bits", 192u64),
                );
            }
        }
        configs
    }

    fn run(&self, config: &Config, _seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let channel = match config.str("channel") {
            Some("inter_mr") => UliChannel::InterMr,
            Some("intra_mr") => UliChannel::IntraMr,
            other => return Err(format!("unknown channel {other:?}")),
        };
        let period_ns = config.u64("period_ns").ok_or("missing period_ns")?;
        let bits = config.u64("bits").ok_or("missing bits")? as usize;
        let points = capacity_sweep(kind, channel, &[period_ns], bits);
        let p = points.first().ok_or("empty capacity sweep")?;
        let row = [
            format!("{:.1} us", p.bit_period_ns as f64 / 1000.0),
            fmt_bps(p.raw_bps),
            fmt_pct(p.error_rate),
            fmt_bps(p.effective_bps),
        ];
        Ok(Artifact::text(row.join("\t"))
            .with_metric("raw_bps", p.raw_bps)
            .with_metric("error_rate", p.error_rate)
            .with_metric("effective_bps", p.effective_bps))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        for (channel, label) in [
            ("inter_mr", "inter-MR (Grain III)"),
            ("intra_mr", "intra-MR (Grain IV)"),
        ] {
            let section: Vec<&RunRecord> = records
                .iter()
                .filter(|r| r.config.str("channel") == Some(channel))
                .collect();
            out.push_str(&format!("## Capacity sweep — {label} channel, CX-5\n\n"));
            out.push_str(&fmt_table(
                &["bit period", "raw BW", "error", "effective BW"],
                &super::tab_rows(section.iter().copied()),
            ));
            // Best operating point: highest effective bandwidth.
            let best = section
                .iter()
                .filter_map(|r| {
                    let a = r.outcome.artifact()?;
                    Some((
                        r.config.u64("period_ns")?,
                        a.metrics.get("effective_bps")?.as_f64()?,
                    ))
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite bandwidths"));
            if let Some((period_ns, effective)) = best {
                out.push_str(&format!(
                    "\nbest operating point: {:.1} us per bit -> {} effective\n\n",
                    period_ns as f64 / 1000.0,
                    fmt_bps(effective)
                ));
            }
        }
        out.push_str("The Table-V bit periods sit at (or near) these optima — the same\n");
        out.push_str("calibration the paper performed per NIC.\n");
    }
}

/// Extension study: covert-channel robustness under bystander traffic
/// and an asynchronous (clock-recovering) receiver.
pub struct RobustnessStudy;

impl Experiment for RobustnessStudy {
    fn name(&self) -> &'static str {
        "robustness_study"
    }

    fn description(&self) -> &'static str {
        "inter-MR channel under bystander tenants and asynchronous decode"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        let mut configs = vec![Config::new()
            .with("part", "bystander")
            .with("background_len", 0u64)
            .with("device", DeviceKind::ConnectX5.name())
            .with("bits", 256u64)];
        for len in [256u64, 1024, 4096] {
            configs.push(
                Config::new()
                    .with("part", "bystander")
                    .with("background_len", len)
                    .with("device", DeviceKind::ConnectX5.name())
                    .with("bits", 256u64),
            );
        }
        configs.push(
            Config::new()
                .with("part", "async")
                .with("device", DeviceKind::ConnectX4.name())
                .with("bits", 128u64),
        );
        configs
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let n_bits = config.u64("bits").ok_or("missing bits")? as usize;
        match config.str("part") {
            Some("bystander") => {
                let bits = random_bits(n_bits, seed);
                let len = config
                    .u64("background_len")
                    .ok_or("missing background_len")?;
                let cfg = UliChannelConfig {
                    seed,
                    background_traffic_len: (len > 0).then_some(len),
                    ..inter_mr::default_config(kind)
                };
                let r = inter_mr::run(kind, &bits, &cfg);
                let condition = if len == 0 {
                    "quiet fabric".to_string()
                } else {
                    format!("bystander flow, {len} B reads")
                };
                Ok(
                    Artifact::text([condition, fmt_pct(r.report.error_rate())].join("\t"))
                        .with_metric("error_rate", r.report.error_rate()),
                )
            }
            Some("async") => {
                let preamble = parse_bits("10101010");
                let payload = random_bits(n_bits, seed);
                let mut framed = preamble.clone();
                framed.extend(&payload);
                let cfg = UliChannelConfig {
                    seed,
                    ..inter_mr::default_config(kind)
                };
                let run = inter_mr::run(kind, &framed, &cfg);
                let samples: Vec<_> = run.rx_samples.iter().map(|s| (s.at, s.uli_ns)).collect();
                let (decoded, clock) = async_decode(&samples, cfg.bit_period, true);
                let mut s = String::new();
                match strip_preamble(&decoded, &preamble) {
                    Some(got) => {
                        let n = got.len().min(payload.len());
                        let errors = got[..n]
                            .iter()
                            .zip(&payload[..n])
                            .filter(|(a, b)| a != b)
                            .count();
                        writeln!(
                            s,
                            "phase recovered at {:.2} us into the capture; payload error rate {}/{n} ({:.2}%)",
                            clock.phase.as_micros_f64(),
                            errors,
                            errors as f64 / n as f64 * 100.0
                        )
                        .ok();
                    }
                    None => {
                        writeln!(
                            s,
                            "preamble not found — channel unusable without a shared clock"
                        )
                        .ok();
                    }
                }
                Ok(Artifact::text(s))
            }
            other => Err(format!("unknown part {other:?}")),
        }
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        let (bystander, async_part): (Vec<_>, Vec<_>) = records
            .iter()
            .partition(|r| r.config.str("part") == Some("bystander"));
        out.push_str("## Inter-MR channel robustness (CX-5, 256 random bits)\n\n");
        out.push_str(&fmt_table(
            &["condition", "bit error rate"],
            &super::tab_rows(bystander),
        ));
        out.push_str("\n## Asynchronous receiver (clock recovery, CX-4)\n\n");
        for record in async_part {
            if let Outcome::Done(artifact) = &record.outcome {
                out.push_str(&artifact.rendered);
            }
        }
        out.push_str("\nThe volatile channel tolerates bystander tenants (the paper's\n");
        out.push_str("isolation-bypass claim) and needs no clock distribution —\n");
        out.push_str("only the nominal bit period.\n");
    }
}
