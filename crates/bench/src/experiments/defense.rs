//! §VII: what existing defenses see of each Ragnar channel — the
//! HARMONIC-style monitor, the noise-injection trade-off and the
//! detector ROC study.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use ragnar_core::covert::{inter_mr, intra_mr, random_bits, UliChannelConfig};
use ragnar_core::{CounterSampler, Testbed};
use ragnar_defense::{
    detection_at_fpr, noise_sweep, roc_sweep, window_signatures, HarmonicMonitor, WindowSignature,
};
use ragnar_harness::{Artifact, Cli, Config, Experiment, Outcome, RunRecord};
use ragnar_workloads::shuffle_join::{DbConfig, DbPhase, DbVictim, PhaseLog};
use rdma_verbs::{AccessFlags, ConnectOptions, DeviceKind, DeviceProfile, FlowId, TrafficClass};
use sim_core::{SimDuration, SimTime};

use crate::{fmt_bps, fmt_pct, fmt_table};

/// §VII + Table I "Defended" column: HARMONIC-style monitoring of the
/// covert senders plus the noise-injection mitigation sweep — one config
/// per monitored channel and per noise level.
pub struct MitigationStudy;

const NOISE_LEVELS_NS: [u64; 6] = [0, 100, 250, 500, 1000, 2500];

impl Experiment for MitigationStudy {
    fn name(&self) -> &'static str {
        "mitigation_study"
    }

    fn description(&self) -> &'static str {
        "HARMONIC monitoring of the covert senders and the noise-injection trade-off"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        let mut configs = Vec::new();
        for channel in ["inter_mr", "intra_mr"] {
            configs.push(
                Config::new()
                    .with("part", "monitor")
                    .with("channel", channel)
                    .with("device", DeviceKind::ConnectX5.name())
                    .with("bits", 256u64),
            );
        }
        for noise_ns in NOISE_LEVELS_NS {
            configs.push(
                Config::new()
                    .with("part", "noise")
                    .with("noise_ns", noise_ns)
                    .with("device", DeviceKind::ConnectX4.name())
                    .with("bits", 128u64),
            );
        }
        configs
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let n_bits = config.u64("bits").ok_or("missing bits")? as usize;
        match config.str("part") {
            Some("monitor") => {
                let bits = random_bits(n_bits, seed);
                let monitor = HarmonicMonitor::new();
                let (label, samples) = match config.str("channel") {
                    Some("inter_mr") => {
                        let cfg = UliChannelConfig {
                            seed,
                            ..inter_mr::default_config(kind)
                        };
                        (
                            "Inter-MR (Grain III)",
                            inter_mr::run(kind, &bits, &cfg).tx_counter_samples,
                        )
                    }
                    Some("intra_mr") => {
                        let cfg = UliChannelConfig {
                            seed,
                            ..intra_mr::default_config(kind)
                        };
                        (
                            "Intra-MR (Grain IV)",
                            intra_mr::run(kind, &bits, &cfg).tx_counter_samples,
                        )
                    }
                    other => return Err(format!("unknown channel {other:?}")),
                };
                let sigs = window_signatures(&samples);
                let row = [
                    label.to_string(),
                    format!("{} windows", sigs.len()),
                    format!("{:?}", monitor.judge(&sigs)),
                ];
                Ok(Artifact::text(row.join("\t")))
            }
            Some("noise") => {
                let noise_ns = config.u64("noise_ns").ok_or("missing noise_ns")?;
                let points = noise_sweep(kind, &[noise_ns], n_bits);
                let p = points.first().ok_or("empty noise sweep")?;
                let row = [
                    format!("{} ns", p.noise_ns),
                    fmt_pct(p.channel_error_rate),
                    fmt_bps(p.effective_bandwidth_bps),
                    format!("{:.0} ns", p.mean_uli_ns),
                ];
                Ok(Artifact::text(row.join("\t"))
                    .with_metric("channel_error_rate", p.channel_error_rate)
                    .with_metric("effective_bandwidth_bps", p.effective_bandwidth_bps)
                    .with_metric("mean_uli_ns", p.mean_uli_ns))
            }
            other => Err(format!("unknown part {other:?}")),
        }
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        let (monitor, noise): (Vec<_>, Vec<_>) = records
            .iter()
            .partition(|r| r.config.str("part") == Some("monitor"));
        out.push_str("## HARMONIC-style monitoring of the covert senders (CX-5)\n\n");
        out.push_str(&fmt_table(
            &["channel", "observation", "verdict"],
            &super::tab_rows(monitor),
        ));
        out.push_str("\n(The Grain-I/II priority channel is flagged by the same monitor —\n");
        out.push_str(" its sender's mean packet size modulates bit-by-bit; see the\n");
        out.push_str(" `size_modulation_is_flagged` test. Ragnar's Grain-III/IV channels\n");
        out.push_str(" keep every HARMONIC statistic stationary and pass: Table I.)\n\n");
        out.push_str("## §VII noise-injection mitigation sweep (inter-MR, CX-4)\n\n");
        out.push_str(&fmt_table(
            &[
                "injected σ",
                "channel error",
                "effective BW",
                "mean tenant ULI",
            ],
            &super::tab_rows(noise),
        ));
        out.push_str("\nSub-microsecond noise leaves the channel detectable; masking it\n");
        out.push_str("completely costs every tenant significant latency — §VII's\n");
        out.push_str("conclusion.\n");
    }
}

/// Honest-tenant signatures: a realistic mix of perfectly steady flows
/// (half, modelled as a sender stuck on one symbol) and bursty
/// database-style tenants with shuffle/join phases (half) — real
/// workloads are not statistically flat.
fn honest_population(kind: DeviceKind, n: usize, seed: u64) -> Vec<Vec<WindowSignature>> {
    let mut out = Vec::new();
    let bits_constant = vec![false; 128];
    for i in 0..n / 2 {
        let cfg = UliChannelConfig {
            seed: seed ^ (0xB0 + i as u64),
            ..inter_mr::default_config(kind)
        };
        let run = inter_mr::run(kind, &bits_constant, &cfg);
        out.push(window_signatures(&run.tx_counter_samples));
    }
    for i in 0..n - n / 2 {
        out.push(db_tenant_signatures(kind, seed ^ (0xD0 + i as u64)));
    }
    out
}

/// A bursty (but honest) database tenant, observed through the same
/// counter sampler the monitor uses.
fn db_tenant_signatures(kind: DeviceKind, seed: u64) -> Vec<WindowSignature> {
    let mut tb = Testbed::new(DeviceProfile::preset(kind), 1, seed);
    let mr = tb.server_mr(8 << 20, AccessFlags::remote_all());
    let qp = tb.connect_client(
        0,
        ConnectOptions {
            tc: TrafficClass::new(0),
            flow: FlowId(1),
            max_send_queue: 8,
        },
    );
    let log = Rc::new(RefCell::new(PhaseLog::default()));
    let victim = tb.sim.add_app(Box::new(DbVictim::new(
        qp,
        DbConfig {
            shuffle_msg_len: 8 * 1024,
            join_msg_len: 2 * 1024,
            rkey: mr.key,
            remote_base: mr.base_va,
            remote_len: mr.len,
        },
        vec![
            DbPhase::Shuffle(SimDuration::from_micros(200)),
            DbPhase::Idle(SimDuration::from_micros(100)),
            DbPhase::Join {
                rounds: 6,
                burst: SimDuration::from_micros(30),
                gap: SimDuration::from_micros(30),
            },
            DbPhase::Shuffle(SimDuration::from_micros(150)),
        ],
        log,
    )));
    tb.sim.own_qp(victim, qp);
    let samples = Rc::new(RefCell::new(Vec::new()));
    let host = tb.clients[0];
    tb.sim.add_app(Box::new(CounterSampler::new(
        host,
        SimDuration::from_micros(60),
        Rc::clone(&samples),
    )));
    tb.sim.run_until(SimTime::from_micros(820));
    let s = samples.borrow().clone();
    window_signatures(&s)
}

fn covert_population(
    kind: DeviceKind,
    n: usize,
    which: &str,
    seed: u64,
) -> Vec<Vec<WindowSignature>> {
    (0..n)
        .map(|i| {
            let bits = random_bits(128, seed ^ (0xABC + i as u64));
            let samples = match which {
                "inter" => {
                    let cfg = UliChannelConfig {
                        seed: seed ^ (0x11 + i as u64),
                        ..inter_mr::default_config(kind)
                    };
                    inter_mr::run(kind, &bits, &cfg).tx_counter_samples
                }
                _ => {
                    let cfg = UliChannelConfig {
                        seed: seed ^ (0x22 + i as u64),
                        ..intra_mr::default_config(kind)
                    };
                    intra_mr::run(kind, &bits, &cfg).tx_counter_samples
                }
            };
            window_signatures(&samples)
        })
        .collect()
}

/// Detector ROC study on live channel traffic: how much detection a
/// HARMONIC-style monitor can buy at a given false-positive budget —
/// one config per Ragnar channel.
pub struct RocStudy;

impl Experiment for RocStudy {
    fn name(&self) -> &'static str {
        "roc_study"
    }

    fn description(&self) -> &'static str {
        "HARMONIC detector ROC against live inter/intra-MR senders (CX-5)"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        ["inter", "intra"]
            .iter()
            .map(|&which| {
                Config::new()
                    .with("channel", which)
                    .with("device", DeviceKind::ConnectX5.name())
                    .with("tenants", 8u64)
            })
            .collect()
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let which = config.str("channel").ok_or("missing channel")?;
        let tenants = config.u64("tenants").ok_or("missing tenants")? as usize;
        let thresholds = [0.005, 0.01, 0.02, 0.05, 0.1, 0.2];

        let honest = honest_population(kind, tenants, seed);
        let covert = covert_population(kind, tenants, which, seed);
        let points = roc_sweep(&covert, &honest, &thresholds);
        let mut s = String::new();
        writeln!(s, "### {which}-MR channel sender\n").ok();
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.3}", p.threshold),
                    fmt_pct(p.detection_rate),
                    fmt_pct(p.false_positive_rate),
                ]
            })
            .collect();
        s.push_str(&fmt_table(
            &["CV threshold", "detection", "false positives"],
            &rows,
        ));
        let at_zero = detection_at_fpr(&points, 0.0).unwrap_or(0.0);
        writeln!(
            s,
            "\nbest detection at 0% false positives: {}\n",
            fmt_pct(at_zero)
        )
        .ok();
        Ok(Artifact::text(s).with_metric("detection_at_zero_fpr", at_zero))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        let tenants = records
            .first()
            .and_then(|r| r.config.u64("tenants"))
            .unwrap_or(8);
        out.push_str(&format!(
            "## HARMONIC ROC vs. live Ragnar senders (CX-5, {tenants} tenants/side)\n\n"
        ));
        for record in records {
            if let Outcome::Done(artifact) = &record.outcome {
                out.push_str(&artifact.rendered);
            }
        }
        out.push_str("A Grain-III/IV sender's counters are statistically identical to an\n");
        out.push_str("honest tenant's: detection is purchasable only with false positives\n");
        out.push_str("on innocent workloads — Table I's missing 'Defended' entry.\n");
    }
}
