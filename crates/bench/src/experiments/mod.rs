//! The experiment behind every figure/table binary, as
//! [`ragnar_harness::Experiment`] implementations.
//!
//! Each experiment declares its parameter space in `params` (one
//! [`Config`](ragnar_harness::Config) per independently cacheable cell)
//! and measures one cell in `run`; the harness handles scheduling,
//! seeding, caching and the run manifest. `summarize` reassembles the
//! exact report the old standalone binaries printed.

pub mod cluster;
pub mod contention;
pub mod covert;
pub mod defense;
pub mod offset;
pub mod side;
pub mod tables;
pub mod uli;

use ragnar_harness::{Cli, Config, Experiment, Outcome, RunRecord};
use rdma_verbs::{DeviceKind, FaultPlan, PlanParams};

/// Every experiment of the reproduction, in paper order.
pub fn registry() -> Vec<&'static dyn Experiment> {
    vec![
        &tables::Table23,
        &contention::Fig4Contention,
        &uli::Fig5MrUli,
        &offset::Fig6AbsOffset,
        &offset::Fig7AbsOffset1k,
        &offset::Fig8RelOffset,
        &covert::Fig9PriorityChannel,
        &uli::Fig10UliDecode,
        &uli::Fig11InterMr,
        &side::Fig12Fingerprint,
        &side::Fig13Snoop,
        &side::Fig13Classifier,
        &covert::Table5Covert,
        &covert::PythiaCompare,
        &covert::CapacityStudy,
        &covert::RobustnessStudy,
        &contention::Ablations,
        &defense::MitigationStudy,
        &defense::RocStudy,
        &cluster::NoisyNeighbor,
        &cluster::BankruptCovert,
    ]
}

/// Threads the shared chaos flags into a config, so fault plans become
/// part of the cache key (a chaos run never collides with a clean run).
/// `--chaos-plan` files are inlined as text — the key captures the plan
/// *content*, not the path; `--chaos-seed` stores the seed and the plan
/// is regenerated deterministically at run time.
///
/// # Panics
///
/// Panics if the `--chaos-plan` file cannot be read (params has no error
/// channel; a missing plan file is a fatal CLI mistake).
pub(crate) fn chaos_configs(configs: Vec<Config>, cli: &Cli) -> Vec<Config> {
    if cli.chaos_plan.is_none() && cli.chaos_seed.is_none() {
        return configs;
    }
    let text = cli.chaos_plan.as_ref().map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read --chaos-plan {}: {e}", path.display()))
    });
    configs
        .into_iter()
        .map(|c| match &text {
            Some(t) => c.with("chaos_plan", t.as_str()),
            None => c.with("chaos_seed", cli.chaos_seed.expect("checked above")),
        })
        .collect()
}

/// Reconstructs the fault plan recorded by [`chaos_configs`], if any.
pub(crate) fn chaos_plan(config: &Config) -> Result<Option<FaultPlan>, String> {
    if let Some(text) = config.str("chaos_plan") {
        return FaultPlan::parse(text)
            .map(Some)
            .map_err(|e| format!("invalid chaos plan: {e}"));
    }
    if let Some(seed) = config.u64("chaos_seed") {
        return Ok(Some(FaultPlan::generate(seed, &PlanParams::default())));
    }
    Ok(None)
}

/// Threads `--topology` into each config, so the fabric is part of
/// every cache key (a leaf-spine run never collides with a
/// point-to-point run, and two spellings of the same fabric share
/// cells — the CLI validated and canonicalized the spec at parse
/// time). Absent flag ⇒ configs untouched ⇒ legacy digests untouched.
pub(crate) fn topology_configs(configs: Vec<Config>, cli: &Cli) -> Vec<Config> {
    let Some(spec) = &cli.topology else {
        return configs;
    };
    configs
        .into_iter()
        .map(|c| c.with("topology", spec.as_str()))
        .collect()
}

/// Rebuilds the fabric recorded by [`topology_configs`] (`None` for
/// legacy point-to-point cells).
pub(crate) fn topology_from(config: &Config) -> Result<Option<rdma_verbs::Topology>, String> {
    match config.str("topology") {
        Some(s) => rdma_verbs::Topology::from_spec(s)
            .map(Some)
            .map_err(|e| e.to_string()),
        None => Ok(None),
    }
}

/// Parses a device name stored in a config ("CX-4" … "CX-6").
pub(crate) fn device_kind(name: &str) -> Result<DeviceKind, String> {
    DeviceKind::ALL
        .iter()
        .copied()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown device '{name}'"))
}

/// Splits each successful record's rendered fragment on tabs, yielding
/// table rows in config order. Failed records are skipped (the harness
/// already reports them).
pub(crate) fn tab_rows<'r>(records: impl IntoIterator<Item = &'r RunRecord>) -> Vec<Vec<String>> {
    records
        .into_iter()
        .filter_map(|r| match &r.outcome {
            Outcome::Done(a) => Some(
                a.rendered
                    .trim_end_matches('\n')
                    .split('\t')
                    .map(str::to_string)
                    .collect(),
            ),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate experiment name");
        assert_eq!(names.len(), 21);
        assert!(names.contains(&"fig4_contention"));
        assert!(names.contains(&"noisy_neighbor"));
        assert!(names.contains(&"bankrupt_covert"));
    }

    #[test]
    fn every_experiment_has_params_and_description() {
        let cli = ragnar_harness::Cli::default();
        for exp in registry() {
            assert!(
                !exp.description().is_empty(),
                "{} lacks a description",
                exp.name()
            );
            assert!(
                !exp.params(&cli).is_empty(),
                "{} has an empty parameter space",
                exp.name()
            );
        }
    }

    #[test]
    fn device_kind_roundtrip() {
        for kind in DeviceKind::ALL {
            assert_eq!(device_kind(kind.name()), Ok(kind));
        }
        assert!(device_kind("CX-9").is_err());
    }
}
