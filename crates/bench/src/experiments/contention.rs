//! Fig. 4 (the Grain-I/II contention sweep) and the DESIGN.md §4
//! ablation studies.

use ragnar_core::re::contention::{measure_pair, FlowDirection, FlowSpec, GridConfig, PairConfig};
use ragnar_core::re::offset::{absolute_offset_sweep, mean_where, OffsetSweepConfig};
use ragnar_harness::{Artifact, Cli, Config, Experiment, RunRecord};
use rdma_verbs::{DeviceProfile, Opcode};
use sim_core::SimTime;

use crate::{fmt_pct, fmt_table};

fn opcode_from_str(name: &str) -> Result<Opcode, String> {
    Opcode::ALL
        .iter()
        .copied()
        .find(|op| op.to_string() == name)
        .ok_or_else(|| format!("unknown opcode '{name}'"))
}

fn direction_tag(dir: FlowDirection) -> &'static str {
    match dir {
        FlowDirection::FromClient => "client",
        FlowDirection::ReverseFromServer => "reverse",
    }
}

fn direction_from_tag(tag: &str) -> Result<FlowDirection, String> {
    match tag {
        "client" => Ok(FlowDirection::FromClient),
        "reverse" => Ok(FlowDirection::ReverseFromServer),
        other => Err(format!("unknown flow direction '{other}'")),
    }
}

/// Writes one flow of a contention pair into a config under a prefix.
fn set_flow(config: Config, prefix: &str, flow: FlowSpec) -> Config {
    config
        .with(&format!("{prefix}_op"), flow.opcode.to_string())
        .with(&format!("{prefix}_len"), flow.msg_len)
        .with(&format!("{prefix}_qp"), flow.qp_count)
        .with(&format!("{prefix}_dir"), direction_tag(flow.direction))
}

/// Reads a flow back out of a config.
fn get_flow(config: &Config, prefix: &str) -> Result<FlowSpec, String> {
    let field = |suffix: &str| format!("{prefix}_{suffix}");
    Ok(FlowSpec {
        opcode: opcode_from_str(
            config
                .str(&field("op"))
                .ok_or_else(|| format!("missing {prefix}_op"))?,
        )?,
        msg_len: config
            .u64(&field("len"))
            .ok_or_else(|| format!("missing {prefix}_len"))?,
        qp_count: config
            .u64(&field("qp"))
            .ok_or_else(|| format!("missing {prefix}_qp"))? as usize,
        direction: direction_from_tag(
            config
                .str(&field("dir"))
                .ok_or_else(|| format!("missing {prefix}_dir"))?,
        )?,
    })
}

fn phenomena() -> Vec<(&'static str, FlowSpec, FlowSpec)> {
    vec![
        (
            "\u{2460} small writes lose >50% vs reads",
            FlowSpec::client(Opcode::Write, 64, 1),
            FlowSpec::client(Opcode::Read, 512, 1),
        ),
        (
            "\u{2460} big writes crush reads (crossover \u{2265}512 B)",
            FlowSpec::client(Opcode::Read, 512, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
        ),
        (
            "\u{2461} atomics follow the write trend",
            FlowSpec::client(Opcode::AtomicFetchAdd, 8, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
        ),
        (
            "\u{2462} small-write pair: abnormal increment",
            FlowSpec::client(Opcode::Write, 64, 1),
            FlowSpec::client(Opcode::Write, 64, 1),
        ),
        (
            "\u{2463} reverse reads vs writes (Tx > Rx arbiter)",
            FlowSpec::reverse(Opcode::Read, 2048, 2),
            FlowSpec::client(Opcode::Write, 2048, 2),
        ),
    ]
}

/// Fig. 4: competition-caused bandwidth reduction across opcode pairs,
/// message sizes and QP counts — one config per highlighted phenomenon
/// and per grid cell, so the sweep parallelizes and caches cell-by-cell.
pub struct Fig4Contention;

impl Experiment for Fig4Contention {
    fn name(&self) -> &'static str {
        "fig4_contention"
    }

    fn description(&self) -> &'static str {
        "Grain-I/II contention grid and highlighted phenomena (pass --full for the >6000-combination scan)"
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        let mut configs = Vec::new();
        for (idx, (label, a, b)) in phenomena().into_iter().enumerate() {
            let config = Config::new()
                .with("kind", "phenomenon")
                .with("idx", idx)
                .with("label", label);
            configs.push(set_flow(set_flow(config, "a", a), "b", b));
        }
        let grid = if cli.flag("--full") {
            GridConfig::default()
        } else {
            GridConfig {
                sizes: vec![64, 512, 2048],
                qp_counts: vec![1, 2],
                shapes: vec![
                    (Opcode::Read, FlowDirection::FromClient),
                    (Opcode::Write, FlowDirection::FromClient),
                ],
                ..GridConfig::default()
            }
        };
        // Same enumeration order as `contention_grid`, so the report
        // rows match the pre-harness binary.
        for &(op_a, dir_a) in &grid.shapes {
            for &(op_b, dir_b) in &grid.shapes {
                for &size_a in &grid.sizes {
                    for &size_b in &grid.sizes {
                        for &qp_a in &grid.qp_counts {
                            for &qp_b in &grid.qp_counts {
                                let a = FlowSpec {
                                    opcode: op_a,
                                    msg_len: size_a,
                                    qp_count: qp_a,
                                    direction: dir_a,
                                };
                                let b = FlowSpec {
                                    opcode: op_b,
                                    msg_len: size_b,
                                    qp_count: qp_b,
                                    direction: dir_b,
                                };
                                let config = Config::new().with("kind", "cell");
                                configs.push(set_flow(set_flow(config, "a", a), "b", b));
                            }
                        }
                    }
                }
            }
        }
        super::chaos_configs(configs, cli)
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let a = get_flow(config, "a")?;
        let b = get_flow(config, "b")?;
        let profile = DeviceProfile::connectx4();
        let pair_cfg = PairConfig {
            seed,
            fault_plan: super::chaos_plan(config)?,
            ..PairConfig::default()
        };
        let o = measure_pair(&profile, a, b, &pair_cfg);
        let rendered = match config.str("kind") {
            Some("phenomenon") => {
                let label = config.str("label").ok_or("missing label")?;
                [
                    label.to_string(),
                    crate::fmt_bps(o.solo_a_bps),
                    crate::fmt_bps(o.duo_a_bps),
                    fmt_pct(o.reduction_a()),
                    fmt_pct(o.reduction_b()),
                    format!("{:.2}", o.total_ratio()),
                ]
                .join("\t")
            }
            _ => [
                format!("{} {}B x{}", a.opcode, a.msg_len, a.qp_count),
                format!("{} {}B x{}", b.opcode, b.msg_len, b.qp_count),
                fmt_pct(o.reduction_a()),
                fmt_pct(o.reduction_b()),
                format!("{:.2}", o.total_ratio()),
            ]
            .join("\t"),
        };
        Ok(Artifact::text(rendered)
            .with_metric("solo_a_bps", o.solo_a_bps)
            .with_metric("solo_b_bps", o.solo_b_bps)
            .with_metric("duo_a_bps", o.duo_a_bps)
            .with_metric("duo_b_bps", o.duo_b_bps)
            .with_metric("reduction_a", o.reduction_a())
            .with_metric("reduction_b", o.reduction_b())
            .with_metric("total_ratio", o.total_ratio()))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        let (phen, cells): (Vec<_>, Vec<_>) = records
            .iter()
            .partition(|r| r.config.str("kind") == Some("phenomenon"));
        out.push_str("## Fig. 4 — highlighted phenomena (CX-4)\n\n");
        out.push_str(&fmt_table(
            &[
                "phenomenon",
                "A solo",
                "A duo",
                "A loss",
                "B loss",
                "total ratio",
            ],
            &super::tab_rows(phen),
        ));
        let n_combos = cells.len();
        let scan_note = if n_combos > 1000 {
            ", full scan"
        } else {
            ", pass --full for the >6000-combination scan"
        };
        out.push_str(&format!(
            "\n## Fig. 4 — contention grid ({n_combos} combinations{scan_note})\n\n"
        ));
        out.push_str(&fmt_table(
            &[
                "induced flow (A)",
                "inducing flow (B)",
                "A loss",
                "B loss",
                "total",
            ],
            &super::tab_rows(cells),
        ));
    }
}

/// Ablation studies: each DESIGN.md §4 mechanism switched off or
/// resized, and the corresponding Key Finding re-measured. One config
/// per study.
pub struct Ablations;

impl Experiment for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn description(&self) -> &'static str {
        "DESIGN.md ablations: arbiter burst, NoC lane, Tx priority, TPU row buffers"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        (1u64..=4)
            .map(|study| Config::new().with("study", study))
            .collect()
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let study = config.u64("study").ok_or("missing study")?;
        let pair_cfg = PairConfig {
            seed,
            ..PairConfig::default()
        };
        let mut s = String::new();
        match study {
            1 => {
                s.push_str("## Ablation 1 — bulk-burst arbiter (KF1 crossover)\n\n");
                let mut rows = Vec::new();
                for burst in [0u32, 2, 8, 16] {
                    let mut p = DeviceProfile::connectx4();
                    p.bulk_burst_segments = burst;
                    let o = measure_pair(
                        &p,
                        FlowSpec::client(Opcode::Read, 512, 1),
                        FlowSpec::client(Opcode::Write, 2048, 1),
                        &pair_cfg,
                    );
                    rows.push(vec![
                        format!("burst {burst}"),
                        fmt_pct(o.reduction_a()),
                        fmt_pct(o.reduction_b()),
                    ]);
                }
                s.push_str(&fmt_table(&["config", "read loss", "write loss"], &rows));
                s.push_str("(burst 0 removes the crossover: reads stop losing to big writes)\n\n");
            }
            2 => {
                s.push_str("## Ablation 2 — NoC activation (KF2 abnormal increment)\n\n");
                let mut rows = Vec::new();
                for (label, speedup) in
                    [("NoC lane on (x0.45)", 0.45), ("NoC lane off (x1.0)", 1.0)]
                {
                    let mut p = DeviceProfile::connectx4();
                    p.noc_speedup = speedup;
                    let o = measure_pair(
                        &p,
                        FlowSpec::client(Opcode::Write, 64, 1),
                        FlowSpec::client(Opcode::Write, 64, 1),
                        &pair_cfg,
                    );
                    rows.push(vec![label.to_string(), format!("{:.2}", o.total_ratio())]);
                }
                s.push_str(&fmt_table(&["config", "combined / solo ratio"], &rows));
                s.push_str("(without the lane the combined throughput stays below 200%)\n\n");
            }
            3 => {
                s.push_str("## Ablation 3 — Tx-over-Rx strict priority (KF3)\n\n");
                let mut rows = Vec::new();
                for (label, strict) in [("strict Tx>Rx", true), ("round-robin", false)] {
                    let mut p = DeviceProfile::connectx4();
                    p.tx_strict_priority = strict;
                    let o = measure_pair(
                        &p,
                        FlowSpec::reverse(Opcode::Read, 2048, 2),
                        FlowSpec::client(Opcode::Write, 2048, 2),
                        &pair_cfg,
                    );
                    rows.push(vec![label.to_string(), fmt_pct(o.reduction_a())]);
                }
                s.push_str(&fmt_table(
                    &["egress arbitration", "reverse-read loss"],
                    &rows,
                ));
                s.push_str("(equalizing the arbiters erases the yellow-box asymmetry)\n\n");
            }
            4 => {
                s.push_str("## Ablation 4 — TPU row buffers (KF4 2048 B periodicity)\n\n");
                let offsets: Vec<u64> = (0..18432u64).step_by(64).collect();
                let mut rows = Vec::new();
                for buffers in [1usize, 2, 4] {
                    let mut p = DeviceProfile::connectx4();
                    p.tpu_row_buffers = buffers;
                    let cfg = OffsetSweepConfig {
                        offsets: offsets.clone(),
                        horizon: SimTime::from_micros(100),
                        seed,
                        ..OffsetSweepConfig::default()
                    };
                    let points = absolute_offset_sweep(&p, &cfg);
                    // Conflict parity is relative to offset 0's row for
                    // the probe's alternating pattern; with B buffers,
                    // rows congruent to 0 mod B ping-pong against row 0.
                    let cell = if buffers == 1 {
                        "no periodicity (all rows conflict)".to_string()
                    } else {
                        let hi =
                            mean_where(&points, |o| o >= 2048 && (o / 2048) % buffers as u64 == 0);
                        let lo =
                            mean_where(&points, |o| o >= 2048 && (o / 2048) % buffers as u64 != 0);
                        format!("{:.1} ns", hi - lo)
                    };
                    rows.push(vec![format!("{buffers} row buffer(s)"), cell]);
                }
                s.push_str(&fmt_table(
                    &["TPU geometry", "2048 B-periodic ULI swing"],
                    &rows,
                ));
            }
            other => return Err(format!("unknown ablation study {other}")),
        }
        Ok(Artifact::text(s))
    }
}
