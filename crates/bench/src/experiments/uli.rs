//! Figs. 5, 10 and 11: unit-latency-increase measurements — the
//! same/different-MR distinction and the folded inter-MR channel traces.

use std::fmt::Write as _;

use ragnar_core::covert::inter_mr::{default_config, run};
use ragnar_core::covert::{fold_by_phase, parse_bits, UliChannelConfig};
use ragnar_core::re::uli::mr_uli_sweep_with_faults;
use ragnar_harness::{Artifact, Cli, Config, Experiment, Outcome, RunRecord};
use rdma_verbs::{DeviceKind, DeviceProfile};

use crate::{fmt_table, sparkline};

/// Fig. 5: ULI vs. same/different remote MRs vs. message size
/// (alternating RDMA Reads on CX-4) — the Grain-III latency distinction.
pub struct Fig5MrUli;

impl Experiment for Fig5MrUli {
    fn name(&self) -> &'static str {
        "fig5_mr_uli"
    }

    fn description(&self) -> &'static str {
        "ULI vs. same/different remote MR vs. message size (Grain III)"
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        super::chaos_configs(
            vec![Config::new().with("device", DeviceKind::ConnectX4.name())],
            cli,
        )
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let sizes = [64u64, 128, 256, 512, 1024, 2048, 4096, 8192];
        let plan = super::chaos_plan(config)?;
        let points =
            mr_uli_sweep_with_faults(&DeviceProfile::preset(kind), &sizes, seed, plan.as_ref());
        let mut s = String::new();
        writeln!(
            s,
            "## Fig. 5 — ULI vs. same/different remote MR vs. message size ({})\n",
            kind.name()
        )
        .ok();
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{} B", p.msg_len),
                    format!("{:.1} ns", p.same_mr.mean),
                    format!("[{:.1}, {:.1}]", p.same_mr.p10, p.same_mr.p90),
                    format!("{:.1} ns", p.diff_mr.mean),
                    format!("[{:.1}, {:.1}]", p.diff_mr.p10, p.diff_mr.p90),
                    format!("{:.1} ns", p.diff_mr.mean - p.same_mr.mean),
                ]
            })
            .collect();
        s.push_str(&fmt_table(
            &[
                "msg size",
                "same-MR ULI",
                "same p10/p90",
                "diff-MR ULI",
                "diff p10/p90",
                "gap",
            ],
            &rows,
        ));
        writeln!(
            s,
            "\nThe different-MR gap is the TPU protection-context reload — the"
        )
        .ok();
        writeln!(s, "paper's Grain-III latency distinction (its Fig. 5).").ok();
        Ok(Artifact::text(s))
    }
}

/// Fig. 10: covert bits decoded from ULI — the folded pattern under a
/// periodically switching bitstream (inter-MR channel, CX-4).
pub struct Fig10UliDecode;

impl Experiment for Fig10UliDecode {
    fn name(&self) -> &'static str {
        "fig10_uli_decode"
    }

    fn description(&self) -> &'static str {
        "folded receiver ULI over one period of two covert bits (inter-MR, CX-4)"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        vec![Config::new()
            .with("device", DeviceKind::ConnectX4.name())
            .with("bits", 256u64)]
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let n_bits = config.u64("bits").ok_or("missing bits")? as usize;
        let cfg = UliChannelConfig {
            seed,
            ..default_config(kind)
        };
        // Periodic 1010… bitstream, folded over two bit periods.
        let bits = parse_bits(&"10".repeat(n_bits / 2));
        let r = run(kind, &bits, &cfg);
        let samples: Vec<_> = r.rx_samples.iter().map(|s| (s.at, s.uli_ns)).collect();
        let folded = fold_by_phase(&samples, r.start, cfg.bit_period * 2, 32);

        let mut s = String::new();
        writeln!(
            s,
            "## Fig. 10 — folded receiver ULI over one period of two covert bits ({})\n",
            kind.name()
        )
        .ok();
        writeln!(s, "  folded ULI   {}", sparkline(&folded)).ok();
        let hi = folded.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = folded.iter().cloned().fold(f64::INFINITY, f64::min);
        writeln!(
            s,
            "  levels: bit 1 plateau ≈ {hi:.0} ns, bit 0 plateau ≈ {lo:.0} ns"
        )
        .ok();
        writeln!(
            s,
            "  decode over {} bits: {} errors ({:.2}%)",
            r.report.bits_sent,
            r.report.bit_errors,
            r.report.error_rate() * 100.0
        )
        .ok();
        writeln!(
            s,
            "\nThe ULI distinction stays stable across the whole transmission,"
        )
        .ok();
        writeln!(s, "as the paper observes over tens of seconds.").ok();
        Ok(Artifact::text(s)
            .with_metric("bit_errors", r.report.bit_errors as u64)
            .with_metric("error_rate", r.report.error_rate()))
    }
}

/// Fig. 11: the inter-MR resource channel on CX-4/5/6 — folded,
/// normalized receiver ULI, one config per NIC generation.
pub struct Fig11InterMr;

impl Experiment for Fig11InterMr {
    fn name(&self) -> &'static str {
        "fig11_inter_mr"
    }

    fn description(&self) -> &'static str {
        "inter-MR channel folded normalized ULI per NIC generation"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        DeviceKind::ALL
            .iter()
            .map(|kind| {
                Config::new()
                    .with("device", kind.name())
                    .with("bits", 256u64)
            })
            .collect()
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let n_bits = config.u64("bits").ok_or("missing bits")? as usize;
        let bits = parse_bits(&"10".repeat(n_bits / 2));
        let cfg = UliChannelConfig {
            seed,
            ..default_config(kind)
        };
        let r = run(kind, &bits, &cfg);
        let samples: Vec<_> = r.rx_samples.iter().map(|s| (s.at, s.uli_ns)).collect();
        let folded = fold_by_phase(&samples, r.start, cfg.bit_period * 2, 32);
        // Normalize to [0, 1] as the paper's Y axes do.
        let hi = folded.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = folded.iter().cloned().fold(f64::INFINITY, f64::min);
        let norm: Vec<f64> = folded
            .iter()
            .map(|v| (v - lo) / (hi - lo).max(1e-9))
            .collect();
        let rendered = format!(
            "{kind}: {}  (tx {} B reads, SQ {}, bit {:.1} µs, err {:.2}%)\n",
            sparkline(&norm),
            cfg.tx_msg_len,
            cfg.tx_depth,
            cfg.bit_period.as_micros_f64(),
            r.report.error_rate() * 100.0
        );
        Ok(Artifact::text(rendered).with_metric("error_rate", r.report.error_rate()))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        out.push_str("## Fig. 11 — inter-MR channel, folded normalized ULI (CX-4/5/6)\n\n");
        for record in records {
            if let Outcome::Done(artifact) = &record.outcome {
                out.push_str(&artifact.rendered);
            }
        }
    }
}
