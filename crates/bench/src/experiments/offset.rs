//! Figs. 6–8: the Grain-IV ULI-vs-offset effects (absolute offset at
//! 64 B and 1024 B reads, and the relative-offset prefetch interaction).

use std::fmt::Write as _;

use ragnar_core::re::offset::{
    absolute_offset_sweep, mean_where, relative_offset_sweep, OffsetSweepConfig,
};
use ragnar_harness::{Artifact, Cli, Config, Experiment};
use rdma_verbs::DeviceProfile;
use sim_core::SimTime;

use crate::sparkline;

fn sweep_config(config: &Config, seed: u64) -> Result<(OffsetSweepConfig, usize), String> {
    let step = config.u64("step").ok_or("missing step")? as usize;
    let span = config.u64("span").ok_or("missing span")?;
    let cfg = OffsetSweepConfig {
        msg_len: config.u64("msg_len").ok_or("missing msg_len")?,
        offsets: (0..span).step_by(step).collect(),
        horizon: SimTime::from_micros(config.u64("horizon_us").ok_or("missing horizon_us")?),
        seed,
        ..OffsetSweepConfig::default()
    };
    Ok((cfg, step))
}

/// Fig. 6: ULI vs. absolute address offset, 64 B reads, CX-4 — the
/// 8 B / 64 B / 2048 B power-of-two periodicities.
pub struct Fig6AbsOffset;

impl Experiment for Fig6AbsOffset {
    fn name(&self) -> &'static str {
        "fig6_abs_offset"
    }

    fn description(&self) -> &'static str {
        "ULI vs. absolute offset, 64 B reads (Grain-IV periodicities)"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        // 4 B resolution over 0..4096, like the paper's sweep.
        vec![Config::new()
            .with("msg_len", 64u64)
            .with("step", 4u64)
            .with("span", 4096u64)
            .with("horizon_us", 120u64)]
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let (cfg, step) = sweep_config(config, seed)?;
        let points = absolute_offset_sweep(&DeviceProfile::connectx4(), &cfg);
        let mut s = String::new();
        writeln!(
            s,
            "## Fig. 6 — ULI vs. absolute offset (64 B reads, CX-4, step {step} B)\n"
        )
        .ok();
        let means: Vec<f64> = points.iter().map(|p| p.uli.mean).collect();
        // Zoomed view: the first 512 B at full 4 B resolution (the 8 B
        // and 64 B drop structure).
        writeln!(s, "zoom 0–512 B   | {}", sparkline(&means[..512 / step])).ok();
        // Full range at 16 B granularity, one row per 2048 B row buffer.
        let coarse: Vec<f64> = means.iter().step_by(4).cloned().collect();
        let per_row = 2048 / (step * 4);
        for (i, chunk) in coarse.chunks(per_row).enumerate() {
            writeln!(s, "{:>5} B row    | {}", i * 2048, sparkline(chunk)).ok();
        }

        let a64 = mean_where(&points, |o| o % 64 == 0);
        let a8 = mean_where(&points, |o| o % 8 == 0 && o % 64 != 0);
        let rest = mean_where(&points, |o| o % 8 != 0);
        writeln!(s, "\nmean ULI by alignment class:").ok();
        writeln!(s, "  64 B-aligned : {a64:.1} ns   (deep drops)").ok();
        writeln!(s, "   8 B-aligned : {a8:.1} ns   (stable drops)").ok();
        writeln!(s, "   unaligned   : {rest:.1} ns").ok();
        let even_row = mean_where(&points, |o| (o / 2048) % 2 == 0 && o % 64 == 0);
        let odd_row = mean_where(&points, |o| (o / 2048) % 2 == 1 && o % 64 == 0);
        writeln!(
            s,
            "  2048 B rows  : conflicting {even_row:.1} ns vs buffered {odd_row:.1} ns"
        )
        .ok();
        Ok(Artifact::text(s)
            .with_metric("mean_64b_aligned_ns", a64)
            .with_metric("mean_8b_aligned_ns", a8)
            .with_metric("mean_unaligned_ns", rest))
    }
}

/// Fig. 7: same sweep at 1024 B reads — the pattern changes with
/// message size but keeps the power-of-two periodicity.
pub struct Fig7AbsOffset1k;

impl Experiment for Fig7AbsOffset1k {
    fn name(&self) -> &'static str {
        "fig7_abs_offset_1k"
    }

    fn description(&self) -> &'static str {
        "ULI vs. absolute offset, 1024 B reads (size-dependent Grain-IV pattern)"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        vec![Config::new()
            .with("msg_len", 1024u64)
            .with("step", 4u64)
            .with("span", 4096u64)
            .with("horizon_us", 250u64)]
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let (cfg, step) = sweep_config(config, seed)?;
        let points = absolute_offset_sweep(&DeviceProfile::connectx4(), &cfg);
        let mut s = String::new();
        writeln!(
            s,
            "## Fig. 7 — ULI vs. absolute offset (1024 B reads, CX-4)\n"
        )
        .ok();
        let means: Vec<f64> = points.iter().map(|p| p.uli.mean).collect();
        writeln!(s, "zoom 0–512 B   | {}", sparkline(&means[..512 / step])).ok();
        let coarse: Vec<f64> = means.iter().step_by(4).cloned().collect();
        let per_row = 2048 / (step * 4);
        for (i, chunk) in coarse.chunks(per_row).enumerate() {
            writeln!(s, "{:>5} B row    | {}", i * 2048, sparkline(chunk)).ok();
        }
        let a64 = mean_where(&points, |o| o % 64 == 0);
        let rest = mean_where(&points, |o| o % 8 != 0);
        writeln!(
            s,
            "\n64 B-aligned mean {a64:.1} ns vs unaligned {rest:.1} ns"
        )
        .ok();
        writeln!(
            s,
            "(1024 B reads span 16+ TPU tokens, so the relative drop is"
        )
        .ok();
        writeln!(
            s,
            "shallower than Fig. 6's — matching the paper's observation that"
        )
        .ok();
        writeln!(
            s,
            "the pattern varies with message size while keeping 2^k period.)"
        )
        .ok();
        Ok(Artifact::text(s)
            .with_metric("mean_64b_aligned_ns", a64)
            .with_metric("mean_unaligned_ns", rest))
    }
}

/// Fig. 8: ULI vs. *relative* offset between consecutive 64 B reads —
/// the prefetch-window interaction in the TPU.
pub struct Fig8RelOffset;

impl Experiment for Fig8RelOffset {
    fn name(&self) -> &'static str {
        "fig8_rel_offset"
    }

    fn description(&self) -> &'static str {
        "ULI vs. relative offset between consecutive reads (TPU prefetch window)"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        vec![Config::new()
            .with("msg_len", 64u64)
            .with("step", 16u64)
            .with("span", 4096u64)
            .with("horizon_us", 120u64)]
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let (cfg, step) = sweep_config(config, seed)?;
        let points = relative_offset_sweep(&DeviceProfile::connectx4(), &cfg);
        let mut s = String::new();
        writeln!(
            s,
            "## Fig. 8 — ULI vs. relative offset (64 B reads, CX-4)\n"
        )
        .ok();
        let means: Vec<f64> = points.iter().map(|p| p.uli.mean).collect();
        let per_row = 2048 / step;
        for (i, chunk) in means.chunks(per_row).enumerate() {
            writeln!(s, "{:>5} B | {}", i * 2048, sparkline(chunk)).ok();
        }
        let near_points: Vec<f64> = points
            .iter()
            .filter(|p| p.offset > 0 && p.offset <= 256)
            .map(|p| p.uli.mean)
            .collect();
        let far_points: Vec<f64> = points
            .iter()
            .filter(|p| p.offset >= 1024)
            .map(|p| p.uli.mean)
            .collect();
        let near = near_points.iter().sum::<f64>() / near_points.len() as f64;
        let far = far_points.iter().sum::<f64>() / far_points.len() as f64;
        writeln!(s, "\nnear deltas (≤256 B, prefetch window): {near:.1} ns").ok();
        writeln!(s, "far deltas  (≥1024 B)                : {far:.1} ns").ok();
        writeln!(
            s,
            "\nThe relative effect differs from the absolute effect of Fig. 6 —"
        )
        .ok();
        writeln!(
            s,
            "the mutual interaction among consecutive packets in the TPU."
        )
        .ok();
        Ok(Artifact::text(s)
            .with_metric("near_mean_ns", near)
            .with_metric("far_mean_ns", far))
    }
}
