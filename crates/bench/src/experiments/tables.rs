//! Tables II & III: the simulated testbed and the CX-4/5/6 parameter
//! sheet — a deterministic, seed-free report.

use std::fmt::Write as _;

use ragnar_harness::{Artifact, Cli, Config, Experiment};
use rdma_verbs::{DeviceKind, DeviceProfile, HostSpec};

use crate::fmt_table;

/// Tables II and III of the paper.
pub struct Table23;

impl Experiment for Table23 {
    fn name(&self) -> &'static str {
        "table2_3"
    }

    fn description(&self) -> &'static str {
        "simulated test environment and NIC parameter sheet"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        vec![Config::new().with("tables", "2+3")]
    }

    fn run(&self, _config: &Config, _seed: u64) -> Result<Artifact, String> {
        let mut s = String::new();
        writeln!(s, "## Table II — simulated test environment\n").ok();
        let rows: Vec<Vec<String>> = HostSpec::testbed()
            .into_iter()
            .map(|h| {
                vec![
                    h.name.to_string(),
                    h.processor.to_string(),
                    h.rnics
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(","),
                    h.os.to_string(),
                    format!("{} GiB", h.ram_gib),
                ]
            })
            .collect();
        s.push_str(&fmt_table(
            &["Host", "Processor", "RNIC", "OS", "RAM"],
            &rows,
        ));

        writeln!(s, "\n## Table III — network adapter parameter sheet\n").ok();
        let rows: Vec<Vec<String>> = DeviceKind::ALL
            .iter()
            .map(|&kind| {
                let p = DeviceProfile::preset(kind);
                let pcie = match kind {
                    DeviceKind::ConnectX4 | DeviceKind::ConnectX5 => "PCIe 3.0 x8",
                    DeviceKind::ConnectX6 => "PCIe 4.0 x16",
                };
                vec![
                    kind.name().to_string(),
                    format!("{} Gbps", p.port_rate_bps / 1_000_000_000),
                    pcie.to_string(),
                    format!("{} Gbps eff.", p.pcie_rate_bps / 1_000_000_000),
                    format!("{} banks", p.tpu_banks),
                    format!("{}x{}-way MPT", p.mpt_cache_entries, p.mpt_cache_ways),
                ]
            })
            .collect();
        s.push_str(&fmt_table(
            &[
                "Feature",
                "Speed",
                "PCIe Interface",
                "PCIe eff.",
                "TPU",
                "MPT cache",
            ],
            &rows,
        ));
        Ok(Artifact::text(s))
    }
}
