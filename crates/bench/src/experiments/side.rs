//! Figs. 12 and 13: the side-channel attacks — database fingerprinting
//! and the disaggregated-memory snooping attack.

use std::fmt::Write as _;

use ragnar_core::side::fingerprint::{run as fingerprint_run, FingerprintConfig, Pattern};
use ragnar_core::side::snoop::{collect_pools, evaluate, mean_trace, SnoopConfig};
use ragnar_harness::{Artifact, Cli, Config, Experiment, Outcome, RunRecord};
use rdma_verbs::DeviceKind;

use crate::sparkline;

/// Fig. 12 + Algorithm 1: fingerprinting shuffle/join operations of the
/// distributed database from the attacker's monitored bandwidth.
pub struct Fig12Fingerprint;

impl Experiment for Fig12Fingerprint {
    fn name(&self) -> &'static str {
        "fig12_fingerprint"
    }

    fn description(&self) -> &'static str {
        "shuffle/join fingerprint from attacker-side bandwidth (CX-4)"
    }

    fn params(&self, _cli: &Cli) -> Vec<Config> {
        vec![Config::new().with("device", DeviceKind::ConnectX4.name())]
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let cfg = FingerprintConfig {
            seed,
            ..FingerprintConfig::default()
        };
        let r = fingerprint_run(kind, &cfg);
        let mut s = String::new();
        writeln!(
            s,
            "## Fig. 12 — shuffle/join fingerprint ({})\n",
            kind.name()
        )
        .ok();
        writeln!(s, "attacker bandwidth: {}", sparkline(&r.monitor.values())).ok();

        // Ground-truth strip aligned with the samples.
        let truth: String = r
            .monitor
            .points()
            .iter()
            .map(|&(t, _)| match r.truth.label_at(t) {
                Some("shuffle") => 'S',
                Some("join") => 'J',
                Some("idle") => '.',
                _ => ' ',
            })
            .collect();
        writeln!(s, "ground truth:       {truth}").ok();

        let detected: String = r
            .monitor
            .points()
            .iter()
            .map(|&(t, _)| {
                r.detections
                    .iter()
                    .find(|&&(dt, _)| dt >= t)
                    .map(|&(_, p)| match p {
                        Pattern::Shuffle => 'S',
                        Pattern::Join => 'J',
                        Pattern::Null => '.',
                    })
                    .unwrap_or(' ')
            })
            .collect();
        writeln!(s, "detected:           {detected}").ok();
        writeln!(
            s,
            "\nplateau-like drop during shuffle, tooth-like during join;"
        )
        .ok();
        writeln!(
            s,
            "window classification accuracy: {:.1}%",
            r.accuracy * 100.0
        )
        .ok();
        Ok(Artifact::text(s).with_metric("accuracy", r.accuracy))
    }
}

/// Fig. 13(a): the attacker's ULI traces under the candidate victim
/// addresses — one config per candidate, so the 17 trace collections
/// run in parallel and cache independently.
pub struct Fig13Snoop;

impl Experiment for Fig13Snoop {
    fn name(&self) -> &'static str {
        "fig13_snoop"
    }

    fn description(&self) -> &'static str {
        "attacker ULI traces per candidate victim address (--coarse for a fast sweep)"
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        // Full resolution (257 observation offsets) is the default;
        // --coarse gives a fast 17-point sweep.
        let step: u64 = if cli.flag("--coarse") { 64 } else { 4 };
        SnoopConfig::default()
            .candidates
            .iter()
            .map(|&cand| {
                Config::new()
                    .with("candidate", cand)
                    .with("step", step)
                    .with("device", DeviceKind::ConnectX4.name())
            })
            .collect()
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let cand = config.u64("candidate").ok_or("missing candidate")?;
        let cfg = SnoopConfig {
            step: config.u64("step").ok_or("missing step")?,
            seed,
            ..SnoopConfig::default()
        };
        let pools = collect_pools(kind, cand, &cfg);
        let trace = mean_trace(&pools);
        let peak_idx = trace
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let peak_offset = peak_idx as u64 * cfg.step;
        let line = format!(
            "victim @{cand:>4} B: {}  peak @{peak_offset:>4} B {}\n",
            sparkline(&trace),
            if peak_offset / 64 == cand.min(1024) / 64 || (cand == 1024 && peak_offset < 64) {
                "<- matches"
            } else {
                ""
            }
        );
        Ok(Artifact::text(line).with_metric("peak_offset", peak_offset))
    }

    fn summarize(&self, records: &[RunRecord], out: &mut String) {
        let step = records
            .first()
            .and_then(|r| r.config.u64("step"))
            .unwrap_or(4);
        let offsets = SnoopConfig {
            step,
            ..SnoopConfig::default()
        }
        .observation_offsets()
        .len();
        out.push_str(&format!(
            "## Fig. 13(a) — attacker traces, {offsets} observation offsets x {} candidates (CX-4)\n\n",
            records.len()
        ));
        for record in records {
            if let Outcome::Done(artifact) = &record.outcome {
                out.push_str(&artifact.rendered);
            }
        }
        out.push_str("\nEach trace's elevation marks the TPU bank the victim's secret\n");
        out.push_str("address occupies; candidates 0 B and 1024 B share a bank and are\n");
        out.push_str("separated by the prefetch-window asymmetry (classifier input).\n");
    }
}

/// Fig. 13(b): the 17-way classifier recovering the victim's access
/// address from the ULI traces — step ❸ of the snooping attack. The
/// paper trains a ResNet18 on 6720 traces and reports 95.6 % test
/// accuracy; this reproduction trains an MLP (substitution recorded in
/// DESIGN.md) on the same trace volume.
pub struct Fig13Classifier;

impl Experiment for Fig13Classifier {
    fn name(&self) -> &'static str {
        "fig13_classifier"
    }

    fn description(&self) -> &'static str {
        "17-way victim-address classification from ULI traces (--quick for a fast check)"
    }

    fn params(&self, cli: &Cli) -> Vec<Config> {
        // --quick: 17-point traces and a smaller dataset.
        let (step, train_per_class, test_per_class) = if cli.quick {
            (64u64, 60u64, 20u64)
        } else {
            // 17 × 395 = 6715 ≈ the paper's 6720 training traces.
            (SnoopConfig::default().step, 395, 85)
        };
        vec![Config::new()
            .with("step", step)
            .with("train_per_class", train_per_class)
            .with("test_per_class", test_per_class)
            .with("device", DeviceKind::ConnectX4.name())]
    }

    fn run(&self, config: &Config, seed: u64) -> Result<Artifact, String> {
        let kind = super::device_kind(config.str("device").ok_or("missing device")?)?;
        let cfg = SnoopConfig {
            step: config.u64("step").ok_or("missing step")?,
            seed,
            ..SnoopConfig::default()
        };
        let train_per_class = config
            .u64("train_per_class")
            .ok_or("missing train_per_class")? as usize;
        let test_per_class = config
            .u64("test_per_class")
            .ok_or("missing test_per_class")? as usize;
        let mut s = String::new();
        writeln!(
            s,
            "## Fig. 13(b) — {}-way classification of {}-dim traces",
            cfg.candidates.len(),
            cfg.observation_offsets().len()
        )
        .ok();
        let report = evaluate(kind, &cfg, train_per_class, test_per_class);
        writeln!(
            s,
            "train {} traces, test {} traces",
            report.train_size, report.test_size
        )
        .ok();
        writeln!(
            s,
            "MLP accuracy: {:.2}%   (paper: 95.6% with ResNet18)",
            report.mlp_accuracy * 100.0
        )
        .ok();
        writeln!(
            s,
            "1-D CNN (conv-pool-conv-dense): {:.2}%",
            report.cnn_accuracy * 100.0
        )
        .ok();
        writeln!(
            s,
            "nearest-centroid baseline: {:.2}%",
            report.template_accuracy * 100.0
        )
        .ok();
        writeln!(s, "\nconfusion matrix (rows = truth, cols = prediction):").ok();
        for (i, row) in report.confusion.iter().enumerate() {
            let line: Vec<String> = row.iter().map(|c| format!("{c:>3}")).collect();
            writeln!(s, "  {:>4} B | {}", i * 64, line.join(" ")).ok();
        }
        Ok(Artifact::text(s)
            .with_metric("mlp_accuracy", report.mlp_accuracy)
            .with_metric("cnn_accuracy", report.cnn_accuracy)
            .with_metric("template_accuracy", report.template_accuracy))
    }
}
