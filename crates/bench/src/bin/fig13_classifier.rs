//! Fig. 13(b): the 17-way classifier recovering the victim's access
//! address from 257-dimensional ULI traces — step ❸ of the snooping
//! attack. The paper trains a ResNet18 on 6720 traces and reports 95.6 %
//! test accuracy; this reproduction trains an MLP (substitution recorded
//! in DESIGN.md) on the same trace volume.

use ragnar_core::side::snoop::{evaluate, SnoopConfig};
use rdma_verbs::DeviceKind;

fn main() {
    // --quick: 17-point traces and a smaller dataset for a fast check.
    let quick = std::env::args().any(|a| a == "--quick");
    let (cfg, train_per_class, test_per_class) = if quick {
        (
            SnoopConfig {
                step: 64,
                ..SnoopConfig::default()
            },
            60,
            20,
        )
    } else {
        (
            SnoopConfig::default(),
            // 17 × 395 = 6715 ≈ the paper's 6720 training traces.
            395,
            85,
        )
    };
    println!(
        "## Fig. 13(b) — {}-way classification of {}-dim traces",
        cfg.candidates.len(),
        cfg.observation_offsets().len()
    );
    let report = evaluate(DeviceKind::ConnectX4, &cfg, train_per_class, test_per_class);
    println!(
        "train {} traces, test {} traces",
        report.train_size, report.test_size
    );
    println!(
        "MLP accuracy: {:.2}%   (paper: 95.6% with ResNet18)",
        report.mlp_accuracy * 100.0
    );
    println!(
        "1-D CNN (conv-pool-conv-dense): {:.2}%",
        report.cnn_accuracy * 100.0
    );
    println!(
        "nearest-centroid baseline: {:.2}%",
        report.template_accuracy * 100.0
    );
    println!("\nconfusion matrix (rows = truth, cols = prediction):");
    for (i, row) in report.confusion.iter().enumerate() {
        let line: Vec<String> = row.iter().map(|c| format!("{c:>3}")).collect();
        println!("  {:>4} B | {}", i * 64, line.join(" "));
    }
}
