//! Fig. 13(b): the 17-way classifier recovering the victim's access address.
//!
//! Thin wrapper over `ragnar_bench::experiments::side::Fig13Classifier`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::side::Fig13Classifier)
}
