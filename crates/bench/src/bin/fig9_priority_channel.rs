//! Fig. 9: the Grain-I/II priority-based covert channel on CX-4/5/6.
//!
//! Thin wrapper over `ragnar_bench::experiments::covert::Fig9PriorityChannel`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::covert::Fig9PriorityChannel)
}
