//! Fig. 9: the Grain-I/II priority-based covert channel on CX-4/5/6,
//! transmitting the paper's bitstream `1101111101010010` — the
//! significant drop is bit 0, the slight drop bit 1.

use ragnar_bench::{fmt_bps, sparkline};
use ragnar_core::covert::priority::{run, PriorityChannelConfig};
use ragnar_core::covert::{parse_bits, FIG9_BITS};
use rdma_verbs::DeviceKind;
use sim_core::SimDuration;

fn main() {
    // The paper's channel runs at 1 s per bit (ethtool-granularity
    // counters). Everything is time-scaled (DESIGN.md): rates ÷ 200,
    // so the simulated second of each bit stays tractable while every
    // contention ratio is preserved.
    let paper_rate = std::env::args().any(|a| a == "--paper-rate");
    let cfg = if paper_rate {
        PriorityChannelConfig {
            scale: 0.005,
            bit_period: SimDuration::from_secs(1),
            sample_interval: SimDuration::from_millis(100),
            ..PriorityChannelConfig::default()
        }
    } else {
        PriorityChannelConfig::default()
    };
    let bits = parse_bits(FIG9_BITS);
    println!("## Fig. 9 — priority-based covert channel, bitstream {FIG9_BITS}\n");
    for kind in DeviceKind::ALL {
        let r = run(kind, &bits, &cfg);
        let decoded: String = r
            .report
            .decoded
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        println!("{kind}:");
        println!("  rx bandwidth  {}", sparkline(&r.rx_bandwidth.values()));
        println!("  bit levels    {}", sparkline(&r.report.levels));
        println!(
            "  decoded       {decoded}   errors {}  raw {}",
            r.report.bit_errors,
            fmt_bps(r.report.raw_bandwidth_bps),
        );
    }
    if !paper_rate {
        println!("\n(bit period {:?}-scaled for runtime; pass --paper-rate for the", cfg.bit_period);
        println!(" paper's 1 s/bit setting, which reports ~1 bps as in Table V)");
    }
}
