//! Channel-capacity sweep: how the paper's best parameter combinations arise.
//!
//! Thin wrapper over `ragnar_bench::experiments::covert::CapacityStudy`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::covert::CapacityStudy)
}
