//! Channel-capacity sweep: how the paper's "best parameter combinations"
//! (footnotes 10–11) arise — raw bandwidth rises as the bit period
//! shrinks, errors explode past the receiver's sampling limit, and the
//! effective bandwidth peaks in between.

use ragnar_bench::{fmt_bps, fmt_pct, print_table};
use ragnar_core::covert::capacity::{best_operating_point, capacity_sweep, UliChannel};
use rdma_verbs::DeviceKind;

fn main() {
    let kind = DeviceKind::ConnectX5;
    let periods: Vec<u64> = vec![4_000, 8_000, 12_000, 15_700, 24_000, 48_000, 96_000];
    for (label, channel) in [
        ("inter-MR (Grain III)", UliChannel::InterMr),
        ("intra-MR (Grain IV)", UliChannel::IntraMr),
    ] {
        println!("## Capacity sweep — {label} channel, CX-5\n");
        let points = capacity_sweep(kind, channel, &periods, 192);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1} us", p.bit_period_ns as f64 / 1000.0),
                    fmt_bps(p.raw_bps),
                    fmt_pct(p.error_rate),
                    fmt_bps(p.effective_bps),
                ]
            })
            .collect();
        print_table(&["bit period", "raw BW", "error", "effective BW"], &rows);
        let best = best_operating_point(&points);
        println!(
            "\nbest operating point: {:.1} us per bit -> {} effective\n",
            best.bit_period_ns as f64 / 1000.0,
            fmt_bps(best.effective_bps)
        );
    }
    println!("The Table-V bit periods sit at (or near) these optima — the same");
    println!("calibration the paper performed per NIC.");
}
