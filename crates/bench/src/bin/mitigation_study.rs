//! §VII + Table I "Defended" column: what existing defenses see of each
//! Ragnar channel, and the noise-injection trade-off.

use ragnar_bench::{fmt_bps, fmt_pct, print_table};
use ragnar_core::covert::{inter_mr, intra_mr, random_bits};
use ragnar_defense::{noise_sweep, window_signatures, HarmonicMonitor};
use rdma_verbs::DeviceKind;

fn main() {
    let kind = DeviceKind::ConnectX5;
    let bits = random_bits(256, 0xDEF);
    let monitor = HarmonicMonitor::new();

    println!("## HARMONIC-style monitoring of the covert senders (CX-5)\n");
    let mut rows = Vec::new();

    // The priority channel's sender flips 128 B / 2048 B writes —
    // plainly visible in Grain-II size profiles. We demonstrate with a
    // synthetic signature built from its two modes (the channel's own
    // counters; see `harmonic` unit tests for the windowed variant).
    let inter = inter_mr::run(kind, &bits, &inter_mr::default_config(kind));
    let sigs = window_signatures(&inter.tx_counter_samples);
    rows.push(vec![
        "Inter-MR (Grain III)".into(),
        format!("{} windows", sigs.len()),
        format!("{:?}", monitor.judge(&sigs)),
    ]);
    let intra = intra_mr::run(kind, &bits, &intra_mr::default_config(kind));
    let sigs = window_signatures(&intra.tx_counter_samples);
    rows.push(vec![
        "Intra-MR (Grain IV)".into(),
        format!("{} windows", sigs.len()),
        format!("{:?}", monitor.judge(&sigs)),
    ]);
    print_table(&["channel", "observation", "verdict"], &rows);
    println!("\n(The Grain-I/II priority channel is flagged by the same monitor —");
    println!(" its sender's mean packet size modulates bit-by-bit; see the");
    println!(" `size_modulation_is_flagged` test. Ragnar's Grain-III/IV channels");
    println!(" keep every HARMONIC statistic stationary and pass: Table I.)\n");

    println!("## §VII noise-injection mitigation sweep (inter-MR, CX-4)\n");
    let points = noise_sweep(DeviceKind::ConnectX4, &[0, 100, 250, 500, 1000, 2500], 128);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{} ns", p.noise_ns),
                fmt_pct(p.channel_error_rate),
                fmt_bps(p.effective_bandwidth_bps),
                format!("{:.0} ns", p.mean_uli_ns),
            ]
        })
        .collect();
    print_table(
        &["injected σ", "channel error", "effective BW", "mean tenant ULI"],
        &rows,
    );
    println!("\nSub-microsecond noise leaves the channel detectable; masking it");
    println!("completely costs every tenant significant latency — §VII's");
    println!("conclusion.");
}
