//! §VII + Table I: what existing defenses see of each Ragnar channel.
//!
//! Thin wrapper over `ragnar_bench::experiments::defense::MitigationStudy`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::defense::MitigationStudy)
}
