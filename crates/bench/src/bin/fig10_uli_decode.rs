//! Fig. 10: covert bits decoded from unit latency increase — the folded
//! ULI pattern under a periodically switching bitstream (inter-MR
//! channel, CX-4).

use ragnar_bench::sparkline;
use ragnar_core::covert::inter_mr::{default_config, run};
use ragnar_core::covert::{fold_by_phase, parse_bits};
use rdma_verbs::DeviceKind;

fn main() {
    let kind = DeviceKind::ConnectX4;
    let cfg = default_config(kind);
    // Periodic 1010… bitstream, folded over two bit periods.
    let bits = parse_bits(&"10".repeat(128));
    let r = run(kind, &bits, &cfg);
    let samples: Vec<_> = r.rx_samples.iter().map(|s| (s.at, s.uli_ns)).collect();
    let folded = fold_by_phase(&samples, r.start, cfg.bit_period * 2, 32);

    println!("## Fig. 10 — folded receiver ULI over one period of two covert bits (CX-4)\n");
    println!("  folded ULI   {}", sparkline(&folded));
    let hi = folded.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lo = folded.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("  levels: bit 1 plateau ≈ {hi:.0} ns, bit 0 plateau ≈ {lo:.0} ns");
    println!(
        "  decode over {} bits: {} errors ({:.2}%)",
        r.report.bits_sent,
        r.report.bit_errors,
        r.report.error_rate() * 100.0
    );
    println!("\nThe ULI distinction stays stable across the whole transmission,");
    println!("as the paper observes over tens of seconds.");
}
