//! Fig. 10: covert bits decoded from unit latency increase (inter-MR channel, CX-4).
//!
//! Thin wrapper over `ragnar_bench::experiments::uli::Fig10UliDecode`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::uli::Fig10UliDecode)
}
