//! Fig. 4: the Grain-I/II contention sweep — competition-caused
//! bandwidth reduction across opcode pairs, message sizes and QP counts.
//!
//! By default runs a representative sub-grid plus the four highlighted
//! phenomena; pass `--full` for the full >6000-combination scan (the
//! paper's benchmark).

use ragnar_bench::{fmt_bps, fmt_pct, print_table};
use ragnar_core::re::contention::{
    contention_grid, measure_pair, FlowDirection, FlowSpec, GridConfig, PairConfig,
};
use rdma_verbs::{DeviceProfile, Opcode};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let profile = DeviceProfile::connectx4();
    let pair_cfg = PairConfig::default();

    println!("## Fig. 4 — highlighted phenomena (CX-4)\n");
    let phenomena = [
        (
            "\u{2460} small writes lose >50% vs reads",
            FlowSpec::client(Opcode::Write, 64, 1),
            FlowSpec::client(Opcode::Read, 512, 1),
        ),
        (
            "\u{2460} big writes crush reads (crossover ≥512 B)",
            FlowSpec::client(Opcode::Read, 512, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
        ),
        (
            "\u{2461} atomics follow the write trend",
            FlowSpec::client(Opcode::AtomicFetchAdd, 8, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
        ),
        (
            "\u{2462} small-write pair: abnormal increment",
            FlowSpec::client(Opcode::Write, 64, 1),
            FlowSpec::client(Opcode::Write, 64, 1),
        ),
        (
            "\u{2463} reverse reads vs writes (Tx > Rx arbiter)",
            FlowSpec::reverse(Opcode::Read, 2048, 2),
            FlowSpec::client(Opcode::Write, 2048, 2),
        ),
    ];
    let mut rows = Vec::new();
    for (label, a, b) in phenomena {
        let o = measure_pair(&profile, a, b, &pair_cfg);
        rows.push(vec![
            label.to_string(),
            fmt_bps(o.solo_a_bps),
            fmt_bps(o.duo_a_bps),
            fmt_pct(o.reduction_a()),
            fmt_pct(o.reduction_b()),
            format!("{:.2}", o.total_ratio()),
        ]);
    }
    print_table(
        &["phenomenon", "A solo", "A duo", "A loss", "B loss", "total ratio"],
        &rows,
    );

    // The grid.
    let cfg = if full {
        GridConfig::default()
    } else {
        GridConfig {
            sizes: vec![64, 512, 2048],
            qp_counts: vec![1, 2],
            shapes: vec![
                (Opcode::Read, FlowDirection::FromClient),
                (Opcode::Write, FlowDirection::FromClient),
            ],
            ..GridConfig::default()
        }
    };
    let n_combos = cfg.shapes.len().pow(2) * cfg.sizes.len().pow(2) * cfg.qp_counts.len().pow(2);
    println!("\n## Fig. 4 — contention grid ({n_combos} combinations{})\n",
        if full { ", full scan" } else { ", pass --full for the >6000-combination scan" });
    let cells = contention_grid(&profile, &cfg);
    let mut rows = Vec::new();
    for c in &cells {
        rows.push(vec![
            format!("{} {}B x{}", c.a.opcode, c.a.msg_len, c.a.qp_count),
            format!("{} {}B x{}", c.b.opcode, c.b.msg_len, c.b.qp_count),
            fmt_pct(c.outcome.reduction_a()),
            fmt_pct(c.outcome.reduction_b()),
            format!("{:.2}", c.outcome.total_ratio()),
        ]);
    }
    print_table(
        &["induced flow (A)", "inducing flow (B)", "A loss", "B loss", "total"],
        &rows,
    );
}
