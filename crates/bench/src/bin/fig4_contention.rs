//! Fig. 4: the Grain-I/II contention sweep (pass --full for the >6000-combination scan).
//!
//! Thin wrapper over `ragnar_bench::experiments::contention::Fig4Contention`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::contention::Fig4Contention)
}
