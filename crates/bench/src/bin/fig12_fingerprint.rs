//! Fig. 12 + Algorithm 1: fingerprinting shuffle/join operations of the
//! distributed database from the attacker's monitored bandwidth.

use ragnar_bench::sparkline;
use ragnar_core::side::fingerprint::{run, FingerprintConfig, Pattern};
use rdma_verbs::DeviceKind;

fn main() {
    let r = run(DeviceKind::ConnectX4, &FingerprintConfig::default());
    println!("## Fig. 12 — shuffle/join fingerprint (CX-4)\n");
    println!("attacker bandwidth: {}", sparkline(&r.monitor.values()));

    // Ground-truth strip aligned with the samples.
    let truth: String = r
        .monitor
        .points()
        .iter()
        .map(|&(t, _)| match r.truth.label_at(t) {
            Some("shuffle") => 'S',
            Some("join") => 'J',
            Some("idle") => '.',
            _ => ' ',
        })
        .collect();
    println!("ground truth:       {truth}");

    let detected: String = r
        .monitor
        .points()
        .iter()
        .map(|&(t, _)| {
            r.detections
                .iter()
                .find(|&&(dt, _)| dt >= t)
                .map(|&(_, p)| match p {
                    Pattern::Shuffle => 'S',
                    Pattern::Join => 'J',
                    Pattern::Null => '.',
                })
                .unwrap_or(' ')
        })
        .collect();
    println!("detected:           {detected}");
    println!("\nplateau-like drop during shuffle, tooth-like during join;");
    println!("window classification accuracy: {:.1}%", r.accuracy * 100.0);
}
