//! Fig. 12 + Algorithm 1: fingerprinting shuffle/join operations of the distributed database.
//!
//! Thin wrapper over `ragnar_bench::experiments::side::Fig12Fingerprint`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::side::Fig12Fingerprint)
}
