//! Fig. 13(a): the attacker's ULI traces under the 17 candidate victim
//! addresses — steps ❶ and ❷ of the disaggregated-memory snooping
//! attack.

use ragnar_bench::sparkline;
use ragnar_core::side::snoop::{collect_pools, mean_trace, SnoopConfig};
use rdma_verbs::DeviceKind;

fn main() {
    // Full resolution (257 observation offsets) is the default; pass
    // --coarse for a fast 17-point sweep.
    let coarse = std::env::args().any(|a| a == "--coarse");
    let cfg = SnoopConfig {
        step: if coarse { 64 } else { 4 },
        ..SnoopConfig::default()
    };
    println!(
        "## Fig. 13(a) — attacker traces, {} observation offsets x {} candidates (CX-4)\n",
        cfg.observation_offsets().len(),
        cfg.candidates.len()
    );
    for &cand in &cfg.candidates.clone() {
        let pools = collect_pools(DeviceKind::ConnectX4, cand, &cfg);
        let trace = mean_trace(&pools);
        let peak_idx = trace
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let peak_offset = peak_idx as u64 * cfg.step;
        println!(
            "victim @{cand:>4} B: {}  peak @{peak_offset:>4} B {}",
            sparkline(&trace),
            if peak_offset / 64 == cand.min(1024) / 64 || (cand == 1024 && peak_offset < 64) {
                "<- matches"
            } else {
                ""
            }
        );
    }
    println!("\nEach trace's elevation marks the TPU bank the victim's secret");
    println!("address occupies; candidates 0 B and 1024 B share a bank and are");
    println!("separated by the prefetch-window asymmetry (classifier input).");
}
