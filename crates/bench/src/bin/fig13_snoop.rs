//! Fig. 13(a): the attacker's ULI traces under the candidate victim addresses.
//!
//! Thin wrapper over `ragnar_bench::experiments::side::Fig13Snoop`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::side::Fig13Snoop)
}
