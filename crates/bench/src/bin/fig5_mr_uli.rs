//! Fig. 5: ULI vs. same/different remote MRs vs. message size (CX-4).
//!
//! Thin wrapper over `ragnar_bench::experiments::uli::Fig5MrUli`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::uli::Fig5MrUli)
}
