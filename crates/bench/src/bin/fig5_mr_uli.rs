//! Fig. 5: ULI vs. same/different remote MRs vs. message size
//! (alternating RDMA Reads on CX-4).

use ragnar_bench::print_table;
use ragnar_core::re::uli::mr_uli_sweep;
use rdma_verbs::DeviceProfile;

fn main() {
    let sizes = [64u64, 128, 256, 512, 1024, 2048, 4096, 8192];
    let points = mr_uli_sweep(&DeviceProfile::connectx4(), &sizes, 0xF165);
    println!("## Fig. 5 — ULI vs. same/different remote MR vs. message size (CX-4)\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{} B", p.msg_len),
                format!("{:.1} ns", p.same_mr.mean),
                format!("[{:.1}, {:.1}]", p.same_mr.p10, p.same_mr.p90),
                format!("{:.1} ns", p.diff_mr.mean),
                format!("[{:.1}, {:.1}]", p.diff_mr.p10, p.diff_mr.p90),
                format!("{:.1} ns", p.diff_mr.mean - p.same_mr.mean),
            ]
        })
        .collect();
    print_table(
        &[
            "msg size",
            "same-MR ULI",
            "same p10/p90",
            "diff-MR ULI",
            "diff p10/p90",
            "gap",
        ],
        &rows,
    );
    println!("\nThe different-MR gap is the TPU protection-context reload — the");
    println!("paper's Grain-III latency distinction (its Fig. 5).");
}
