//! Table V: design features and evaluations of the three covert channels
//! on CX-4, CX-5 and CX-6 — bandwidth, error rate, effective bandwidth.

use ragnar_bench::{fmt_bps, fmt_pct, print_table};
use ragnar_core::covert::{inter_mr, intra_mr, priority, random_bits};
use rdma_verbs::DeviceKind;

fn main() {
    let n_bits: usize = std::env::args()
        .skip_while(|a| a != "--bits")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let bits = random_bits(n_bits, 0x7AB1E5);

    println!("## Table V — covert-channel evaluation ({n_bits} random bits per cell)\n");
    let mut rows = Vec::new();

    // Grain-I+II: priority channel. At the paper's 1 s bit period the
    // channel carries ~1 bps; the run here uses the time-scaled profile
    // (see fig9) and reports the equivalent paper-setting bandwidth.
    let pr_cfg = priority::PriorityChannelConfig::default();
    let short = &bits[..16.min(bits.len())];
    for kind in DeviceKind::ALL {
        let r = priority::run(kind, short, &pr_cfg);
        // Paper setting: 1 bit per second of (scaled) wall time.
        let paper_equivalent_bps = 1.0 / (pr_cfg.bit_period.as_secs_f64() / 0.1);
        rows.push(vec![
            format!("Inter traffic-class (I+II) {kind}"),
            fmt_bps(paper_equivalent_bps),
            fmt_pct(r.report.error_rate()),
            fmt_bps(paper_equivalent_bps * (1.0 - ragnar_core::covert::binary_entropy(r.report.error_rate()))),
        ]);
    }

    for kind in DeviceKind::ALL {
        let r = inter_mr::run(kind, &bits, &inter_mr::default_config(kind));
        rows.push(vec![
            format!("Inter MR (III) {kind}"),
            fmt_bps(r.report.raw_bandwidth_bps),
            fmt_pct(r.report.error_rate()),
            fmt_bps(r.report.effective_bandwidth_bps()),
        ]);
    }
    for kind in DeviceKind::ALL {
        let r = intra_mr::run(kind, &bits, &intra_mr::default_config(kind));
        rows.push(vec![
            format!("Intra MR (IV) {kind}"),
            fmt_bps(r.report.raw_bandwidth_bps),
            fmt_pct(r.report.error_rate()),
            fmt_bps(r.report.effective_bandwidth_bps()),
        ]);
    }
    print_table(
        &["Covert channel (grain) / RNIC", "Bandwidth", "Error rate", "Effective BW"],
        &rows,
    );

    println!("\nPaper reference (Table V):");
    println!("  priority: 1.0/1.1/1.1 bps at 0% error");
    println!("  inter-MR: 31.8/63.6/84.3 Kbps at 5.92/3.98/7.59% error");
    println!("  intra-MR: 32.2/31.5/81.3 Kbps at 6.95/4.84/4.08% error");
}
