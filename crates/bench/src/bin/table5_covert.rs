//! Table V: design features and evaluations of the three covert channels.
//!
//! Thin wrapper over `ragnar_bench::experiments::covert::Table5Covert`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::covert::Table5Covert)
}
