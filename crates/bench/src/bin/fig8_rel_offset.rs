//! Fig. 8: ULI vs. *relative* address offset between consecutive 64 B
//! RDMA Reads, CX-4 — the prefetch-window interaction in the TPU.

use ragnar_bench::sparkline;
use ragnar_core::re::offset::{relative_offset_sweep, OffsetSweepConfig};
use rdma_verbs::DeviceProfile;
use sim_core::SimTime;

fn main() {
    let step = 16usize;
    let cfg = OffsetSweepConfig {
        msg_len: 64,
        offsets: (0..4096u64).step_by(step).collect(),
        horizon: SimTime::from_micros(120),
        ..OffsetSweepConfig::default()
    };
    let profile = DeviceProfile::connectx4();
    let points = relative_offset_sweep(&profile, &cfg);

    println!("## Fig. 8 — ULI vs. relative offset (64 B reads, CX-4)\n");
    let means: Vec<f64> = points.iter().map(|p| p.uli.mean).collect();
    let per_row = 2048 / step;
    for (i, chunk) in means.chunks(per_row).enumerate() {
        println!("{:>5} B | {}", i * 2048, sparkline(chunk));
    }
    let near: f64 = points
        .iter()
        .filter(|p| p.offset > 0 && p.offset <= 256)
        .map(|p| p.uli.mean)
        .sum::<f64>()
        / points.iter().filter(|p| p.offset > 0 && p.offset <= 256).count() as f64;
    let far: f64 = points
        .iter()
        .filter(|p| p.offset >= 1024)
        .map(|p| p.uli.mean)
        .sum::<f64>()
        / points.iter().filter(|p| p.offset >= 1024).count() as f64;
    println!("\nnear deltas (≤256 B, prefetch window): {near:.1} ns");
    println!("far deltas  (≥1024 B)                : {far:.1} ns");
    println!("\nThe relative effect differs from the absolute effect of Fig. 6 —");
    println!("the mutual interaction among consecutive packets in the TPU.");
}
