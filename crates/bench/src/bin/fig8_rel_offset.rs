//! Fig. 8: ULI vs. relative address offset between consecutive 64 B RDMA Reads.
//!
//! Thin wrapper over `ragnar_bench::experiments::offset::Fig8RelOffset`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::offset::Fig8RelOffset)
}
