//! Tables II & III: the simulated testbed and the CX-4/5/6 parameter
//! sheet.

use ragnar_bench::print_table;
use rdma_verbs::{DeviceKind, DeviceProfile, HostSpec};

fn main() {
    println!("## Table II — simulated test environment\n");
    let rows: Vec<Vec<String>> = HostSpec::testbed()
        .into_iter()
        .map(|h| {
            vec![
                h.name.to_string(),
                h.processor.to_string(),
                h.rnics
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(","),
                h.os.to_string(),
                format!("{} GiB", h.ram_gib),
            ]
        })
        .collect();
    print_table(&["Host", "Processor", "RNIC", "OS", "RAM"], &rows);

    println!("\n## Table III — network adapter parameter sheet\n");
    let rows: Vec<Vec<String>> = DeviceKind::ALL
        .iter()
        .map(|&kind| {
            let p = DeviceProfile::preset(kind);
            let pcie = match kind {
                DeviceKind::ConnectX4 | DeviceKind::ConnectX5 => "PCIe 3.0 x8",
                DeviceKind::ConnectX6 => "PCIe 4.0 x16",
            };
            vec![
                kind.name().to_string(),
                format!("{} Gbps", p.port_rate_bps / 1_000_000_000),
                pcie.to_string(),
                format!("{} Gbps eff.", p.pcie_rate_bps / 1_000_000_000),
                format!("{} banks", p.tpu_banks),
                format!("{}x{}-way MPT", p.mpt_cache_entries, p.mpt_cache_ways),
            ]
        })
        .collect();
    print_table(
        &["Feature", "Speed", "PCIe Interface", "PCIe eff.", "TPU", "MPT cache"],
        &rows,
    );
}
