//! Tables II & III: the simulated testbed and the CX-4/5/6 parameter sheet.
//!
//! Thin wrapper over `ragnar_bench::experiments::tables::Table23`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::tables::Table23)
}
