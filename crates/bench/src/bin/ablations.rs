//! Ablation studies for the design choices called out in DESIGN.md §4 —
//! each mechanism is switched off or resized and the corresponding Key
//! Finding re-measured.

use ragnar_bench::{fmt_pct, print_table};
use ragnar_core::re::contention::{measure_pair, FlowSpec, PairConfig};
use ragnar_core::re::offset::{absolute_offset_sweep, mean_where, OffsetSweepConfig};
use rdma_verbs::{DeviceProfile, Opcode};
use sim_core::SimTime;

fn main() {
    let pair_cfg = PairConfig::default();

    println!("## Ablation 1 — bulk-burst arbiter (KF1 crossover)\n");
    let mut rows = Vec::new();
    for burst in [0u32, 2, 8, 16] {
        let mut p = DeviceProfile::connectx4();
        p.bulk_burst_segments = burst;
        let o = measure_pair(
            &p,
            FlowSpec::client(Opcode::Read, 512, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
            &pair_cfg,
        );
        rows.push(vec![
            format!("burst {burst}"),
            fmt_pct(o.reduction_a()),
            fmt_pct(o.reduction_b()),
        ]);
    }
    print_table(&["config", "read loss", "write loss"], &rows);
    println!("(burst 0 removes the crossover: reads stop losing to big writes)\n");

    println!("## Ablation 2 — NoC activation (KF2 abnormal increment)\n");
    let mut rows = Vec::new();
    for (label, speedup) in [("NoC lane on (x0.45)", 0.45), ("NoC lane off (x1.0)", 1.0)] {
        let mut p = DeviceProfile::connectx4();
        p.noc_speedup = speedup;
        let o = measure_pair(
            &p,
            FlowSpec::client(Opcode::Write, 64, 1),
            FlowSpec::client(Opcode::Write, 64, 1),
            &pair_cfg,
        );
        rows.push(vec![label.to_string(), format!("{:.2}", o.total_ratio())]);
    }
    print_table(&["config", "combined / solo ratio"], &rows);
    println!("(without the lane the combined throughput stays below 200%)\n");

    println!("## Ablation 3 — Tx-over-Rx strict priority (KF3)\n");
    let mut rows = Vec::new();
    for (label, strict) in [("strict Tx>Rx", true), ("round-robin", false)] {
        let mut p = DeviceProfile::connectx4();
        p.tx_strict_priority = strict;
        let o = measure_pair(
            &p,
            FlowSpec::reverse(Opcode::Read, 2048, 2),
            FlowSpec::client(Opcode::Write, 2048, 2),
            &pair_cfg,
        );
        rows.push(vec![label.to_string(), fmt_pct(o.reduction_a())]);
    }
    print_table(&["egress arbitration", "reverse-read loss"], &rows);
    println!("(equalizing the arbiters erases the yellow-box asymmetry)\n");

    println!("## Ablation 4 — TPU row buffers (KF4 2048 B periodicity)\n");
    let offsets: Vec<u64> = (0..18432u64).step_by(64).collect();
    let mut rows = Vec::new();
    for buffers in [1usize, 2, 4] {
        let mut p = DeviceProfile::connectx4();
        p.tpu_row_buffers = buffers;
        let cfg = OffsetSweepConfig {
            offsets: offsets.clone(),
            horizon: SimTime::from_micros(100),
            ..OffsetSweepConfig::default()
        };
        let points = absolute_offset_sweep(&p, &cfg);
        // Conflict parity is relative to offset 0's row for the probe's
        // alternating pattern; with B buffers, rows congruent to 0 mod B
        // ping-pong against row 0.
        let cell = if buffers == 1 {
            "no periodicity (all rows conflict)".to_string()
        } else {
            let hi = mean_where(&points, |o| o >= 2048 && (o / 2048) % buffers as u64 == 0);
            let lo = mean_where(&points, |o| o >= 2048 && (o / 2048) % buffers as u64 != 0);
            format!("{:.1} ns", hi - lo)
        };
        rows.push(vec![format!("{buffers} row buffer(s)"), cell]);
    }
    print_table(&["TPU geometry", "2048 B-periodic ULI swing"], &rows);
}
