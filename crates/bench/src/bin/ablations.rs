//! Ablation studies for the design choices called out in DESIGN.md §4.
//!
//! Thin wrapper over `ragnar_bench::experiments::contention::Ablations`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::contention::Ablations)
}
