//! Extension study: covert-channel robustness under bystander traffic and async decode.
//!
//! Thin wrapper over `ragnar_bench::experiments::covert::RobustnessStudy`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::covert::RobustnessStudy)
}
