//! Extension study: covert-channel robustness under conditions the paper
//! only gestures at — bystander traffic from innocent tenants, loss on
//! the fabric, and a receiver with no shared clock (asynchronous decode).

use ragnar_bench::{fmt_pct, print_table};
use ragnar_core::covert::sync::{async_decode, strip_preamble};
use ragnar_core::covert::{inter_mr, parse_bits, random_bits, UliChannelConfig};
use rdma_verbs::DeviceKind;

fn main() {
    let kind = DeviceKind::ConnectX5;
    let bits = random_bits(256, 0xB0B);

    println!("## Inter-MR channel robustness (CX-5, 256 random bits)\n");
    let mut rows = Vec::new();

    // Baseline.
    let base = inter_mr::run(kind, &bits, &inter_mr::default_config(kind));
    rows.push(vec![
        "quiet fabric".into(),
        fmt_pct(base.report.error_rate()),
    ]);

    // Bystander tenants of increasing weight.
    for len in [256u64, 1024, 4096] {
        let cfg = UliChannelConfig {
            background_traffic_len: Some(len),
            ..inter_mr::default_config(kind)
        };
        let run = inter_mr::run(kind, &bits, &cfg);
        rows.push(vec![
            format!("bystander flow, {len} B reads"),
            fmt_pct(run.report.error_rate()),
        ]);
    }
    print_table(&["condition", "bit error rate"], &rows);

    println!("\n## Asynchronous receiver (clock recovery, CX-4)\n");
    let preamble = parse_bits("10101010");
    let payload = random_bits(128, 0xA5);
    let mut framed = preamble.clone();
    framed.extend(&payload);
    let cfg = inter_mr::default_config(DeviceKind::ConnectX4);
    let run = inter_mr::run(DeviceKind::ConnectX4, &framed, &cfg);
    let samples: Vec<_> = run.rx_samples.iter().map(|s| (s.at, s.uli_ns)).collect();
    let (decoded, clock) = async_decode(&samples, cfg.bit_period, true);
    match strip_preamble(&decoded, &preamble) {
        Some(got) => {
            let n = got.len().min(payload.len());
            let errors = got[..n]
                .iter()
                .zip(&payload[..n])
                .filter(|(a, b)| a != b)
                .count();
            println!(
                "phase recovered at {:.2} us into the capture; payload error rate {}/{n} ({:.2}%)",
                clock.phase.as_micros_f64(),
                errors,
                errors as f64 / n as f64 * 100.0
            );
        }
        None => println!("preamble not found — channel unusable without a shared clock"),
    }
    println!("\nThe volatile channel tolerates bystander tenants (the paper's");
    println!("isolation-bypass claim) and needs no clock distribution —");
    println!("only the nominal bit period.");
}
