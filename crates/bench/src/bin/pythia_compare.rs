//! The §I headline: Ragnar's inter-MR channel vs. the Pythia baseline on CX-5.
//!
//! Thin wrapper over `ragnar_bench::experiments::covert::PythiaCompare`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::covert::PythiaCompare)
}
