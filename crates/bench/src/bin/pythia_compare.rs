//! The §I headline: Ragnar's inter-MR channel achieves 3.2× the
//! bandwidth of the Pythia (cache-based persistent-channel) baseline on
//! the same CX-5 setup.

use pythia_baseline::{run_channel, PythiaConfig};
use ragnar_bench::{fmt_bps, fmt_pct, print_table};
use ragnar_core::covert::{inter_mr, random_bits};
use rdma_verbs::DeviceKind;

fn main() {
    let kind = DeviceKind::ConnectX5;
    let bits = random_bits(400, 0xC0DE);

    let ragnar = inter_mr::run(kind, &bits, &inter_mr::default_config(kind));
    let pythia = run_channel(kind, &bits[..200], &PythiaConfig::default());

    println!("## Ragnar vs. Pythia covert-channel bandwidth on CX-5\n");
    print_table(
        &["channel", "type", "bandwidth", "error", "effective"],
        &[
            vec![
                "Ragnar inter-MR".into(),
                "volatile (contention)".into(),
                fmt_bps(ragnar.report.raw_bandwidth_bps),
                fmt_pct(ragnar.report.error_rate()),
                fmt_bps(ragnar.report.effective_bandwidth_bps()),
            ],
            vec![
                format!("Pythia evict+reload (set of {})", pythia.eviction_set_size),
                "persistent (MPT cache)".into(),
                fmt_bps(pythia.report.raw_bandwidth_bps),
                fmt_pct(pythia.report.error_rate()),
                fmt_bps(pythia.report.effective_bandwidth_bps()),
            ],
        ],
    );
    let ratio = ragnar.report.raw_bandwidth_bps / pythia.report.raw_bandwidth_bps;
    println!("\nbandwidth ratio: {ratio:.2}x   (paper: 3.2x — 63.6 vs 20 Kbps)");
}
