//! Fig. 6: ULI vs. *absolute* address offset, 64 B RDMA Reads, same
//! remote MR, CX-4 — the Grain-IV offset effect with its 8 B / 64 B /
//! 2048 B power-of-two periodicities.

use ragnar_bench::sparkline;
use ragnar_core::re::offset::{absolute_offset_sweep, mean_where, OffsetSweepConfig};
use rdma_verbs::DeviceProfile;
use sim_core::SimTime;

fn main() {
    // 4 B resolution over 0..4096, like the paper's sweep.
    let step = 4usize;
    let cfg = OffsetSweepConfig {
        msg_len: 64,
        offsets: (0..4096u64).step_by(step).collect(),
        horizon: SimTime::from_micros(120),
        ..OffsetSweepConfig::default()
    };
    let profile = DeviceProfile::connectx4();
    let points = absolute_offset_sweep(&profile, &cfg);

    println!("## Fig. 6 — ULI vs. absolute offset (64 B reads, CX-4, step {step} B)\n");
    let means: Vec<f64> = points.iter().map(|p| p.uli.mean).collect();
    // Zoomed view: the first 512 B at full 4 B resolution (the 8 B and
    // 64 B drop structure).
    println!("zoom 0–512 B   | {}", sparkline(&means[..512 / step]));
    // Full range at 16 B granularity, one row per 2048 B row buffer.
    let coarse: Vec<f64> = means.iter().step_by(4).cloned().collect();
    let per_row = 2048 / (step * 4);
    for (i, chunk) in coarse.chunks(per_row).enumerate() {
        println!("{:>5} B row    | {}", i * 2048, sparkline(chunk));
    }

    let a64 = mean_where(&points, |o| o % 64 == 0);
    let a8 = mean_where(&points, |o| o % 8 == 0 && o % 64 != 0);
    let rest = mean_where(&points, |o| o % 8 != 0);
    println!("\nmean ULI by alignment class:");
    println!("  64 B-aligned : {a64:.1} ns   (deep drops)");
    println!("   8 B-aligned : {a8:.1} ns   (stable drops)");
    println!("   unaligned   : {rest:.1} ns");
    let even_row = mean_where(&points, |o| (o / 2048) % 2 == 0 && o % 64 == 0);
    let odd_row = mean_where(&points, |o| (o / 2048) % 2 == 1 && o % 64 == 0);
    println!("  2048 B rows  : conflicting {even_row:.1} ns vs buffered {odd_row:.1} ns");
}
