//! Fig. 6: ULI vs. absolute address offset, 64 B RDMA Reads (Grain-IV periodicities).
//!
//! Thin wrapper over `ragnar_bench::experiments::offset::Fig6AbsOffset`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::offset::Fig6AbsOffset)
}
