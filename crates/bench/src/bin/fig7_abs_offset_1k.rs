//! Fig. 7: ULI vs. *absolute* address offset, 1024 B RDMA Reads, CX-4 —
//! the offset pattern changes with message size but keeps the
//! power-of-two periodicity.

use ragnar_bench::sparkline;
use ragnar_core::re::offset::{absolute_offset_sweep, mean_where, OffsetSweepConfig};
use rdma_verbs::DeviceProfile;
use sim_core::SimTime;

fn main() {
    let step = 4usize;
    let cfg = OffsetSweepConfig {
        msg_len: 1024,
        offsets: (0..4096u64).step_by(step).collect(),
        horizon: SimTime::from_micros(250),
        ..OffsetSweepConfig::default()
    };
    let profile = DeviceProfile::connectx4();
    let points = absolute_offset_sweep(&profile, &cfg);

    println!("## Fig. 7 — ULI vs. absolute offset (1024 B reads, CX-4)\n");
    let means: Vec<f64> = points.iter().map(|p| p.uli.mean).collect();
    println!("zoom 0–512 B   | {}", sparkline(&means[..512 / step]));
    let coarse: Vec<f64> = means.iter().step_by(4).cloned().collect();
    let per_row = 2048 / (step * 4);
    for (i, chunk) in coarse.chunks(per_row).enumerate() {
        println!("{:>5} B row    | {}", i * 2048, sparkline(chunk));
    }
    let a64 = mean_where(&points, |o| o % 64 == 0);
    let rest = mean_where(&points, |o| o % 8 != 0);
    println!("\n64 B-aligned mean {a64:.1} ns vs unaligned {rest:.1} ns");
    println!("(1024 B reads span 16+ TPU tokens, so the relative drop is");
    println!("shallower than Fig. 6's — matching the paper's observation that");
    println!("the pattern varies with message size while keeping 2^k period.)");
}
