//! Fig. 7: ULI vs. absolute address offset, 1024 B RDMA Reads, CX-4.
//!
//! Thin wrapper over `ragnar_bench::experiments::offset::Fig7AbsOffset1k`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::offset::Fig7AbsOffset1k)
}
