//! Noisy-neighbor exhaustion: victim p99 latency vs. attacker QP count
//! on a 256-host leaf-spine fabric (override with `--topology`).
//!
//! Thin wrapper over `ragnar_bench::experiments::cluster::NoisyNeighbor`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::cluster::NoisyNeighbor)
}
