//! `bench_diff` — the perf-regression gate.
//!
//! Compares two JSON documents (two harness `report.json`s, two
//! manifests, or a report against a pinned `BENCH_*.json`) by
//! flattening both to dotted-path numeric leaves and flagging every
//! leaf whose relative delta exceeds the threshold. Wall-clock material
//! (the `timing` section, `wall_ms`, cache-state counts) is skipped by
//! default, so on identical builds the deterministic sections — event
//! counts, allocation counters, merged histogram counts — must match
//! exactly and any drift is a real behaviour change.
//!
//! ```text
//! usage: bench_diff <baseline.json> <candidate.json>
//!        [--threshold-pct <f>]   allowed relative delta (default 0)
//!        [--skip <substr>]...    extra path substrings to ignore
//!        [--no-default-skip]     compare wall-clock material too
//! ```
//!
//! Exit code 0 when clean, 1 on regressions or missing leaves, 2 on
//! usage/IO errors.

use std::process::ExitCode;

use ragnar_harness::diff::{diff_values, DEFAULT_SKIP};
use ragnar_harness::Value;

struct Args {
    baseline: String,
    candidate: String,
    threshold_pct: f64,
    skip: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut threshold_pct = 0.0;
    let mut skip: Vec<String> = DEFAULT_SKIP.iter().map(|s| s.to_string()).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold-pct" => {
                let raw = it.next().ok_or("--threshold-pct needs a value")?;
                threshold_pct = raw
                    .parse()
                    .map_err(|_| format!("--threshold-pct needs a number, got '{raw}'"))?;
            }
            "--skip" => {
                skip.push(it.next().ok_or("--skip needs a value")?.clone());
            }
            "--no-default-skip" => {
                skip.retain(|s| !DEFAULT_SKIP.contains(&s.as_str()));
            }
            "--help" | "-h" => return Err(String::new()),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(format!(
            "expected exactly two files, got {}",
            positional.len()
        ));
    }
    let mut positional = positional.into_iter();
    Ok(Args {
        baseline: positional.next().expect("checked"),
        candidate: positional.next().expect("checked"),
        threshold_pct,
        skip,
    })
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: bench_diff <baseline.json> <candidate.json> \
                 [--threshold-pct <f>] [--skip <substr>]... [--no-default-skip]"
            );
            return ExitCode::from(2);
        }
    };
    let (baseline, candidate) = match (load(&args.baseline), load(&args.candidate)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let skip: Vec<&str> = args.skip.iter().map(String::as_str).collect();
    let report = diff_values(&baseline, &candidate, args.threshold_pct, &skip);

    println!(
        "bench-diff: {} vs {} — {} leaves compared at {}% threshold",
        args.baseline, args.candidate, report.compared, args.threshold_pct
    );
    for miss in &report.missing {
        println!("  missing: {miss}");
    }
    for r in &report.regressions {
        println!(
            "  REGRESSION {}: {} -> {} ({:+.1}%)",
            r.path,
            r.before,
            r.after,
            if r.before == 0.0 {
                f64::INFINITY
            } else {
                (r.after - r.before) / r.before * 100.0
            }
        );
    }
    if report.is_clean() {
        println!("bench-diff: OK");
        ExitCode::SUCCESS
    } else {
        println!(
            "bench-diff: FAIL ({} regression(s), {} missing leaf/leaves)",
            report.regressions.len(),
            report.missing.len()
        );
        ExitCode::FAILURE
    }
}
