//! Detector ROC study on live channel traffic: how much detection a
//! HARMONIC-style monitor can buy at a given false-positive budget,
//! against each Ragnar channel.

use ragnar_bench::{fmt_pct, print_table};
use ragnar_core::covert::{inter_mr, intra_mr, random_bits, UliChannelConfig};
use ragnar_core::{CounterSampler, Testbed};
use ragnar_defense::{detection_at_fpr, roc_sweep, window_signatures, WindowSignature};
use ragnar_workloads::shuffle_join::{DbConfig, DbPhase, DbVictim, PhaseLog};
use rdma_verbs::{
    AccessFlags, ConnectOptions, DeviceKind, DeviceProfile, FlowId, TrafficClass,
};
use sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Honest-tenant signatures: a realistic mix of perfectly steady flows
/// (half, modelled as a sender stuck on one symbol) and bursty
/// database-style tenants with shuffle/join phases (half) — real
/// workloads are not statistically flat.
fn honest_population(kind: DeviceKind, n: usize) -> Vec<Vec<WindowSignature>> {
    let mut out = Vec::new();
    let bits_constant = vec![false; 128];
    for i in 0..n / 2 {
        let cfg = UliChannelConfig {
            seed: 0xB0 + i as u64,
            ..inter_mr::default_config(kind)
        };
        let run = inter_mr::run(kind, &bits_constant, &cfg);
        out.push(window_signatures(&run.tx_counter_samples));
    }
    for i in 0..n - n / 2 {
        out.push(db_tenant_signatures(kind, 0xD0 + i as u64));
    }
    out
}

/// A bursty (but honest) database tenant, observed through the same
/// counter sampler the monitor uses.
fn db_tenant_signatures(kind: DeviceKind, seed: u64) -> Vec<WindowSignature> {
    let mut tb = Testbed::new(DeviceProfile::preset(kind), 1, seed);
    let mr = tb.server_mr(8 << 20, AccessFlags::remote_all());
    let qp = tb.connect_client(
        0,
        ConnectOptions {
            tc: TrafficClass::new(0),
            flow: FlowId(1),
            max_send_queue: 8,
        },
    );
    let log = Rc::new(RefCell::new(PhaseLog::default()));
    let victim = tb.sim.add_app(Box::new(DbVictim::new(
        qp,
        DbConfig {
            shuffle_msg_len: 8 * 1024,
            join_msg_len: 2 * 1024,
            rkey: mr.key,
            remote_base: mr.base_va,
            remote_len: mr.len,
        },
        vec![
            DbPhase::Shuffle(SimDuration::from_micros(200)),
            DbPhase::Idle(SimDuration::from_micros(100)),
            DbPhase::Join {
                rounds: 6,
                burst: SimDuration::from_micros(30),
                gap: SimDuration::from_micros(30),
            },
            DbPhase::Shuffle(SimDuration::from_micros(150)),
        ],
        log,
    )));
    tb.sim.own_qp(victim, qp);
    let samples = Rc::new(RefCell::new(Vec::new()));
    let host = tb.clients[0];
    tb.sim.add_app(Box::new(CounterSampler::new(
        host,
        SimDuration::from_micros(60),
        Rc::clone(&samples),
    )));
    tb.sim.run_until(SimTime::from_micros(820));
    let s = samples.borrow().clone();
    window_signatures(&s)
}

fn covert_population(
    kind: DeviceKind,
    n: usize,
    which: &str,
) -> Vec<Vec<WindowSignature>> {
    (0..n)
        .map(|i| {
            let bits = random_bits(128, 0xABC + i as u64);
            let samples = match which {
                "inter" => {
                    let cfg = UliChannelConfig {
                        seed: 0x11 + i as u64,
                        ..inter_mr::default_config(kind)
                    };
                    inter_mr::run(kind, &bits, &cfg).tx_counter_samples
                }
                _ => {
                    let cfg = UliChannelConfig {
                        seed: 0x22 + i as u64,
                        ..intra_mr::default_config(kind)
                    };
                    intra_mr::run(kind, &bits, &cfg).tx_counter_samples
                }
            };
            window_signatures(&samples)
        })
        .collect()
}

fn main() {
    let kind = DeviceKind::ConnectX5;
    let honest = honest_population(kind, 8);
    let thresholds = [0.005, 0.01, 0.02, 0.05, 0.1, 0.2];

    println!("## HARMONIC ROC vs. live Ragnar senders (CX-5, 8 tenants/side)\n");
    for which in ["inter", "intra"] {
        let covert = covert_population(kind, 8, which);
        let points = roc_sweep(&covert, &honest, &thresholds);
        println!("### {which}-MR channel sender\n");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.3}", p.threshold),
                    fmt_pct(p.detection_rate),
                    fmt_pct(p.false_positive_rate),
                ]
            })
            .collect();
        print_table(&["CV threshold", "detection", "false positives"], &rows);
        let at_zero = detection_at_fpr(&points, 0.0).unwrap_or(0.0);
        println!("\nbest detection at 0% false positives: {}\n", fmt_pct(at_zero));
    }
    println!("A Grain-III/IV sender's counters are statistically identical to an");
    println!("honest tenant's: detection is purchasable only with false positives");
    println!("on innocent workloads — Table I's missing 'Defended' entry.");
}
