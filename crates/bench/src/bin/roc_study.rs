//! Detector ROC study on live channel traffic (HARMONIC-style monitor).
//!
//! Thin wrapper over `ragnar_bench::experiments::defense::RocStudy`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::defense::RocStudy)
}
