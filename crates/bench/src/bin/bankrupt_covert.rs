//! Bankrupt-style covert channel through a remote memory server's
//! row-buffer state, crossing a leaf-spine fabric.
//!
//! Thin wrapper over `ragnar_bench::experiments::cluster::BankruptCovert`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::cluster::BankruptCovert)
}
