//! Fig. 11: the inter-MR resource-based channel on CX-4/5/6 — folded,
//! normalized receiver ULI over one period of two covert bits, under the
//! best parameter combination per NIC.

use ragnar_bench::sparkline;
use ragnar_core::covert::inter_mr::{default_config, run};
use ragnar_core::covert::{fold_by_phase, parse_bits};
use rdma_verbs::DeviceKind;

fn main() {
    println!("## Fig. 11 — inter-MR channel, folded normalized ULI (CX-4/5/6)\n");
    let bits = parse_bits(&"10".repeat(128));
    for kind in DeviceKind::ALL {
        let cfg = default_config(kind);
        let r = run(kind, &bits, &cfg);
        let samples: Vec<_> = r.rx_samples.iter().map(|s| (s.at, s.uli_ns)).collect();
        let folded = fold_by_phase(&samples, r.start, cfg.bit_period * 2, 32);
        // Normalize to [0, 1] as the paper's Y axes do.
        let hi = folded.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = folded.iter().cloned().fold(f64::INFINITY, f64::min);
        let norm: Vec<f64> = folded.iter().map(|v| (v - lo) / (hi - lo).max(1e-9)).collect();
        println!(
            "{kind}: {}  (tx {} B reads, SQ {}, bit {:.1} µs, err {:.2}%)",
            sparkline(&norm),
            cfg.tx_msg_len,
            cfg.tx_depth,
            cfg.bit_period.as_micros_f64(),
            r.report.error_rate() * 100.0
        );
    }
}
