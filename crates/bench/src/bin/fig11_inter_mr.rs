//! Fig. 11: the inter-MR resource-based channel on CX-4/5/6.
//!
//! Thin wrapper over `ragnar_bench::experiments::uli::Fig11InterMr`; all
//! scheduling, caching and reporting lives in `ragnar_harness`.

fn main() -> std::process::ExitCode {
    ragnar_harness::run_main(&ragnar_bench::experiments::uli::Fig11InterMr)
}
