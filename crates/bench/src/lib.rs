//! # ragnar-bench — experiment implementations and report helpers
//!
//! Every figure/table of the paper lives in [`experiments`] as a
//! `ragnar_harness::Experiment`; the `src/bin/*` binaries are thin
//! wrappers that hand one experiment to `ragnar_harness::run_main`
//! (`cargo run -p ragnar-bench --bin <experiment> -- --help`). See
//! `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for the
//! shared CLI and cache layout.

#![warn(missing_docs)]

pub mod experiments;

/// Renders values as a one-line ASCII sparkline (8 levels).
///
/// # Examples
///
/// ```
/// let s = ragnar_bench::sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Formats bits per second with a sensible unit.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.2} Mbps", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.1} Kbps", bps / 1e3)
    } else {
        format!("{bps:.1} bps")
    }
}

/// Renders a markdown-style table to a string (one trailing newline).
pub fn fmt_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(c.len());
            s.push_str(&format!(" {c:<w$} |"));
        }
        s.push('\n');
        s
    };
    let mut out = line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&line(&sep));
    for row in rows {
        out.push_str(&line(row));
    }
    out
}

/// Prints a markdown-style table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", fmt_table(headers, rows));
}

/// Formats a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
        assert_eq!(sparkline(&[]), "");
        // Flat input does not panic.
        let flat = sparkline(&[3.0, 3.0, 3.0]);
        assert_eq!(flat.chars().count(), 3);
    }

    #[test]
    fn bps_units() {
        assert_eq!(fmt_bps(1.0), "1.0 bps");
        assert_eq!(fmt_bps(31_800.0), "31.8 Kbps");
        assert_eq!(fmt_bps(2.5e9), "2.50 Gbps");
    }

    #[test]
    fn pct_format() {
        assert_eq!(fmt_pct(0.0592), "5.92%");
    }
}
