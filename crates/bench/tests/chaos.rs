//! Chaos determinism through the harness: a seeded fault plan must give
//! bit-identical artifacts at any thread count, must actually perturb
//! the experiment, and different chaos seeds must give different
//! fabrics. The companion guarantee — that *no* chaos flags leave the
//! golden digests untouched — is pinned in `golden.rs`.

use ragnar_bench::experiments::contention;
use ragnar_harness::executor::{self, ExecOptions};
use ragnar_harness::hash::content_hash;
use ragnar_harness::{Cli, Experiment, Outcome};

/// Quick-mode digest of fig4 with the given extra flags (mirrors
/// `golden.rs`, minus the pinning).
fn digest(threads: usize, extras: &[&str]) -> String {
    let mut args = vec!["--quick".to_string(), "--seed".to_string(), "0".to_string()];
    args.extend(extras.iter().map(|s| s.to_string()));
    let cli = Cli::parse(args).expect("cli parses");
    let exp = &contention::Fig4Contention;
    let configs = exp.params(&cli);
    let records = executor::execute(
        exp,
        &configs,
        cli.seed,
        None,
        &ExecOptions {
            threads,
            force: true,
            ..Default::default()
        },
    );
    let mut material = String::new();
    for r in &records {
        match &r.outcome {
            Outcome::Done(a) => {
                material.push_str(&a.to_value().encode());
                material.push('\n');
            }
            Outcome::Failed { message, .. } => {
                panic!(
                    "config [{}] failed under chaos: {message}",
                    r.config.label()
                )
            }
            other => panic!("config [{}] did not finish: {other:?}", r.config.label()),
        }
    }
    content_hash(material.as_bytes())
}

#[test]
fn chaos_runs_are_thread_invariant_and_distinct() {
    let clean = digest(1, &[]);
    let chaos_single = digest(1, &["--chaos-seed", "7"]);
    let chaos_parallel = digest(4, &["--chaos-seed", "7"]);
    assert_eq!(
        chaos_single, chaos_parallel,
        "chaos seed 7 digest differs between --threads 1 and --threads 4"
    );
    assert_ne!(
        chaos_single, clean,
        "a seeded fault plan must perturb fig4's artifacts"
    );
    let other = digest(1, &["--chaos-seed", "8"]);
    assert_ne!(
        other, chaos_single,
        "different chaos seeds must give different fabrics"
    );
}
