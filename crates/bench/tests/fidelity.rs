//! Paper-fidelity regression tests: the headline physical effects of
//! Ragnar must survive engine changes (like the calendar-queue swap)
//! under the default seed.
//!
//! These assert *phenomena*, not exact numbers — the golden digest
//! tests already pin exact bytes. If one of these fails, the simulator
//! no longer reproduces the paper, regardless of determinism.

use ragnar_bench::experiments::covert::Fig9PriorityChannel;
use ragnar_core::re::offset::{absolute_offset_sweep, mean_where, OffsetSweepConfig};
use ragnar_harness::{config_seed, Config, Experiment};
use rdma_verbs::{DeviceKind, DeviceProfile};
use sim_core::SimTime;

/// Fig. 6 (Grain-IV): ULI vs. absolute offset shows the 8 B / 64 B /
/// 2048 B power-of-two periodicities on CX-4 — 64 B-aligned offsets
/// have the deepest latency drops, 8 B-aligned the stable drops, and
/// 2048 B rows alternate between row-buffer conflict and hit.
#[test]
fn uli_offset_periodicities_survive_queue_swap() {
    // The exact parameter cell fig6_abs_offset runs by default, with the
    // seed the harness would derive at master seed 0.
    let config = Config::new()
        .with("msg_len", 64u64)
        .with("step", 4u64)
        .with("span", 4096u64)
        .with("horizon_us", 120u64);
    let seed = config_seed(0, "fig6_abs_offset", &config);
    // Fine-grained offsets for the 8 B / 64 B alignment classes, plus
    // 2048 B-row multiples beyond the sweep span for the row-buffer
    // alternation (CX-4 interleaves rows over 2 buffers, so even rows
    // ping-pong with the offset-0 reference row and odd rows do not).
    let mut offsets: Vec<u64> = (0..4096).step_by(4).collect();
    offsets.extend([4096u64, 6144, 8192, 10240, 12288, 14336]);
    let cfg = OffsetSweepConfig {
        msg_len: 64,
        offsets,
        horizon: SimTime::from_micros(120),
        seed,
        ..OffsetSweepConfig::default()
    };
    let points = absolute_offset_sweep(&DeviceProfile::connectx4(), &cfg);

    // 64 B periodicity: token-aligned accesses are the deep drops.
    let a64 = mean_where(&points, |o| o % 64 == 0);
    // 8 B periodicity: word-aligned but not token-aligned — shallower.
    let a8 = mean_where(&points, |o| o % 8 == 0 && o % 64 != 0);
    // Unaligned: no drop at all.
    let rest = mean_where(&points, |o| o % 8 != 0);
    assert!(
        a64 < a8,
        "64 B-aligned ULI ({a64:.1} ns) must sit below 8 B-aligned ({a8:.1} ns)"
    );
    assert!(
        a8 < rest,
        "8 B-aligned ULI ({a8:.1} ns) must sit below unaligned ({rest:.1} ns)"
    );

    // 2048 B periodicity: row-buffer alternation across 2048 B rows.
    // Measured on the sparse row multiples (≥ 2048, so the reference's
    // own row is excluded): even rows share the reference's row buffer
    // and ping-pong it (slow), odd rows land in the other buffer.
    let even_row = mean_where(&points, |o| {
        o >= 2048 && o % 2048 == 0 && (o / 2048) % 2 == 0
    });
    let odd_row = mean_where(&points, |o| {
        o >= 2048 && o % 2048 == 0 && (o / 2048) % 2 == 1
    });
    assert!(
        even_row > odd_row,
        "2048 B row alternation lost: conflicting rows {even_row:.1} ns \
         vs buffered rows {odd_row:.1} ns"
    );
}

/// Fig. 9 / Table V (Grain-I/II): the priority-based covert channel
/// decodes with 0% bit errors on every NIC generation at the default
/// seed — exactly the error rate the paper reports.
#[test]
fn priority_channel_zero_errors_on_every_device() {
    for kind in DeviceKind::ALL {
        let config = Config::new()
            .with("device", kind.name())
            .with("paper_rate", false);
        let seed = config_seed(0, Fig9PriorityChannel.name(), &config);
        let artifact = Fig9PriorityChannel
            .run(&config, seed)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let errors = artifact
            .metrics
            .get("bit_errors")
            .and_then(ragnar_harness::Value::as_i64)
            .expect("bit_errors metric");
        assert_eq!(
            errors,
            0,
            "{}: priority channel must decode error-free (paper: 0% error rate)",
            kind.name()
        );
        let raw_bw = artifact
            .metrics
            .get("raw_bandwidth_bps")
            .and_then(ragnar_harness::Value::as_f64)
            .expect("raw_bandwidth_bps metric");
        assert!(
            raw_bw > 0.0,
            "{}: channel bandwidth must be positive",
            kind.name()
        );
    }
}
