//! Golden determinism tests: pinned fixed-seed artifact digests.
//!
//! Each test runs one experiment's quick-mode sweep at master seed 0
//! with the cache disabled, folds every artifact's canonical encoding
//! into one content hash, and compares against a digest pinned in this
//! file. The pinned values were captured with the `ReferenceQueue`
//! backend before the calendar queue became the default
//! (`EventQueue` alias in sim-core), so these tests are the acceptance
//! gate for the queue swap: any drift in event ordering — backend
//! change, scheduler change, thread count — shows up as a digest
//! mismatch.
//!
//! If a digest changes because the *experiment itself* legitimately
//! changed, re-pin it by running the test and copying the digest from
//! the failure message — and bump `sim_core::ENGINE_VERSION` (or the
//! experiment's `version()`) so stale caches are invalidated. The
//! workflow is documented in EXPERIMENTS.md.

use ragnar_bench::experiments::{contention, covert, uli};
use ragnar_harness::executor::{self, ExecOptions};
use ragnar_harness::hash::content_hash;
use ragnar_harness::{Cli, Experiment, Outcome};

/// Quick-mode CLI at a fixed seed, as `<bin> --quick --seed 0` would
/// parse it, plus experiment-specific extras.
fn quick_cli(extras: &[&str]) -> Cli {
    let mut args = vec!["--quick".to_string(), "--seed".to_string(), "0".to_string()];
    args.extend(extras.iter().map(|s| s.to_string()));
    Cli::parse(args).expect("cli parses")
}

/// Runs the experiment's full quick-mode sweep (no cache, forced) and
/// digests all artifacts in config order.
fn artifact_digest(exp: &dyn Experiment, threads: usize, extras: &[&str]) -> String {
    let cli = quick_cli(extras);
    let configs = exp.params(&cli);
    let records = executor::execute(
        exp,
        &configs,
        cli.seed,
        None,
        &ExecOptions {
            threads,
            force: true,
            ..Default::default()
        },
    );
    let mut material = String::new();
    for r in &records {
        match &r.outcome {
            Outcome::Done(a) => {
                material.push_str(&a.to_value().encode());
                material.push('\n');
            }
            Outcome::Failed { message, .. } => {
                panic!("config [{}] failed: {message}", r.config.label())
            }
            other => panic!("config [{}] did not finish: {other:?}", r.config.label()),
        }
    }
    content_hash(material.as_bytes())
}

/// Asserts the digest is pinned AND thread-count invariant.
fn assert_golden(exp: &dyn Experiment, extras: &[&str], pinned: &str) {
    let single = artifact_digest(exp, 1, extras);
    assert_eq!(
        single,
        pinned,
        "{} quick-mode digest drifted (was the event order changed? \
         re-pin only for intentional experiment changes)",
        exp.name()
    );
    let parallel = artifact_digest(exp, 4, extras);
    assert_eq!(
        single,
        parallel,
        "{} digest differs between --threads 1 and --threads 4",
        exp.name()
    );
}

#[test]
fn fig4_contention_quick_digest_pinned() {
    assert_golden(
        &contention::Fig4Contention,
        &[],
        GOLDEN_FIG4_CONTENTION_QUICK_SEED0,
    );
}

#[test]
fn fig5_mr_uli_quick_digest_pinned() {
    assert_golden(&uli::Fig5MrUli, &[], GOLDEN_FIG5_MR_ULI_QUICK_SEED0);
}

#[test]
fn table5_covert_quick_digest_pinned() {
    // 80 bits per channel keeps the quick gate fast; the error-rate
    // claims of the paper are covered by the fidelity tests at full
    // length.
    assert_golden(
        &covert::Table5Covert,
        &["--bits", "80"],
        GOLDEN_TABLE5_COVERT_QUICK_SEED0,
    );
}

/// Pinned digests, captured at master seed 0 with the ReferenceQueue
/// backend (pre-calendar engine) and identical under the calendar
/// queue.
const GOLDEN_FIG4_CONTENTION_QUICK_SEED0: &str = "1b17dd9b64584f994538ce521501af66";
const GOLDEN_FIG5_MR_ULI_QUICK_SEED0: &str = "26562aed89784d7becfe780cf259eb7a";
const GOLDEN_TABLE5_COVERT_QUICK_SEED0: &str = "bc6d71c0b219cde00862d55fa1ce7590";
