//! Determinism tests for the cluster-scale scenarios, on both axes
//! that must never matter: the harness worker-thread count
//! (`--threads`) and the PDES worker count (`--workers`). The seed-0
//! quick-mode digests are pinned — the conservative-sync parallel
//! engine is only acceptable because it is *bit-identical* to the
//! sequential oracle, so these constants must survive any engine
//! change at any thread/worker combination.

use ragnar_bench::experiments::cluster;
use ragnar_harness::executor::{self, ExecOptions};
use ragnar_harness::hash::content_hash;
use ragnar_harness::{Cli, Experiment, Outcome};
use std::sync::Mutex;

/// Pinned digest of the noisy-neighbor quick sweep (seed 0, 32-host
/// pod). Captured on the sequential engine; every thread/worker
/// combination must reproduce it bit-for-bit.
const GOLDEN_NOISY_QUICK_SEED0: &str = "6f9a85cd9e3e5ee020c3e9f0e3cca250";

/// Pinned digest of the bankrupt-covert quick sweep (seed 0, 24 bits).
const GOLDEN_BANKRUPT_QUICK_SEED0: &str = "c7273d3641d381ec92eae1cb83f7e5e0";

/// `pdes::set_ambient_workers` is process-global; the cargo test
/// harness runs `#[test]`s concurrently, so every digest run takes
/// this gate to keep one test's worker count from leaking into
/// another's simulation.
static AMBIENT_GATE: Mutex<()> = Mutex::new(());

/// Runs the experiment's quick-mode sweep (no cache, forced) at master
/// seed 0 under the given thread and PDES-worker counts, and digests
/// all artifacts in config order.
fn artifact_digest(
    exp: &dyn Experiment,
    threads: usize,
    workers: usize,
    extras: &[&str],
) -> String {
    let _gate = AMBIENT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    pdes::set_ambient_workers(workers);
    let mut args = vec!["--quick".to_string(), "--seed".to_string(), "0".to_string()];
    args.extend(extras.iter().map(|s| s.to_string()));
    let cli = Cli::parse(args).expect("cli parses");
    let configs = exp.params(&cli);
    let records = executor::execute(
        exp,
        &configs,
        cli.seed,
        None,
        &ExecOptions {
            threads,
            force: true,
            ..Default::default()
        },
    );
    pdes::set_ambient_workers(1);
    let mut material = String::new();
    for r in &records {
        match &r.outcome {
            Outcome::Done(a) => {
                material.push_str(&a.to_value().encode());
                material.push('\n');
            }
            Outcome::Failed { message, .. } => {
                panic!("config [{}] failed: {message}", r.config.label())
            }
            other => panic!("config [{}] did not finish: {other:?}", r.config.label()),
        }
    }
    content_hash(material.as_bytes())
}

/// A pod small enough for the debug-build test budget; the CI smoke
/// run exercises the default 256-host fabric through the binary.
const NOISY_EXTRAS: [&str; 2] = ["--topology", "leaf-spine:hosts=32,leaves=4,spines=2"];
const BANKRUPT_EXTRAS: [&str; 2] = ["--bits", "24"];

#[test]
fn noisy_neighbor_digest_matches_golden_at_every_worker_count() {
    for (threads, workers) in [(1, 1), (2, 2), (8, 8)] {
        let digest = artifact_digest(&cluster::NoisyNeighbor, threads, workers, &NOISY_EXTRAS);
        assert_eq!(
            digest, GOLDEN_NOISY_QUICK_SEED0,
            "noisy_neighbor digest drifted at --threads {threads} --workers {workers}"
        );
    }
}

#[test]
fn bankrupt_covert_digest_matches_golden_at_every_worker_count() {
    for (threads, workers) in [(1, 1), (2, 2), (8, 8)] {
        let digest = artifact_digest(&cluster::BankruptCovert, threads, workers, &BANKRUPT_EXTRAS);
        assert_eq!(
            digest, GOLDEN_BANKRUPT_QUICK_SEED0,
            "bankrupt_covert digest drifted at --threads {threads} --workers {workers}"
        );
    }
}

/// Worker invariance must also hold when a chaos plan perturbs the
/// fabric: fault verdicts are drawn coordinator-side in merge order,
/// so the same faults fire in the same order at any worker count.
#[test]
fn noisy_neighbor_chaos_digest_is_worker_invariant() {
    let extras = [
        "--topology",
        "leaf-spine:hosts=32,leaves=4,spines=2",
        "--chaos-seed",
        "7",
    ];
    let sequential = artifact_digest(&cluster::NoisyNeighbor, 1, 1, &extras);
    let parallel = artifact_digest(&cluster::NoisyNeighbor, 8, 8, &extras);
    assert_eq!(
        sequential, parallel,
        "noisy_neighbor chaos digest differs between workers 1 and 8"
    );
}
