//! Determinism tests for the cluster-scale scenarios: the artifact
//! digest of a fixed-seed sweep must not depend on the worker thread
//! count. Unlike `golden.rs` nothing is pinned — these experiments are
//! new, so the invariant under test is scheduling-independence, not
//! historical stability.

use ragnar_bench::experiments::cluster;
use ragnar_harness::executor::{self, ExecOptions};
use ragnar_harness::hash::content_hash;
use ragnar_harness::{Cli, Experiment, Outcome};

/// Runs the experiment's quick-mode sweep (no cache, forced) at master
/// seed 0 and digests all artifacts in config order.
fn artifact_digest(exp: &dyn Experiment, threads: usize, extras: &[&str]) -> String {
    let mut args = vec!["--quick".to_string(), "--seed".to_string(), "0".to_string()];
    args.extend(extras.iter().map(|s| s.to_string()));
    let cli = Cli::parse(args).expect("cli parses");
    let configs = exp.params(&cli);
    let records = executor::execute(
        exp,
        &configs,
        cli.seed,
        None,
        &ExecOptions {
            threads,
            force: true,
            ..Default::default()
        },
    );
    let mut material = String::new();
    for r in &records {
        match &r.outcome {
            Outcome::Done(a) => {
                material.push_str(&a.to_value().encode());
                material.push('\n');
            }
            Outcome::Failed { message, .. } => {
                panic!("config [{}] failed: {message}", r.config.label())
            }
        }
    }
    content_hash(material.as_bytes())
}

#[test]
fn noisy_neighbor_digest_is_thread_invariant() {
    // A pod small enough for the debug-build test budget; the CI smoke
    // run exercises the default 256-host fabric through the binary.
    let extras = ["--topology", "leaf-spine:hosts=32,leaves=4,spines=2"];
    let single = artifact_digest(&cluster::NoisyNeighbor, 1, &extras);
    let parallel = artifact_digest(&cluster::NoisyNeighbor, 4, &extras);
    assert_eq!(
        single, parallel,
        "noisy_neighbor digest differs between --threads 1 and --threads 4"
    );
}

#[test]
fn bankrupt_covert_digest_is_thread_invariant() {
    let extras = ["--bits", "24"];
    let single = artifact_digest(&cluster::BankruptCovert, 1, &extras);
    let parallel = artifact_digest(&cluster::BankruptCovert, 4, &extras);
    assert_eq!(
        single, parallel,
        "bankrupt_covert digest differs between --threads 1 and --threads 4"
    );
}
