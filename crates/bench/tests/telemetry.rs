//! Telemetry must be a pure observer: turning it on cannot move a
//! single artifact bit, its flags cannot reach cache keys, and the
//! trace it produces must itself be deterministic — the same seed gives
//! a byte-identical Chrome trace at any thread count.

use ragnar_bench::experiments::{cluster, contention, uli};
use ragnar_harness::executor::{self, ExecOptions, TelemetrySpec};
use ragnar_harness::hash::content_hash;
use ragnar_harness::{Cli, Experiment, Outcome, RunRecord, Value};
use ragnar_telemetry::{chrome_trace_json, profile, Target, TargetSet, TraceCell};
use std::sync::Mutex;

/// Pinned quick-mode digests, mirrored from `golden.rs`: the telemetry
/// runs below must reproduce them exactly.
const GOLDEN_FIG4_CONTENTION_QUICK_SEED0: &str = "1b17dd9b64584f994538ce521501af66";
const GOLDEN_FIG5_MR_ULI_QUICK_SEED0: &str = "26562aed89784d7becfe780cf259eb7a";

fn quick_cli(extras: &[&str]) -> Cli {
    let mut args = vec!["--quick".to_string(), "--seed".to_string(), "0".to_string()];
    args.extend(extras.iter().map(|s| s.to_string()));
    Cli::parse(args).expect("cli parses")
}

/// Runs the quick sweep under the given telemetry spec and returns the
/// records in config order.
fn run_quick(
    exp: &dyn Experiment,
    threads: usize,
    extras: &[&str],
    telemetry: TelemetrySpec,
) -> Vec<RunRecord> {
    let cli = quick_cli(extras);
    let configs = exp.params(&cli);
    executor::execute(
        exp,
        &configs,
        cli.seed,
        None,
        &ExecOptions {
            threads,
            force: true,
            telemetry,
            ..Default::default()
        },
    )
}

fn artifact_digest(records: &[RunRecord]) -> String {
    let mut material = String::new();
    for r in records {
        match &r.outcome {
            Outcome::Done(a) => {
                material.push_str(&a.to_value().encode());
                material.push('\n');
            }
            Outcome::Failed { message, .. } => {
                panic!("config [{}] failed: {message}", r.config.label())
            }
            other => panic!("config [{}] did not finish: {other:?}", r.config.label()),
        }
    }
    content_hash(material.as_bytes())
}

fn full_telemetry() -> TelemetrySpec {
    TelemetrySpec {
        trace: true,
        filter: TargetSet::ALL,
        metrics: true,
    }
}

fn trace_json(records: &[RunRecord]) -> String {
    let cells: Vec<TraceCell<'_>> = records
        .iter()
        .filter_map(|r| {
            r.telemetry.as_ref().map(|t| TraceCell {
                label: r.config.label(),
                index: r.index,
                events: &t.events,
            })
        })
        .collect();
    chrome_trace_json(&cells)
}

/// Tracing + metrics on: the artifacts still hash to the pinned golden
/// digests. Telemetry on vs off is bit-invariant.
#[test]
fn telemetry_leaves_golden_digests_unchanged() {
    let fig4 = run_quick(&contention::Fig4Contention, 4, &[], full_telemetry());
    assert_eq!(artifact_digest(&fig4), GOLDEN_FIG4_CONTENTION_QUICK_SEED0);
    let fig5 = run_quick(&uli::Fig5MrUli, 4, &[], full_telemetry());
    assert_eq!(artifact_digest(&fig5), GOLDEN_FIG5_MR_ULI_QUICK_SEED0);
}

/// Same seed ⇒ byte-identical trace JSON at 1 and 4 worker threads, and
/// the trace spans at least the four core layers (with chaos enabled so
/// fault events appear).
#[test]
fn trace_digest_is_thread_count_invariant_and_covers_layers() {
    let extras = ["--chaos-seed", "1"];
    let serial = run_quick(&uli::Fig5MrUli, 1, &extras, full_telemetry());
    let parallel = run_quick(&uli::Fig5MrUli, 4, &extras, full_telemetry());
    let json_serial = trace_json(&serial);
    let json_parallel = trace_json(&parallel);
    assert!(!json_serial.is_empty());
    assert_eq!(
        content_hash(json_serial.as_bytes()),
        content_hash(json_parallel.as_bytes()),
        "trace digest differs between --threads 1 and --threads 4"
    );

    let mut targets = std::collections::BTreeSet::new();
    for r in &serial {
        for e in &r.telemetry.as_ref().expect("telemetry on").events {
            targets.insert(e.target.name());
        }
    }
    for required in [
        Target::SimCore.name(),
        Target::RnicModel.name(),
        Target::RdmaVerbs.name(),
        Target::Chaos.name(),
    ] {
        assert!(
            targets.contains(required),
            "trace is missing events from layer '{required}' (got {targets:?})"
        );
    }
}

/// The exporter's output is well-formed Chrome `trace_event` JSON: it
/// parses, has the documented shape, and every event record carries the
/// fields ui.perfetto.dev requires.
#[test]
fn trace_json_parses_with_chrome_schema() {
    let records = run_quick(&uli::Fig5MrUli, 2, &[], full_telemetry());
    let v = Value::parse(&trace_json(&records)).expect("trace JSON parses");
    assert_eq!(v.get("displayTimeUnit").and_then(Value::as_str), Some("ns"));
    let events = match v.get("traceEvents") {
        Some(Value::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(
            matches!(ph, "X" | "i" | "C" | "M"),
            "unexpected phase {ph:?}"
        );
        assert!(e.get("pid").is_some() && e.get("name").is_some());
        if ph != "M" {
            assert!(e.get("ts").is_some(), "non-metadata event without ts: {e}");
        }
        if ph == "X" {
            assert!(e.get("dur").is_some(), "span without dur: {e}");
        }
    }
}

/// `--trace` / `--trace-filter` / `--metrics` are excluded from cache
/// keys by construction: they parse into dedicated CLI fields (never
/// `extras`, so `Experiment::params` cannot fold them into configs) and
/// per-cell keys are bit-identical with telemetry on and off.
#[test]
fn telemetry_flags_do_not_change_cache_keys() {
    let plain = quick_cli(&[]);
    let traced = quick_cli(&[
        "--trace",
        "/tmp/unused.json",
        "--trace-filter",
        "sim-core,rnic-model",
        "--metrics",
    ]);
    assert!(
        traced.extras().is_empty(),
        "telemetry flags leaked into extras"
    );
    let exp = &contention::Fig4Contention;
    assert_eq!(exp.params(&plain), exp.params(&traced));

    let off = run_quick(exp, 2, &[], TelemetrySpec::default());
    let on = run_quick(exp, 2, &[], full_telemetry());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.cache_key, b.cache_key);
        assert_eq!(a.seed, b.seed);
    }
}

/// `pdes::set_ambient_workers` / `set_ambient_supervision` are
/// process-global; runs that touch them take this gate so concurrent
/// `#[test]`s cannot leak worker counts into each other's simulations.
static AMBIENT_GATE: Mutex<()> = Mutex::new(());

/// The 32-host pod used by the cluster determinism tests — small enough
/// for the debug-build test budget.
const NOISY_EXTRAS: [&str; 2] = ["--topology", "leaf-spine:hosts=32,leaves=4,spines=2"];

/// Tracing the PDES target alone keeps the run parallel-eligible, so
/// the worker-lane track is exercised by the real parallel engine.
fn pdes_only() -> TelemetrySpec {
    TelemetrySpec {
        trace: true,
        filter: TargetSet::parse("pdes").expect("pdes target parses"),
        metrics: false,
    }
}

/// Runs the noisy-neighbor quick sweep at the given harness-thread and
/// PDES-worker counts and returns the Chrome trace JSON.
fn noisy_trace(threads: usize, workers: usize, spec: TelemetrySpec, extras: &[&str]) -> String {
    let _gate = AMBIENT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    pdes::set_ambient_workers(workers);
    let records = run_quick(&cluster::NoisyNeighbor, threads, extras, spec);
    pdes::set_ambient_workers(1);
    trace_json(&records)
}

/// The per-worker PDES window lanes are a *virtual* schedule derived
/// from the deterministic event fold, so the track must be
/// byte-identical at every `--threads` × `--workers` combination —
/// including configurations the sequential oracle executes.
#[test]
fn worker_lane_track_is_thread_and_worker_invariant() {
    let base = noisy_trace(1, 1, pdes_only(), &NOISY_EXTRAS);
    assert!(
        base.contains("\"window\""),
        "pdes trace has no window-lane spans"
    );
    let base_hash = content_hash(base.as_bytes());
    for (threads, workers) in [(4, 2), (1, 8)] {
        let json = noisy_trace(threads, workers, pdes_only(), &NOISY_EXTRAS);
        assert_eq!(
            content_hash(json.as_bytes()),
            base_hash,
            "worker-lane track drifted at --threads {threads} --workers {workers}"
        );
    }
}

/// Worker-lane byte-identity must survive executor chaos: a seeded
/// worker-fault plan panics and respawns PDES workers mid-run, and the
/// self-healing cannot move a single span in the trace.
#[test]
fn worker_lane_track_survives_exec_chaos() {
    let chaos_trace = |threads: usize, workers: usize| {
        let _gate = AMBIENT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let plan =
            ragnar_chaos::ExecFaultPlan::generate(61, &ragnar_chaos::ExecPlanParams::default());
        pdes::set_ambient_supervision(Some(pdes::PoolPolicy {
            stall_timeout: Some(std::time::Duration::from_secs(2)),
            max_respawns: 8,
            fault_hook: Some(plan.to_hook()),
        }));
        pdes::set_ambient_workers(workers);
        let records = run_quick(&cluster::NoisyNeighbor, threads, &NOISY_EXTRAS, pdes_only());
        pdes::set_ambient_workers(1);
        pdes::set_ambient_supervision(None);
        trace_json(&records)
    };
    let two = chaos_trace(4, 2);
    let eight = chaos_trace(1, 8);
    assert!(!two.is_empty());
    assert_eq!(
        content_hash(two.as_bytes()),
        content_hash(eight.as_bytes()),
        "worker-lane track drifted under --exec-chaos-seed between workers 2 and 8"
    );
}

/// The PFC track: pause spans appear on per-port lanes when the sweep
/// includes a PFC-enabled cell, and the full trace stays byte-identical
/// across harness thread counts.
#[test]
fn pfc_pause_spans_are_present_and_thread_invariant() {
    let serial = noisy_trace(1, 1, full_telemetry(), &NOISY_EXTRAS);
    assert!(
        serial.contains("\"pfc_pause\""),
        "noisy-neighbor trace has no pfc_pause spans"
    );
    let parallel = noisy_trace(4, 1, full_telemetry(), &NOISY_EXTRAS);
    assert_eq!(
        content_hash(serial.as_bytes()),
        content_hash(parallel.as_bytes()),
        "PFC track drifted between --threads 1 and --threads 4"
    );
}

/// The profiler is a pure observer too: with phase timing armed, the
/// golden artifact digest is unchanged (the profiler sees wall-clock,
/// the simulation never sees the profiler).
#[test]
fn profiler_leaves_golden_digest_unchanged() {
    profile::reset();
    profile::set_enabled(true);
    let fig4 = run_quick(
        &contention::Fig4Contention,
        2,
        &[],
        TelemetrySpec::default(),
    );
    profile::set_enabled(false);
    assert_eq!(artifact_digest(&fig4), GOLDEN_FIG4_CONTENTION_QUICK_SEED0);
    let snap = profile::snapshot();
    assert!(
        !snap.is_empty() && snap.total_ns() > 0,
        "profiler armed across a sweep but recorded nothing"
    );
}

/// With metrics on, every executed cell carries a metrics report with
/// real samples in it, and the manifest surfaces per-cell event counts.
#[test]
fn metrics_reports_are_attached_to_every_cell() {
    let records = run_quick(&uli::Fig5MrUli, 2, &[], full_telemetry());
    for r in &records {
        let t = r.telemetry.as_ref().expect("telemetry attached");
        assert!(
            t.total_events > 0,
            "cell [{}] traced no events",
            r.config.label()
        );
        let m = t.metrics.as_ref().expect("metrics report attached");
        assert!(
            m.histogram_samples() > 0 || !m.counters.is_empty(),
            "cell [{}] recorded no metrics",
            r.config.label()
        );
    }
    let manifest =
        ragnar_harness::Manifest::from_records("fig5_mr_uli", 0, 2, &records, vec![], 1.0);
    assert_eq!(manifest.cells.len(), records.len());
    assert!(manifest.telemetry_events > 0);
    assert!(manifest.cells.iter().all(|c| c.events > 0));
    assert_eq!(manifest.cache_hit_rate(), 0.0);
    assert!(manifest.summary_line().contains("trace events"));
}
