//! Telemetry must be a pure observer: turning it on cannot move a
//! single artifact bit, its flags cannot reach cache keys, and the
//! trace it produces must itself be deterministic — the same seed gives
//! a byte-identical Chrome trace at any thread count.

use ragnar_bench::experiments::{contention, uli};
use ragnar_harness::executor::{self, ExecOptions, TelemetrySpec};
use ragnar_harness::hash::content_hash;
use ragnar_harness::{Cli, Experiment, Outcome, RunRecord, Value};
use ragnar_telemetry::{chrome_trace_json, Target, TargetSet, TraceCell};

/// Pinned quick-mode digests, mirrored from `golden.rs`: the telemetry
/// runs below must reproduce them exactly.
const GOLDEN_FIG4_CONTENTION_QUICK_SEED0: &str = "1b17dd9b64584f994538ce521501af66";
const GOLDEN_FIG5_MR_ULI_QUICK_SEED0: &str = "26562aed89784d7becfe780cf259eb7a";

fn quick_cli(extras: &[&str]) -> Cli {
    let mut args = vec!["--quick".to_string(), "--seed".to_string(), "0".to_string()];
    args.extend(extras.iter().map(|s| s.to_string()));
    Cli::parse(args).expect("cli parses")
}

/// Runs the quick sweep under the given telemetry spec and returns the
/// records in config order.
fn run_quick(
    exp: &dyn Experiment,
    threads: usize,
    extras: &[&str],
    telemetry: TelemetrySpec,
) -> Vec<RunRecord> {
    let cli = quick_cli(extras);
    let configs = exp.params(&cli);
    executor::execute(
        exp,
        &configs,
        cli.seed,
        None,
        &ExecOptions {
            threads,
            force: true,
            telemetry,
            ..Default::default()
        },
    )
}

fn artifact_digest(records: &[RunRecord]) -> String {
    let mut material = String::new();
    for r in records {
        match &r.outcome {
            Outcome::Done(a) => {
                material.push_str(&a.to_value().encode());
                material.push('\n');
            }
            Outcome::Failed { message, .. } => {
                panic!("config [{}] failed: {message}", r.config.label())
            }
            other => panic!("config [{}] did not finish: {other:?}", r.config.label()),
        }
    }
    content_hash(material.as_bytes())
}

fn full_telemetry() -> TelemetrySpec {
    TelemetrySpec {
        trace: true,
        filter: TargetSet::ALL,
        metrics: true,
    }
}

fn trace_json(records: &[RunRecord]) -> String {
    let cells: Vec<TraceCell<'_>> = records
        .iter()
        .filter_map(|r| {
            r.telemetry.as_ref().map(|t| TraceCell {
                label: r.config.label(),
                index: r.index,
                events: &t.events,
            })
        })
        .collect();
    chrome_trace_json(&cells)
}

/// Tracing + metrics on: the artifacts still hash to the pinned golden
/// digests. Telemetry on vs off is bit-invariant.
#[test]
fn telemetry_leaves_golden_digests_unchanged() {
    let fig4 = run_quick(&contention::Fig4Contention, 4, &[], full_telemetry());
    assert_eq!(artifact_digest(&fig4), GOLDEN_FIG4_CONTENTION_QUICK_SEED0);
    let fig5 = run_quick(&uli::Fig5MrUli, 4, &[], full_telemetry());
    assert_eq!(artifact_digest(&fig5), GOLDEN_FIG5_MR_ULI_QUICK_SEED0);
}

/// Same seed ⇒ byte-identical trace JSON at 1 and 4 worker threads, and
/// the trace spans at least the four core layers (with chaos enabled so
/// fault events appear).
#[test]
fn trace_digest_is_thread_count_invariant_and_covers_layers() {
    let extras = ["--chaos-seed", "1"];
    let serial = run_quick(&uli::Fig5MrUli, 1, &extras, full_telemetry());
    let parallel = run_quick(&uli::Fig5MrUli, 4, &extras, full_telemetry());
    let json_serial = trace_json(&serial);
    let json_parallel = trace_json(&parallel);
    assert!(!json_serial.is_empty());
    assert_eq!(
        content_hash(json_serial.as_bytes()),
        content_hash(json_parallel.as_bytes()),
        "trace digest differs between --threads 1 and --threads 4"
    );

    let mut targets = std::collections::BTreeSet::new();
    for r in &serial {
        for e in &r.telemetry.as_ref().expect("telemetry on").events {
            targets.insert(e.target.name());
        }
    }
    for required in [
        Target::SimCore.name(),
        Target::RnicModel.name(),
        Target::RdmaVerbs.name(),
        Target::Chaos.name(),
    ] {
        assert!(
            targets.contains(required),
            "trace is missing events from layer '{required}' (got {targets:?})"
        );
    }
}

/// The exporter's output is well-formed Chrome `trace_event` JSON: it
/// parses, has the documented shape, and every event record carries the
/// fields ui.perfetto.dev requires.
#[test]
fn trace_json_parses_with_chrome_schema() {
    let records = run_quick(&uli::Fig5MrUli, 2, &[], full_telemetry());
    let v = Value::parse(&trace_json(&records)).expect("trace JSON parses");
    assert_eq!(v.get("displayTimeUnit").and_then(Value::as_str), Some("ns"));
    let events = match v.get("traceEvents") {
        Some(Value::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(
            matches!(ph, "X" | "i" | "C" | "M"),
            "unexpected phase {ph:?}"
        );
        assert!(e.get("pid").is_some() && e.get("name").is_some());
        if ph != "M" {
            assert!(e.get("ts").is_some(), "non-metadata event without ts: {e}");
        }
        if ph == "X" {
            assert!(e.get("dur").is_some(), "span without dur: {e}");
        }
    }
}

/// `--trace` / `--trace-filter` / `--metrics` are excluded from cache
/// keys by construction: they parse into dedicated CLI fields (never
/// `extras`, so `Experiment::params` cannot fold them into configs) and
/// per-cell keys are bit-identical with telemetry on and off.
#[test]
fn telemetry_flags_do_not_change_cache_keys() {
    let plain = quick_cli(&[]);
    let traced = quick_cli(&[
        "--trace",
        "/tmp/unused.json",
        "--trace-filter",
        "sim-core,rnic-model",
        "--metrics",
    ]);
    assert!(
        traced.extras().is_empty(),
        "telemetry flags leaked into extras"
    );
    let exp = &contention::Fig4Contention;
    assert_eq!(exp.params(&plain), exp.params(&traced));

    let off = run_quick(exp, 2, &[], TelemetrySpec::default());
    let on = run_quick(exp, 2, &[], full_telemetry());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.cache_key, b.cache_key);
        assert_eq!(a.seed, b.seed);
    }
}

/// With metrics on, every executed cell carries a metrics report with
/// real samples in it, and the manifest surfaces per-cell event counts.
#[test]
fn metrics_reports_are_attached_to_every_cell() {
    let records = run_quick(&uli::Fig5MrUli, 2, &[], full_telemetry());
    for r in &records {
        let t = r.telemetry.as_ref().expect("telemetry attached");
        assert!(
            t.total_events > 0,
            "cell [{}] traced no events",
            r.config.label()
        );
        let m = t.metrics.as_ref().expect("metrics report attached");
        assert!(
            m.histogram_samples() > 0 || !m.counters.is_empty(),
            "cell [{}] recorded no metrics",
            r.config.label()
        );
    }
    let manifest =
        ragnar_harness::Manifest::from_records("fig5_mr_uli", 0, 2, &records, vec![], 1.0);
    assert_eq!(manifest.cells.len(), records.len());
    assert!(manifest.telemetry_events > 0);
    assert!(manifest.cells.iter().all(|c| c.events > 0));
    assert_eq!(manifest.cache_hit_rate(), 0.0);
    assert!(manifest.summary_line().contains("trace events"));
}
