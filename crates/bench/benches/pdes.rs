//! PDES engine A/B: the sequential oracle against the conservative-sync
//! parallel engine at 8 workers, on two regimes:
//!
//! - `pdes_nic_storm` — a 2-host closed-loop packet storm driven by a
//!   send app homed on the requester. Only two partition groups exist
//!   and every packet crosses between them, so the window is pinned to
//!   the link lookahead; the ratio measures round/merge overhead on a
//!   tightly coupled worst case.
//! - `pdes_noisy_neighbor` — the paper-scale 256-host noisy-neighbor
//!   quick cell (64 attacker QPs, no PFC), where tenant pairs fan out
//!   into many independent groups and the NIC-model work parallelizes.
//!
//! The measured numbers (and the workers-8/sequential speedup ratio)
//! are recorded in `BENCH_pdes.json` at the repo root; re-run with
//! `cargo bench --bench pdes` after engine changes.

use criterion::{criterion_group, criterion_main, Criterion};
use ragnar_bench::experiments::cluster::NoisyNeighbor;
use ragnar_harness::{Config, Experiment};
use rdma_verbs::{
    AccessFlags, App, ConnectOptions, Cqe, Ctx, DeviceProfile, HostId, QpHandle, Simulation,
    WorkRequest,
};
use sim_core::SimTime;
use std::hint::black_box;

/// Closed-loop requester: keeps every send queue full, reposting each
/// completion immediately — the app-driven equivalent of the
/// `eventcore` bench's driver-loop storm.
struct StormApp {
    qps: Vec<QpHandle>,
    mr: rdma_verbs::MrHandle,
    wr_id: u64,
    done: u64,
}

impl StormApp {
    fn post(&mut self, ctx: &mut Ctx<'_>, qp: QpHandle) {
        self.wr_id += 1;
        let wr = WorkRequest::read(self.wr_id, 0x1000, self.mr.addr(0), self.mr.key, 256);
        let _ = ctx.post_send(qp, wr);
    }
}

impl App for StormApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.qps.len() {
            let qp = self.qps[i];
            for _ in 0..64 {
                self.post(ctx, qp);
            }
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, _cqe: Cqe) {
        self.done += 1;
        let qp = self.qps[(self.done % self.qps.len() as u64) as usize];
        self.post(ctx, qp);
    }
}

/// Runs the storm for 300 µs of simulated time and returns events
/// processed (identical at every worker count — the engines are
/// bit-equivalent, so only wall-clock differs).
fn storm(workers: usize) -> u64 {
    let mut sim = Simulation::new(1);
    let requester = sim.add_host(DeviceProfile::connectx5());
    let responder = sim.add_host(DeviceProfile::connectx5());
    let pd_r = sim.alloc_pd(requester);
    let pd_s = sim.alloc_pd(responder);
    let mr = sim.register_mr(responder, pd_s, 1 << 21, AccessFlags::remote_all());
    let qps: Vec<_> = (0..4)
        .map(|_| {
            sim.connect(
                requester,
                pd_r,
                responder,
                pd_s,
                ConnectOptions {
                    max_send_queue: 64,
                    ..ConnectOptions::default()
                },
            )
            .0
        })
        .collect();
    let app = sim.add_send_app(Box::new(StormApp {
        qps: qps.clone(),
        mr,
        wr_id: 0,
        done: 0,
    }));
    for qp in qps {
        sim.own_qp(app, qp);
    }
    sim.set_app_scope(app, &[requester]);
    sim.run_until_workers(SimTime::from_micros(300), workers)
}

fn bench_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdes_nic_storm");
    g.sample_size(10);
    g.bench_function("sequential", |b| b.iter(|| black_box(storm(1))));
    g.bench_function("workers8", |b| b.iter(|| black_box(storm(8))));
    g.finish();
}

/// The 256-host noisy-neighbor quick cell, run through the experiment
/// itself so the bench measures exactly what the harness executes.
fn noisy_cell(workers: usize) -> f64 {
    pdes::set_ambient_workers(workers);
    let config = Config::new()
        .with("topology", "leaf-spine:hosts=256,leaves=8,spines=4")
        .with("attacker_qps", 64u64)
        .with("pfc", false)
        .with("placement_seed", 0u64);
    let artifact = NoisyNeighbor.run(&config, 0).expect("cell runs");
    pdes::set_ambient_workers(1);
    artifact
        .metrics
        .get("victim_p99_ns")
        .and_then(|v| v.as_f64())
        .expect("victim p99 present")
}

fn bench_noisy(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdes_noisy_neighbor_256");
    g.sample_size(10);
    g.bench_function("sequential", |b| b.iter(|| black_box(noisy_cell(1))));
    g.bench_function("workers8", |b| b.iter(|| black_box(noisy_cell(8))));
    g.finish();
}

criterion_group!(benches, bench_storm, bench_noisy);
criterion_main!(benches);
