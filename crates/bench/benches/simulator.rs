//! Criterion benches of the simulation substrate: raw engine throughput
//! and the hot paths of the RNIC model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rdma_verbs::{AccessFlags, ConnectOptions, DeviceProfile, Simulation, WorkRequest};
use rnic_model::{MrEntry, MrKey, Opcode, PdId, SetAssocCache, TranslationUnit};
use sim_core::{EventQueue, SimRng, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 37) % 50_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_tpu(c: &mut Criterion) {
    let profile = DeviceProfile::connectx4();
    let mut g = c.benchmark_group("tpu");
    g.throughput(Throughput::Elements(1));
    g.bench_function("access", |b| {
        let mut tpu = TranslationUnit::new(&profile);
        tpu.register_mr(MrEntry {
            key: MrKey(1),
            pd: PdId(0),
            base_va: 0x20_0000,
            len: 4 << 20,
            access: AccessFlags::remote_all(),
        });
        let mut rng = SimRng::seed_from(1);
        let mut t = SimTime::ZERO;
        let mut off = 0u64;
        b.iter(|| {
            t += sim_core::SimDuration::from_nanos(500);
            off = (off + 4160) % ((4 << 20) - 4160);
            black_box(
                tpu.access(
                    t,
                    &mut rng,
                    PdId(0),
                    Opcode::Read,
                    MrKey(1),
                    0x20_0000 + off,
                    64,
                )
                .expect("valid"),
            )
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpt_cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("access", |b| {
        let mut cache = SetAssocCache::new(2048, 8);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(cache.access(i % 4096))
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.sample_size(10);
    // A saturated 1 KB read flow simulated for 200 µs: measures overall
    // events-per-wall-second of the full stack.
    g.bench_function("read_flow_200us_sim", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let a = sim.add_host(DeviceProfile::connectx5());
            let s = sim.add_host(DeviceProfile::connectx5());
            let pd_a = sim.alloc_pd(a);
            let pd_s = sim.alloc_pd(s);
            let mr = sim.register_mr(s, pd_s, 1 << 21, AccessFlags::remote_all());
            let (qa, _) = sim.connect(
                a,
                pd_a,
                s,
                pd_s,
                ConnectOptions {
                    max_send_queue: 32,
                    ..ConnectOptions::default()
                },
            );
            // Closed loop driven synchronously.
            for i in 0..32u64 {
                sim.post_send(qa, WorkRequest::read(i, 0x1000, mr.addr(0), mr.key, 1024))
                    .expect("post");
            }
            let mut done = 0u64;
            while sim.now() < SimTime::from_micros(200) {
                sim.run_until(SimTime::from_micros(200));
                let completions = sim.take_completions();
                if completions.is_empty() {
                    break;
                }
                for _ in completions {
                    done += 1;
                    let _ = sim.post_send(
                        qa,
                        WorkRequest::read(done, 0x1000, mr.addr(0), mr.key, 1024),
                    );
                }
            }
            black_box(done)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_tpu,
    bench_cache,
    bench_end_to_end
);
criterion_main!(benches);
