//! A/B benches of the event core: the hierarchical [`CalendarQueue`]
//! against the heap-based [`ReferenceQueue`] ordering oracle, on raw
//! schedule/pop churn with a large in-flight population and on a full
//! NIC packet storm through the verbs stack.
//!
//! The measured numbers (and the CalendarQueue/ReferenceQueue speedup
//! ratio) are recorded in `BENCH_eventcore.json` at the repo root;
//! re-run with `cargo bench --bench eventcore` after engine changes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rdma_verbs::{
    AccessFlags, ConnectOptions, DeviceProfile, QueueBackend, Simulation, WorkRequest,
};
use sim_core::{CalendarQueue, EventSchedule, ReferenceQueue, SimDuration, SimRng, SimTime};
use std::hint::black_box;

/// Steady-state population held in the queue during churn.
const IN_FLIGHT: u64 = 100_000;
/// Pop+reschedule operations per iteration.
const CHURN_OPS: u64 = 200_000;

/// Schedule/pop churn at a steady population of [`IN_FLIGHT`] events:
/// each op pops the earliest event and reschedules it at a pseudo-random
/// offset up to ~1 µs ahead — the regime the NIC model's in-flight
/// packet and completion events live in. Identical op sequence for both
/// backends (same seed), so the timing difference is pure queue cost.
fn churn<Q: EventSchedule<u64>>(mut q: Q) -> u64 {
    let mut rng = SimRng::seed_from(42);
    let mut t = SimTime::ZERO;
    for i in 0..IN_FLIGHT {
        t += SimDuration::from_picos(rng.uniform_range(1, 20_000));
        q.schedule(t, i);
    }
    let mut acc = 0u64;
    for _ in 0..CHURN_OPS {
        let (at, v) = q.pop().expect("population stays constant");
        acc = acc.wrapping_add(v);
        q.schedule(
            at + SimDuration::from_picos(rng.uniform_range(1, 1_000_000)),
            v,
        );
    }
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("eventcore_churn_100k");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CHURN_OPS));
    g.bench_function("calendar", |b| {
        b.iter(|| black_box(churn(CalendarQueue::<u64>::new())))
    });
    g.bench_function("reference", |b| {
        b.iter(|| black_box(churn(ReferenceQueue::<u64>::new())))
    });
    g.finish();
}

/// Full-stack packet storm: 4 QPs saturating one responder with small
/// reads for 300 µs of simulated time, per backend. Measures the queue's
/// share of end-to-end simulation throughput.
fn storm(backend: QueueBackend) -> u64 {
    let mut sim = Simulation::with_backend(1, backend);
    let requester = sim.add_host(DeviceProfile::connectx5());
    let responder = sim.add_host(DeviceProfile::connectx5());
    let pd_r = sim.alloc_pd(requester);
    let pd_s = sim.alloc_pd(responder);
    let mr = sim.register_mr(responder, pd_s, 1 << 21, AccessFlags::remote_all());
    let qps: Vec<_> = (0..4)
        .map(|_| {
            sim.connect(
                requester,
                pd_r,
                responder,
                pd_s,
                ConnectOptions {
                    max_send_queue: 64,
                    ..ConnectOptions::default()
                },
            )
            .0
        })
        .collect();
    let mut wr_id = 0u64;
    for &qp in &qps {
        for _ in 0..64 {
            wr_id += 1;
            sim.post_send(
                qp,
                WorkRequest::read(wr_id, 0x1000, mr.addr(0), mr.key, 256),
            )
            .expect("post");
        }
    }
    let mut done = 0u64;
    while sim.now() < SimTime::from_micros(300) {
        sim.run_until(SimTime::from_micros(300));
        let completions = sim.take_completions();
        if completions.is_empty() {
            break;
        }
        for _ in completions {
            done += 1;
            wr_id += 1;
            let qp = qps[(done % qps.len() as u64) as usize];
            let _ = sim.post_send(
                qp,
                WorkRequest::read(wr_id, 0x1000, mr.addr(0), mr.key, 256),
            );
        }
    }
    done
}

fn bench_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("eventcore_nic_storm");
    g.sample_size(10);
    g.bench_function("calendar", |b| {
        b.iter(|| black_box(storm(QueueBackend::Calendar)))
    });
    g.bench_function("reference", |b| {
        b.iter(|| black_box(storm(QueueBackend::Reference)))
    });
    g.finish();
}

criterion_group!(benches, bench_churn, bench_storm);
criterion_main!(benches);
