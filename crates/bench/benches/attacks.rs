//! Criterion benches of the attack pipelines: how much wall time each
//! stage of the reproduction costs.

use criterion::{criterion_group, criterion_main, Criterion};
use ragnar_core::covert::{inter_mr, random_bits};
use ragnar_core::re::uli::probe_uli;
use ragnar_core::{AddressPattern, Target};
use ragnar_workloads::sherman::{value_from, ShermanTree};
use rdma_verbs::{AccessFlags, DeviceKind};
use sim_core::SimTime;
use std::hint::black_box;
use trace_classifier::{Dataset, MlpClassifier, TrainConfig};

fn bench_uli_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("attack_stages");
    g.sample_size(10);
    g.bench_function("uli_probe_100us", |b| {
        b.iter(|| {
            let samples = probe_uli(
                &rdma_verbs::DeviceProfile::connectx4(),
                8,
                64,
                |tb| {
                    let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
                    AddressPattern::Fixed(Target {
                        key: mr.key,
                        addr: mr.addr(0),
                    })
                },
                SimTime::from_micros(100),
                10,
                7,
            );
            black_box(samples.len())
        })
    });

    g.bench_function("inter_mr_channel_64bits_cx4", |b| {
        let bits = random_bits(64, 9);
        let cfg = inter_mr::default_config(DeviceKind::ConnectX4);
        b.iter(|| {
            black_box(
                inter_mr::run(DeviceKind::ConnectX4, &bits, &cfg)
                    .report
                    .bit_errors,
            )
        })
    });

    g.bench_function("sherman_bulk_load_10k", |b| {
        let pairs: Vec<(u64, [u8; 56])> = (0..10_000u64)
            .map(|i| (i * 2 + 1, value_from(b"v")))
            .collect();
        b.iter(|| black_box(ShermanTree::bulk_load(&pairs, 0.8).node_count()))
    });

    g.bench_function("mlp_train_small", |b| {
        let mut data = Dataset::new(32);
        let mut rng = sim_core::SimRng::seed_from(3);
        for i in 0..200 {
            let c = i % 4;
            let trace: Vec<f64> = (0..32)
                .map(|j| if j == c * 8 { 4.0 } else { rng.uniform() })
                .collect();
            data.push(&trace, c);
        }
        data.normalize_per_sample();
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        b.iter(|| {
            let clf = MlpClassifier::train(&data, &cfg);
            black_box(clf.evaluate(&data).0)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_uli_probe);
criterion_main!(benches);
