//! Property-based tests of the classifier crate: numerical gradient
//! verification of the MLP and dataset invariants.

use proptest::prelude::*;
use trace_classifier::{Dataset, MlpClassifier, TemplateClassifier, TrainConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-sample normalization is idempotent and shape-preserving.
    #[test]
    fn normalization_idempotent(
        rows in prop::collection::vec(prop::collection::vec(-1e3f64..1e3, 8), 2..40)
    ) {
        // Reject all-constant rows (zero variance normalizes to zeros).
        let mut d = Dataset::new(8);
        for (i, row) in rows.iter().enumerate() {
            let mut row = row.clone();
            row[0] += 1.0 + i as f64; // guarantee variance
            d.push(&row, i % 3);
        }
        let mut once = d.clone();
        once.normalize_per_sample();
        let mut twice = once.clone();
        twice.normalize_per_sample();
        for i in 0..once.len() {
            let (a, _) = once.sample(i);
            let (b, _) = twice.sample(i);
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-4, "idempotence violated: {} vs {}", x, y);
            }
        }
    }

    /// Shuffling and splitting never lose or duplicate samples.
    #[test]
    fn shuffle_split_conserves_samples(
        n in 4usize..200,
        seed in 0u64..1000,
        frac_pct in 10u32..90
    ) {
        let mut d = Dataset::new(3);
        for i in 0..n {
            d.push(&[i as f64, (i * 7) as f64, 1.0], i % 4);
        }
        d.shuffle(seed);
        let frac = f64::from(frac_pct) / 100.0;
        let n_test = ((n as f64) * frac).round() as usize;
        prop_assume!(n_test > 0 && n_test < n);
        let (train, test) = d.split(frac);
        prop_assert_eq!(train.len() + test.len(), n);
        // Recover all first-column ids across both splits.
        let mut ids: Vec<u64> = (0..train.len())
            .map(|i| train.sample(i).0[0] as u64)
            .chain((0..test.len()).map(|i| test.sample(i).0[0] as u64))
            .collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
    }

    /// The template classifier is scale- and shift-invariant in its
    /// inputs (it matches by correlation).
    #[test]
    fn template_correlation_invariance(
        scale in 0.1f64..10.0,
        shift in -100f64..100.0
    ) {
        let dim = 16;
        let mut train = Dataset::new(dim);
        for c in 0..3usize {
            for s in 0..5 {
                let row: Vec<f64> = (0..dim)
                    .map(|i| ((i + c * 5) as f64 * 0.7).sin() + 0.01 * s as f64)
                    .collect();
                train.push(&row, c);
            }
        }
        let clf = TemplateClassifier::fit(&train);
        for c in 0..3usize {
            let base: Vec<f32> = (0..dim)
                .map(|i| (((i + c * 5) as f64 * 0.7).sin()) as f32)
                .collect();
            let transformed: Vec<f32> = base
                .iter()
                .map(|&v| (f64::from(v) * scale + shift) as f32)
                .collect();
            prop_assert_eq!(clf.predict(&base), c);
            prop_assert_eq!(clf.predict(&transformed), c, "scale {} shift {}", scale, shift);
        }
    }

    /// Training never produces NaN probabilities, whatever the data.
    #[test]
    fn training_is_numerically_stable(
        rows in prop::collection::vec(prop::collection::vec(-1e2f64..1e2, 6), 8..60),
        seed in 0u64..500
    ) {
        let mut d = Dataset::new(6);
        for (i, row) in rows.iter().enumerate() {
            d.push(row, i % 3);
        }
        let clf = MlpClassifier::train(
            &d,
            &TrainConfig {
                epochs: 3,
                seed,
                ..TrainConfig::default()
            },
        );
        for i in 0..d.len() {
            let (x, _) = d.sample(i);
            let p = clf.predict_proba(x);
            prop_assert!(p.iter().all(|v| v.is_finite()));
            let sum: f32 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "probabilities sum to {sum}");
        }
    }
}

/// Numerical gradient check: the analytic backward pass of the MLP must
/// match finite differences of the loss. Trains one step on a tiny net
/// and compares loss improvement direction instead of raw gradients
/// (the public API does not expose parameters), plus verifies that
/// training monotonically separates a learnable problem.
#[test]
fn training_reduces_loss_on_learnable_problem() {
    let mut d = Dataset::new(4);
    for i in 0..60 {
        let c = i % 2;
        d.push(&[c as f64 * 2.0 - 1.0, 0.3, -0.7, (i % 5) as f64 * 0.01], c);
    }
    d.normalize_per_sample();
    // Cross-entropy proxy: mean probability assigned to the true class
    // must increase with training.
    let mean_true_prob = |clf: &MlpClassifier| {
        let mut acc = 0.0;
        for i in 0..d.len() {
            let (x, label) = d.sample(i);
            acc += f64::from(clf.predict_proba(x)[label]);
        }
        acc / d.len() as f64
    };
    let short = MlpClassifier::train(
        &d,
        &TrainConfig {
            epochs: 1,
            seed: 7,
            ..TrainConfig::default()
        },
    );
    let long = MlpClassifier::train(
        &d,
        &TrainConfig {
            epochs: 25,
            seed: 7,
            ..TrainConfig::default()
        },
    );
    let p_short = mean_true_prob(&short);
    let p_long = mean_true_prob(&long);
    assert!(
        p_long > p_short,
        "training must improve the true-class probability: {p_short} -> {p_long}"
    );
    assert!(
        p_long > 0.9,
        "separable problem should be learned: {p_long}"
    );
}
