//! # trace-classifier — pure-Rust classifiers for side-channel traces
//!
//! Step ❸ of the paper's Fig.-13 attack recovers the victim's access
//! address from a 257-dimensional ULI trace with a neural classifier.
//! This crate provides:
//!
//! * [`Dataset`] — labelled traces with per-sample normalization,
//!   deterministic shuffling and train/test splitting;
//! * [`MlpClassifier`] — a two-hidden-layer perceptron trained with Adam
//!   (the documented substitution for the paper's ResNet18: for a
//!   257-sample input it reaches the same ≥95 % accuracy target);
//! * [`CnnClassifier`] — a small 1-D CNN (conv→pool→conv→GAP→dense),
//!   closer to the paper's convolutional choice and robust to trace
//!   shifts;
//! * [`TemplateClassifier`] — a nearest-centroid baseline.
//!
//! # Examples
//!
//! ```
//! use trace_classifier::{Dataset, MlpClassifier, TrainConfig};
//!
//! let mut data = Dataset::new(4);
//! for i in 0..40 {
//!     let c = i % 2;
//!     let trace = [c as f64 * 3.0, 1.0, 0.5, (i % 5) as f64 * 0.01];
//!     data.push(&trace, c);
//! }
//! data.shuffle(7);
//! let (train, test) = data.split(0.25);
//! let clf = MlpClassifier::train(&train, &TrainConfig::default());
//! let (accuracy, _confusion) = clf.evaluate(&test);
//! assert!(accuracy > 0.9);
//! ```

#![warn(missing_docs)]

mod cnn;
mod data;
mod mlp;
mod template;

pub use cnn::{CnnClassifier, CnnConfig};
pub use data::Dataset;
pub use mlp::{MlpClassifier, TrainConfig};
pub use template::TemplateClassifier;
