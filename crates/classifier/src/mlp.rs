//! A small multilayer perceptron trained with Adam.
//!
//! The paper uses a ResNet18 for its 17-way classification of 257-sample
//! ULI traces. That capacity is unnecessary for this input size — a
//! two-hidden-layer MLP reaches the same ≥95 % accuracy target (the
//! substitution is recorded in `DESIGN.md`). The implementation is pure
//! Rust: dense layers, ReLU, softmax cross-entropy, mini-batch Adam.

use crate::data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dense layer with its Adam state.
#[derive(Debug, Clone)]
struct Dense {
    inputs: usize,
    outputs: usize,
    w: Vec<f32>, // outputs × inputs, row-major
    b: Vec<f32>,
    // Adam moments.
    mw: Vec<f32>,
    vw: Vec<f32>,
    mb: Vec<f32>,
    vb: Vec<f32>,
    // Scratch for the last batch.
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU nets.
        let scale = (2.0 / inputs as f32).sqrt();
        let w = (0..inputs * outputs)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect::<Vec<_>>();
        Dense {
            inputs,
            outputs,
            b: vec![0.0; outputs],
            mw: vec![0.0; inputs * outputs],
            vw: vec![0.0; inputs * outputs],
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
            grad_w: vec![0.0; inputs * outputs],
            grad_b: vec![0.0; outputs],
            w,
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.outputs);
        for o in 0..self.outputs {
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }

    /// Accumulates gradients for one sample and returns dL/dx.
    fn backward(&mut self, x: &[f32], dy: &[f32], dx: &mut Vec<f32>) {
        dx.clear();
        dx.resize(self.inputs, 0.0);
        for (o, &g) in dy.iter().enumerate().take(self.outputs) {
            self.grad_b[o] += g;
            let row = &mut self.grad_w[o * self.inputs..(o + 1) * self.inputs];
            let wrow = &self.w[o * self.inputs..(o + 1) * self.inputs];
            for i in 0..self.inputs {
                row[i] += g * x[i];
                dx[i] += wrow[i] * g;
            }
        }
    }

    fn zero_grad(&mut self) {
        self.grad_w.iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn adam_step(&mut self, lr: f32, t: i32, batch: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let bc1 = 1.0 - B1.powi(t);
        let bc2 = 1.0 - B2.powi(t);
        for i in 0..self.w.len() {
            let g = self.grad_w[i] / batch;
            self.mw[i] = B1 * self.mw[i] + (1.0 - B1) * g;
            self.vw[i] = B2 * self.vw[i] + (1.0 - B2) * g * g;
            self.w[i] -= lr * (self.mw[i] / bc1) / ((self.vw[i] / bc2).sqrt() + EPS);
        }
        for i in 0..self.b.len() {
            let g = self.grad_b[i] / batch;
            self.mb[i] = B1 * self.mb[i] + (1.0 - B1) * g;
            self.vb[i] = B2 * self.vb[i] + (1.0 - B2) * g * g;
            self.b[i] -= lr * (self.mb[i] / bc1) / ((self.vb[i] / bc2).sqrt() + EPS);
        }
    }
}

/// Softmax in place; returns nothing, `logits` become probabilities.
fn softmax(logits: &mut [f32]) {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in logits.iter_mut() {
        *v /= sum;
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Weight initialization / batch order seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden: vec![64, 32],
            learning_rate: 1e-3,
            batch_size: 32,
            epochs: 30,
            seed: 0x5EED,
        }
    }
}

/// The trained classifier.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    layers: Vec<Dense>,
    classes: usize,
}

impl MlpClassifier {
    /// Trains on the dataset (already normalized/shuffled by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(train: &Dataset, cfg: &TrainConfig) -> Self {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let classes = train.class_count();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = vec![train.dim()];
        dims.extend(&cfg.hidden);
        dims.push(classes);
        let mut layers: Vec<Dense> = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();

        let n = train.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut step = 0;
        for _epoch in 0..cfg.epochs {
            // Shuffle batch order.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(cfg.batch_size) {
                for l in &mut layers {
                    l.zero_grad();
                }
                for &idx in batch {
                    let (x, label) = train.sample(idx);
                    // Forward with activation caches.
                    let mut acts: Vec<Vec<f32>> = Vec::with_capacity(layers.len() + 1);
                    acts.push(x.to_vec());
                    for (li, l) in layers.iter().enumerate() {
                        let mut out = Vec::new();
                        l.forward(acts.last().expect("activation"), &mut out);
                        if li + 1 < layers.len() {
                            for v in &mut out {
                                *v = v.max(0.0); // ReLU
                            }
                        }
                        acts.push(out);
                    }
                    // Softmax cross-entropy gradient.
                    let mut probs = acts.last().expect("logits").clone();
                    softmax(&mut probs);
                    let mut dy: Vec<f32> = probs;
                    dy[label] -= 1.0;
                    // Backward.
                    let mut dx = Vec::new();
                    for li in (0..layers.len()).rev() {
                        let input = &acts[li];
                        layers[li].backward(input, &dy, &mut dx);
                        if li > 0 {
                            // Through the ReLU of the previous layer.
                            for (d, a) in dx.iter_mut().zip(&acts[li]) {
                                if *a <= 0.0 {
                                    *d = 0.0;
                                }
                            }
                        }
                        std::mem::swap(&mut dy, &mut dx);
                    }
                }
                step += 1;
                for l in &mut layers {
                    l.adam_step(cfg.learning_rate, step, batch.len() as f32);
                }
            }
        }
        MlpClassifier { layers, classes }
    }

    /// Number of output classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Class probabilities for one trace.
    pub fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        let mut out = Vec::new();
        for (li, l) in self.layers.iter().enumerate() {
            l.forward(&cur, &mut out);
            if li + 1 < self.layers.len() {
                for v in &mut out {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut out);
        }
        softmax(&mut cur);
        cur
    }

    /// Most likely class for one trace.
    pub fn predict(&self, x: &[f32]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("non-empty output")
    }

    /// Accuracy on a dataset, plus the confusion matrix
    /// (`confusion[truth][pred]`).
    pub fn evaluate(&self, data: &Dataset) -> (f64, Vec<Vec<u32>>) {
        let mut confusion = vec![vec![0u32; self.classes]; self.classes];
        let mut correct = 0usize;
        for i in 0..data.len() {
            let (x, label) = data.sample(i);
            let pred = self.predict(x);
            confusion[label][pred.min(self.classes - 1)] += 1;
            if pred == label {
                correct += 1;
            }
        }
        (correct as f64 / data.len() as f64, confusion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a separable synthetic problem: class k has a bump at
    /// position k.
    fn bumps(classes: usize, per_class: usize, noise: f64, seed: u64) -> Dataset {
        let dim = 20;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(dim);
        for c in 0..classes {
            for _ in 0..per_class {
                let mut trace = vec![0.0f64; dim];
                for (i, t) in trace.iter_mut().enumerate() {
                    let bump = if i == c * 3 { 5.0 } else { 0.0 };
                    *t = bump + noise * (rng.random::<f64>() - 0.5);
                }
                d.push(&trace, c);
            }
        }
        d
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn learns_separable_classes() {
        let mut d = bumps(5, 40, 1.0, 7);
        d.normalize_per_sample();
        d.shuffle(1);
        let (train, test) = d.split(0.25);
        let clf = MlpClassifier::train(
            &train,
            &TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
        );
        let (acc, confusion) = clf.evaluate(&test);
        assert!(acc > 0.95, "separable data should classify: acc {acc}");
        // Confusion matrix diagonal dominates.
        let diag: u32 = (0..5).map(|i| confusion[i][i]).sum();
        let total: u32 = confusion.iter().flatten().sum();
        assert_eq!(total as usize, test.len());
        assert!(diag as f64 / total as f64 > 0.95);
    }

    #[test]
    fn probabilities_well_formed() {
        let mut d = bumps(3, 10, 0.5, 3);
        d.normalize_per_sample();
        let clf = MlpClassifier::train(
            &d,
            &TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        let (x, _) = d.sample(0);
        let p = clf.predict_proba(x);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()));
    }

    #[test]
    fn training_is_deterministic() {
        let mut d = bumps(3, 15, 0.8, 5);
        d.normalize_per_sample();
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        let a = MlpClassifier::train(&d, &cfg);
        let b = MlpClassifier::train(&d, &cfg);
        let (x, _) = d.sample(2);
        assert_eq!(a.predict_proba(x), b.predict_proba(x));
    }
}
