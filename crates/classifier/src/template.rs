//! Nearest-centroid template matching — the classical side-channel
//! trace classifier, used as a baseline against the MLP.

use crate::data::Dataset;

/// A nearest-centroid classifier: one mean trace ("template") per class,
/// prediction by maximum Pearson correlation against each template.
#[derive(Debug, Clone)]
pub struct TemplateClassifier {
    centroids: Vec<Vec<f32>>,
}

impl TemplateClassifier {
    /// Fits class centroids from a training set.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or a class has no samples.
    pub fn fit(train: &Dataset) -> Self {
        assert!(!train.is_empty(), "cannot fit on an empty dataset");
        let classes = train.class_count();
        let dim = train.dim();
        let mut sums = vec![vec![0.0f64; dim]; classes];
        let mut counts = vec![0usize; classes];
        for i in 0..train.len() {
            let (x, label) = train.sample(i);
            counts[label] += 1;
            for (s, &v) in sums[label].iter_mut().zip(x) {
                *s += f64::from(v);
            }
        }
        let centroids = sums
            .into_iter()
            .zip(&counts)
            .map(|(s, &c)| {
                assert!(c > 0, "a class has no training samples");
                s.into_iter().map(|v| (v / c as f64) as f32).collect()
            })
            .collect();
        TemplateClassifier { centroids }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.centroids.len()
    }

    /// The fitted template of a class.
    pub fn template(&self, class: usize) -> &[f32] {
        &self.centroids[class]
    }

    /// Predicts the class whose template correlates best with `x`.
    pub fn predict(&self, x: &[f32]) -> usize {
        let mut best = 0usize;
        let mut best_r = f64::NEG_INFINITY;
        for (c, t) in self.centroids.iter().enumerate() {
            let r = correlation(x, t);
            if r > best_r {
                best_r = r;
                best = c;
            }
        }
        best
    }

    /// Accuracy on a dataset.
    pub fn evaluate(&self, data: &Dataset) -> f64 {
        let mut correct = 0usize;
        for i in 0..data.len() {
            let (x, label) = data.sample(i);
            if self.predict(x) == label {
                correct += 1;
            }
        }
        correct as f64 / data.len() as f64
    }
}

/// Pearson correlation of two equal-length f32 slices (0 for flat
/// inputs).
fn correlation(a: &[f32], b: &[f32]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let mb = b.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = f64::from(x) - ma;
        let dy = f64::from(y) - mb;
        sab += dx * dy;
        saa += dx * dx;
        sbb += dy * dy;
    }
    if saa == 0.0 || sbb == 0.0 {
        0.0
    } else {
        sab / (saa * sbb).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_sines(classes: usize, per_class: usize) -> Dataset {
        let dim = 32;
        let mut d = Dataset::new(dim);
        for c in 0..classes {
            for s in 0..per_class {
                let trace: Vec<f64> = (0..dim)
                    .map(|i| ((i + c * 8) as f64 * 0.4).sin() + 0.01 * (s as f64 % 3.0))
                    .collect();
                d.push(&trace, c);
            }
        }
        d
    }

    #[test]
    fn classifies_distinct_shapes() {
        let d = shifted_sines(4, 10);
        let clf = TemplateClassifier::fit(&d);
        assert_eq!(clf.class_count(), 4);
        assert!(clf.evaluate(&d) > 0.99);
    }

    #[test]
    fn templates_have_right_shape() {
        let d = shifted_sines(3, 5);
        let clf = TemplateClassifier::fit(&d);
        assert_eq!(clf.template(0).len(), 32);
        // Templates of different classes differ.
        assert_ne!(clf.template(0), clf.template(1));
    }

    #[test]
    fn correlation_bounds() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [2.0f32, 4.0, 6.0];
        let c = [3.0f32, 2.0, 1.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-9);
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-9);
        let flat = [1.0f32, 1.0, 1.0];
        assert_eq!(correlation(&a, &flat), 0.0);
    }
}
