//! A small 1-D convolutional network — the architectural midpoint
//! between the MLP and the paper's ResNet18: convolutions capture the
//! *local* structure of ULI traces (collision peaks have fixed width in
//! observation-offset space), which dense layers must learn point by
//! point.
//!
//! Architecture: `conv(k, c1) → ReLU → maxpool(p) → conv(k, c2) → ReLU →
//! flatten → dense → softmax`, trained with Adam. (The head flattens
//! rather than global-average-pools: the class *is* the peak position in
//! these traces, and GAP would erase it.)

use crate::data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the CNN.
#[derive(Debug, Clone)]
pub struct CnnConfig {
    /// Kernel width of both conv layers.
    pub kernel: usize,
    /// Channels of the first conv layer.
    pub channels1: usize,
    /// Channels of the second conv layer.
    pub channels2: usize,
    /// Max-pool width between the conv layers.
    pub pool: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            kernel: 5,
            channels1: 8,
            channels2: 16,
            pool: 4,
            learning_rate: 2e-3,
            batch_size: 32,
            epochs: 30,
            seed: 0xC4A,
        }
    }
}

/// One 1-D conv layer (valid padding) with Adam state.
#[derive(Debug, Clone)]
struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    w: Vec<f32>, // out_ch × in_ch × k
    b: Vec<f32>,
    mw: Vec<f32>,
    vw: Vec<f32>,
    mb: Vec<f32>,
    vb: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
}

impl Conv1d {
    fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut StdRng) -> Self {
        let fan_in = (in_ch * k) as f32;
        let scale = (2.0 / fan_in).sqrt();
        let n = out_ch * in_ch * k;
        Conv1d {
            in_ch,
            out_ch,
            k,
            w: (0..n)
                .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
                .collect(),
            b: vec![0.0; out_ch],
            mw: vec![0.0; n],
            vw: vec![0.0; n],
            mb: vec![0.0; out_ch],
            vb: vec![0.0; out_ch],
            gw: vec![0.0; n],
            gb: vec![0.0; out_ch],
        }
    }

    fn out_len(&self, in_len: usize) -> usize {
        in_len + 1 - self.k
    }

    /// x: in_ch × in_len (row-major). Returns out_ch × out_len.
    fn forward(&self, x: &[f32], in_len: usize) -> Vec<f32> {
        let out_len = self.out_len(in_len);
        let mut y = vec![0.0f32; self.out_ch * out_len];
        for oc in 0..self.out_ch {
            for t in 0..out_len {
                let mut acc = self.b[oc];
                for ic in 0..self.in_ch {
                    let wbase = (oc * self.in_ch + ic) * self.k;
                    let xbase = ic * in_len + t;
                    for j in 0..self.k {
                        acc += self.w[wbase + j] * x[xbase + j];
                    }
                }
                y[oc * out_len + t] = acc;
            }
        }
        y
    }

    /// Accumulates gradients; returns dL/dx.
    fn backward(&mut self, x: &[f32], in_len: usize, dy: &[f32]) -> Vec<f32> {
        let out_len = self.out_len(in_len);
        let mut dx = vec![0.0f32; self.in_ch * in_len];
        for oc in 0..self.out_ch {
            for t in 0..out_len {
                let g = dy[oc * out_len + t];
                if g == 0.0 {
                    continue;
                }
                self.gb[oc] += g;
                for ic in 0..self.in_ch {
                    let wbase = (oc * self.in_ch + ic) * self.k;
                    let xbase = ic * in_len + t;
                    for j in 0..self.k {
                        self.gw[wbase + j] += g * x[xbase + j];
                        dx[xbase + j] += g * self.w[wbase + j];
                    }
                }
            }
        }
        dx
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn adam_step(&mut self, lr: f32, t: i32, batch: f32) {
        adam(
            &mut self.w,
            &self.gw,
            &mut self.mw,
            &mut self.vw,
            lr,
            t,
            batch,
        );
        adam(
            &mut self.b,
            &self.gb,
            &mut self.mb,
            &mut self.vb,
            lr,
            t,
            batch,
        );
    }
}

fn adam(w: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], lr: f32, t: i32, batch: f32) {
    const B1: f32 = 0.9;
    const B2: f32 = 0.999;
    const EPS: f32 = 1e-8;
    let bc1 = 1.0 - B1.powi(t);
    let bc2 = 1.0 - B2.powi(t);
    for i in 0..w.len() {
        let gi = g[i] / batch;
        m[i] = B1 * m[i] + (1.0 - B1) * gi;
        v[i] = B2 * v[i] + (1.0 - B2) * gi * gi;
        w[i] -= lr * (m[i] / bc1) / ((v[i] / bc2).sqrt() + EPS);
    }
}

/// The trained CNN classifier.
#[derive(Debug, Clone)]
pub struct CnnClassifier {
    conv1: Conv1d,
    conv2: Conv1d,
    fc_w: Vec<f32>, // classes × (channels2 · len2)
    fc_b: Vec<f32>,
    fc_mw: Vec<f32>,
    fc_vw: Vec<f32>,
    fc_mb: Vec<f32>,
    fc_vb: Vec<f32>,
    classes: usize,
    dim: usize,
    pool: usize,
    feat: usize, // channels2 · len2
}

struct ForwardCache {
    a1: Vec<f32>, // conv1 post-ReLU
    len1: usize,
    pooled: Vec<f32>, // after maxpool
    argmax: Vec<usize>,
    len_p: usize,
    a2: Vec<f32>, // conv2 post-ReLU (the flattened features)
    logits: Vec<f32>,
}

impl CnnClassifier {
    /// Trains on the dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or too short for the kernel/pool
    /// geometry.
    pub fn train(train: &Dataset, cfg: &CnnConfig) -> Self {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let dim = train.dim();
        let classes = train.class_count();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let conv1 = Conv1d::new(1, cfg.channels1, cfg.kernel, &mut rng);
        let len1 = dim + 1 - cfg.kernel;
        let len_p = len1 / cfg.pool;
        assert!(len_p >= cfg.kernel, "input too short for this geometry");
        let conv2 = Conv1d::new(cfg.channels1, cfg.channels2, cfg.kernel, &mut rng);
        let len2 = len_p + 1 - cfg.kernel;
        let feat = cfg.channels2 * len2;
        let fc_n = classes * feat;
        let scale = (2.0 / feat as f32).sqrt();
        let mut net = CnnClassifier {
            conv1,
            conv2,
            fc_w: (0..fc_n)
                .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
                .collect(),
            fc_b: vec![0.0; classes],
            fc_mw: vec![0.0; fc_n],
            fc_vw: vec![0.0; fc_n],
            fc_mb: vec![0.0; classes],
            fc_vb: vec![0.0; classes],
            classes,
            dim,
            pool: cfg.pool,
            feat,
        };

        let n = train.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut step = 0;
        let mut fc_gw = vec![0.0f32; fc_n];
        let mut fc_gb = vec![0.0f32; classes];
        for _ in 0..cfg.epochs {
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(cfg.batch_size) {
                net.conv1.zero_grad();
                net.conv2.zero_grad();
                fc_gw.iter_mut().for_each(|g| *g = 0.0);
                fc_gb.iter_mut().for_each(|g| *g = 0.0);
                for &idx in batch {
                    let (x, label) = train.sample(idx);
                    let cache = net.forward(x);
                    // Softmax CE gradient on logits.
                    let mut probs = cache.logits.clone();
                    softmax(&mut probs);
                    let mut dlogits = probs;
                    dlogits[label] -= 1.0;
                    net.backward(x, &cache, &dlogits, &mut fc_gw, &mut fc_gb);
                }
                step += 1;
                let bs = batch.len() as f32;
                net.conv1.adam_step(cfg.learning_rate, step, bs);
                net.conv2.adam_step(cfg.learning_rate, step, bs);
                adam(
                    &mut net.fc_w,
                    &fc_gw,
                    &mut net.fc_mw,
                    &mut net.fc_vw,
                    cfg.learning_rate,
                    step,
                    bs,
                );
                adam(
                    &mut net.fc_b,
                    &fc_gb,
                    &mut net.fc_mb,
                    &mut net.fc_vb,
                    cfg.learning_rate,
                    step,
                    bs,
                );
            }
        }
        net
    }

    fn forward(&self, x: &[f32]) -> ForwardCache {
        let len1 = self.conv1.out_len(self.dim);
        let mut a1 = self.conv1.forward(x, self.dim);
        a1.iter_mut().for_each(|v| *v = v.max(0.0));
        // Max pool per channel.
        let len_p = len1 / self.pool;
        let c1 = self.conv1.out_ch;
        let mut pooled = vec![0.0f32; c1 * len_p];
        let mut argmax = vec![0usize; c1 * len_p];
        for c in 0..c1 {
            for t in 0..len_p {
                let mut best = f32::NEG_INFINITY;
                let mut bi = 0;
                for j in 0..self.pool {
                    let idx = c * len1 + t * self.pool + j;
                    if a1[idx] > best {
                        best = a1[idx];
                        bi = idx;
                    }
                }
                pooled[c * len_p + t] = best;
                argmax[c * len_p + t] = bi;
            }
        }
        let mut a2 = self.conv2.forward(&pooled, len_p);
        a2.iter_mut().for_each(|v| *v = v.max(0.0));
        // Flatten → dense head.
        let mut logits = vec![0.0f32; self.classes];
        for (k, logit) in logits.iter_mut().enumerate() {
            let mut acc = self.fc_b[k];
            let row = &self.fc_w[k * self.feat..(k + 1) * self.feat];
            for (w, x) in row.iter().zip(&a2) {
                acc += w * x;
            }
            *logit = acc;
        }
        ForwardCache {
            a1,
            len1,
            pooled,
            argmax,
            len_p,
            a2,
            logits,
        }
    }

    fn backward(
        &mut self,
        x: &[f32],
        cache: &ForwardCache,
        dlogits: &[f32],
        fc_gw: &mut [f32],
        fc_gb: &mut [f32],
    ) {
        // FC grads + d(features).
        let mut da2 = vec![0.0f32; self.feat];
        for k in 0..self.classes {
            let g = dlogits[k];
            fc_gb[k] += g;
            let row = &self.fc_w[k * self.feat..(k + 1) * self.feat];
            for i in 0..self.feat {
                fc_gw[k * self.feat + i] += g * cache.a2[i];
                da2[i] += g * row[i];
            }
        }
        // Through conv2's ReLU.
        for (d, a) in da2.iter_mut().zip(&cache.a2) {
            if *a <= 0.0 {
                *d = 0.0;
            }
        }
        let mut dpooled = self.conv2.backward(&cache.pooled, cache.len_p, &da2);
        // Through maxpool (route to argmax) and conv1's ReLU.
        let c1 = self.conv1.out_ch;
        let mut da1 = vec![0.0f32; c1 * cache.len1];
        for (&src, &dp) in cache.argmax.iter().zip(&dpooled).take(c1 * cache.len_p) {
            if cache.a1[src] > 0.0 {
                da1[src] += dp;
            }
        }
        dpooled.clear();
        let _ = self.conv1.backward(x, self.dim, &da1);
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Most likely class for one trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace length differs from the training dimension.
    pub fn predict(&self, x: &[f32]) -> usize {
        assert_eq!(x.len(), self.dim, "trace length mismatch");
        let cache = self.forward(x);
        cache
            .logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty output")
    }

    /// Accuracy on a dataset.
    pub fn evaluate(&self, data: &Dataset) -> f64 {
        let mut correct = 0usize;
        for i in 0..data.len() {
            let (x, label) = data.sample(i);
            if self.predict(x) == label {
                correct += 1;
            }
        }
        correct as f64 / data.len() as f64
    }
}

fn softmax(v: &mut [f32]) {
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Peaks at class-dependent positions — the shape of Fig.-13 traces.
    fn peaks(classes: usize, per_class: usize, noise: f64, seed: u64) -> Dataset {
        let dim = 64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(dim);
        for c in 0..classes {
            for _ in 0..per_class {
                let center = 8 + c * 10;
                let trace: Vec<f64> = (0..dim)
                    .map(|i| {
                        let dist = (i as f64 - center as f64).abs();
                        (3.0 - dist).max(0.0) + noise * (rng.random::<f64>() - 0.5)
                    })
                    .collect();
                d.push(&trace, c);
            }
        }
        d
    }

    #[test]
    fn learns_peak_positions() {
        let mut d = peaks(5, 30, 0.8, 3);
        d.normalize_per_sample();
        d.shuffle(1);
        let (train, test) = d.split(0.25);
        let cfg = CnnConfig {
            epochs: 15,
            ..CnnConfig::default()
        };
        let clf = CnnClassifier::train(&train, &cfg);
        let acc = clf.evaluate(&test);
        assert!(acc > 0.9, "CNN should learn peak positions: {acc}");
    }

    #[test]
    fn conv_shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv1d::new(2, 3, 5, &mut rng);
        assert_eq!(conv.out_len(20), 16);
        let x = vec![1.0f32; 2 * 20];
        let y = conv.forward(&x, 20);
        assert_eq!(y.len(), 3 * 16);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn translation_sensitivity_beats_chance_under_shift() {
        // Convolutions generalize to slightly shifted peaks better than
        // point-wise models; verify the CNN survives a 1-position shift.
        let mut train = peaks(4, 40, 0.5, 7);
        train.normalize_per_sample();
        let cfg = CnnConfig {
            epochs: 15,
            ..CnnConfig::default()
        };
        let clf = CnnClassifier::train(&train, &cfg);
        // Shifted test set.
        let mut rng = StdRng::seed_from_u64(99);
        let mut correct = 0;
        let total = 40;
        for i in 0..total {
            let c = i % 4;
            let center = 9 + c * 10; // +1 shift
            let trace: Vec<f32> = (0..64)
                .map(|j| {
                    let dist = (j as f64 - center as f64).abs();
                    (((3.0 - dist).max(0.0)) + 0.5 * (rng.random::<f64>() - 0.5)) as f32
                })
                .collect();
            // Normalize like the dataset does.
            let mean = trace.iter().sum::<f32>() / trace.len() as f32;
            let var =
                trace.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / trace.len() as f32;
            let std = var.sqrt().max(1e-9);
            let norm: Vec<f32> = trace.iter().map(|v| (v - mean) / std).collect();
            if clf.predict(&norm) == c {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.6,
            "shift robustness: {correct}/{total}"
        );
    }

    #[test]
    #[should_panic(expected = "trace length mismatch")]
    fn predict_rejects_wrong_dim() {
        let mut d = peaks(2, 10, 0.1, 5);
        d.normalize_per_sample();
        let clf = CnnClassifier::train(
            &d,
            &CnnConfig {
                epochs: 1,
                ..CnnConfig::default()
            },
        );
        let _ = clf.predict(&[0.0; 10]);
    }
}
