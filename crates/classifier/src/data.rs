//! Labelled trace datasets: normalization, shuffling, splitting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled dataset of fixed-length traces.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Flattened features, `len = samples × dim`.
    features: Vec<f32>,
    /// One label per sample.
    labels: Vec<usize>,
    dim: usize,
}

impl Dataset {
    /// Creates an empty dataset of the given feature dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            dim,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no samples were added.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct labels (max label + 1).
    pub fn class_count(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if the trace length differs from the dataset dimension.
    pub fn push(&mut self, trace: &[f64], label: usize) {
        assert_eq!(trace.len(), self.dim, "trace length mismatch");
        self.features.extend(trace.iter().map(|&v| v as f32));
        self.labels.push(label);
    }

    /// The `i`-th sample.
    pub fn sample(&self, i: usize) -> (&[f32], usize) {
        let lo = i * self.dim;
        (&self.features[lo..lo + self.dim], self.labels[i])
    }

    /// Z-score-normalizes every trace in place (per-sample mean 0,
    /// std 1) — the standard preprocessing for contention traces, since
    /// absolute ULI levels drift with load while the *shape* carries the
    /// signal.
    pub fn normalize_per_sample(&mut self) {
        for i in 0..self.len() {
            let lo = i * self.dim;
            let row = &mut self.features[lo..lo + self.dim];
            let n = row.len() as f32;
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let std = var.sqrt().max(1e-9);
            for v in row {
                *v = (*v - mean) / std;
            }
        }
    }

    /// Deterministically shuffles samples.
    pub fn shuffle(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.len();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            self.labels.swap(i, j);
            for k in 0..self.dim {
                self.features.swap(i * self.dim + k, j * self.dim + k);
            }
        }
    }

    /// Splits off the last `test_fraction` of samples as a test set.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < test_fraction < 1` and both splits end up
    /// non-empty.
    pub fn split(mut self, test_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction out of range"
        );
        let n_test = ((self.len() as f64) * test_fraction).round() as usize;
        let n_train = self.len() - n_test;
        assert!(n_train > 0 && n_test > 0, "split produced an empty set");
        let test = Dataset {
            features: self.features.split_off(n_train * self.dim),
            labels: self.labels.split_off(n_train),
            dim: self.dim,
        };
        (self, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..10 {
            d.push(&[i as f64, 2.0 * i as f64, 30.0], i % 2);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.class_count(), 2);
        let (row, label) = d.sample(3);
        assert_eq!(row, &[3.0, 6.0, 30.0]);
        assert_eq!(label, 1);
    }

    #[test]
    fn normalization_zero_mean_unit_std() {
        let mut d = toy();
        d.normalize_per_sample();
        for i in 0..d.len() {
            let (row, _) = d.sample(i);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let mut d = toy();
        d.shuffle(42);
        // Each feature row still matches its label by construction
        // (feature[0] is even iff label 0).
        for i in 0..d.len() {
            let (row, label) = d.sample(i);
            assert_eq!((row[0] as usize) % 2, label);
            assert_eq!(row[1], row[0] * 2.0);
        }
    }

    #[test]
    fn split_sizes() {
        let d = toy();
        let (train, test) = d.split(0.3);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.dim(), test.dim());
    }

    #[test]
    #[should_panic(expected = "trace length mismatch")]
    fn dimension_mismatch_rejected() {
        let mut d = Dataset::new(3);
        d.push(&[1.0, 2.0], 0);
    }
}
