//! Minimal hand-rolled JSON encoding.
//!
//! This crate sits below the harness (which owns the full `Value`
//! parser), and the vendored serde is a no-op marker stub, so the
//! exporters carry their own encoder: deterministic, shortest-roundtrip
//! floats, the same escaping rules as the harness encoder.

use crate::event::{ArgValue, Event, EventKind};

/// Appends a JSON string literal (with quotes) to `out`.
pub(crate) fn string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite-checked float (shortest-roundtrip, `null` for
/// non-finite values, which JSON cannot represent).
pub(crate) fn float(f: f64, out: &mut String) {
    if f.is_finite() {
        out.push_str(&format!("{f}"));
    } else {
        out.push_str("null");
    }
}

/// Appends one argument value.
pub(crate) fn arg_value(v: &ArgValue, out: &mut String) {
    match v {
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::I64(n) => out.push_str(&n.to_string()),
        ArgValue::F64(f) => float(*f, out),
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ArgValue::Str(s) => string(s, out),
        ArgValue::Text(s) => string(s, out),
    }
}

/// Appends an `"args"`-style object from event arguments.
pub(crate) fn args_object(args: &[(&'static str, ArgValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        string(k, out);
        out.push(':');
        arg_value(v, out);
    }
    out.push('}');
}

/// Appends one event as a self-describing JSON object (the JSONL stream
/// format of [`StreamCollector`](crate::StreamCollector)).
pub(crate) fn event_object(event: &Event, out: &mut String) {
    out.push_str("{\"target\":");
    string(event.target.name(), out);
    out.push_str(",\"name\":");
    string(event.name, out);
    out.push_str(",\"host\":");
    if event.actor.host == crate::ActorId::GLOBAL_HOST {
        out.push_str("null");
    } else {
        out.push_str(&event.actor.host.to_string());
    }
    out.push_str(",\"lane\":");
    out.push_str(&event.actor.lane.to_string());
    out.push_str(",\"ts_ps\":");
    out.push_str(&event.ts_ps.to_string());
    match event.kind {
        EventKind::Span { dur_ps } => {
            out.push_str(",\"kind\":\"span\",\"dur_ps\":");
            out.push_str(&dur_ps.to_string());
        }
        EventKind::Instant => out.push_str(",\"kind\":\"instant\""),
        EventKind::Counter { value_bits } => {
            out.push_str(",\"kind\":\"counter\",\"value\":");
            float(f64::from_bits(value_bits), out);
        }
    }
    if !event.args.is_empty() {
        out.push_str(",\"args\":");
        args_object(&event.args, out);
    }
    out.push('}');
}
