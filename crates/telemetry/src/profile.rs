//! Engine self-profiler: scoped wall-clock timers attributing run time
//! to engine **phases** (queue pop, app execute, PDES OutEntry cooking,
//! merge-heap drain, worker idle, arena alloc/free, chaos injection,
//! telemetry flush).
//!
//! # Zero overhead when disabled
//!
//! The profiler is gated by one process-wide `AtomicBool` read with
//! `Relaxed` ordering. When disabled, [`enter`] is a single load + branch
//! returning an inert guard — no clock read, no thread-local access, no
//! allocation — so instrumented hot loops cost one predictable branch
//! (BENCH_observability.json records the nic_storm delta as within
//! run-to-run noise). When enabled, spans read raw TSC ticks (`rdtsc`
//! on x86_64) instead of `clock_gettime`, and tick→ns conversion is
//! deferred to [`snapshot`], keeping the armed cost per span to roughly
//! two counter reads.
//!
//! # Determinism
//!
//! Profile data is **wall-clock** and therefore never allowed anywhere
//! near artifacts, digests, or cache keys: it is aggregated out-of-band
//! in per-thread slots and only ever surfaces in `report.json` /
//! `report.md` timing sections, which the `bench-diff` gate explicitly
//! skips. The `--profile` flag parses into its own CLI field (never
//! `extras`), so it is excluded from cache keys by construction.
//!
//! # Threading
//!
//! Each thread accumulates into its own lock-free slot array
//! (registered once, on first use, into a global registry), so PDES
//! worker threads profile without contending with the coordinator.
//! [`snapshot`] folds all threads' slots into one [`ProfileReport`].
//! Nested spans are **inclusive**: a `QueuePop` span opened inside an
//! `Execute` span bills both phases for the overlap.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// --- timestamp source ---------------------------------------------------
//
// Spans on the hottest paths (queue pop, arena alloc) wrap operations of
// a few nanoseconds, so the clock read *is* the profiler's enabled-mode
// overhead. On x86_64 a span costs two `rdtsc` reads (~5 ns each)
// accumulating raw ticks; ticks are converted to nanoseconds once, at
// `snapshot()`, using a wall-clock anchor taken when the profiler was
// armed — the longer the run, the more accurate the ratio. Other
// architectures fall back to `Instant` against a process epoch (ticks
// are already nanoseconds and the anchor ratio self-calibrates to ~1).

#[cfg(target_arch = "x86_64")]
#[inline]
fn tick_now() -> u64 {
    // SAFETY: `rdtsc` reads the timestamp counter; no preconditions.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn tick_now() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// `(wall-clock, tick)` pair captured when the profiler was last armed
/// or reset; `snapshot` derives the ns-per-tick ratio from it.
static ANCHOR: Mutex<Option<(Instant, u64)>> = Mutex::new(None);

fn set_anchor() {
    let mut anchor = ANCHOR.lock().unwrap_or_else(|p| p.into_inner());
    *anchor = Some((Instant::now(), tick_now()));
}

/// Nanoseconds per tick, measured across the whole armed window.
fn ns_per_tick() -> f64 {
    let anchor = ANCHOR.lock().unwrap_or_else(|p| p.into_inner());
    let Some((wall0, tick0)) = *anchor else {
        return 1.0;
    };
    let ticks = tick_now().wrapping_sub(tick0);
    if ticks == 0 {
        return 1.0;
    }
    let ns = wall0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    ns as f64 / ticks as f64
}

/// An engine phase wall-clock is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Event-queue inserts (`schedule`) on either backend.
    QueueSchedule = 0,
    /// Event-queue pops (`pop_before` / `pop_with_seq_before`).
    QueuePop = 1,
    /// Application/NIC event execution (the simulation's real work).
    Execute = 2,
    /// PDES worker-side OutEntry cooking (`process_group`).
    OutCook = 3,
    /// PDES coordinator merge-heap drain (ordered replay of worker
    /// output streams).
    MergeDrain = 4,
    /// PDES worker threads blocked waiting for the next job (barrier /
    /// idle time).
    WorkerIdle = 5,
    /// Packet-arena allocations (`insert`).
    ArenaAlloc = 6,
    /// Packet-arena frees (`take` / `free`).
    ArenaFree = 7,
    /// Chaos fault-injection verdicts on the wire hop.
    Chaos = 8,
    /// Telemetry session finish / trace serialization / report writing.
    Flush = 9,
}

impl Phase {
    /// Every phase, in stable order.
    pub const ALL: [Phase; 10] = [
        Phase::QueueSchedule,
        Phase::QueuePop,
        Phase::Execute,
        Phase::OutCook,
        Phase::MergeDrain,
        Phase::WorkerIdle,
        Phase::ArenaAlloc,
        Phase::ArenaFree,
        Phase::Chaos,
        Phase::Flush,
    ];

    /// The phase's canonical snake_case name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueSchedule => "queue_schedule",
            Phase::QueuePop => "queue_pop",
            Phase::Execute => "execute",
            Phase::OutCook => "out_cook",
            Phase::MergeDrain => "merge_drain",
            Phase::WorkerIdle => "worker_idle",
            Phase::ArenaAlloc => "arena_alloc",
            Phase::ArenaFree => "arena_free",
            Phase::Chaos => "chaos",
            Phase::Flush => "flush",
        }
    }
}

const PHASES: usize = Phase::ALL.len();

/// One phase's per-thread accumulator, packed so a span update touches
/// one cache line.
#[derive(Default)]
struct PhaseSlot {
    ticks: AtomicU64,
    calls: AtomicU64,
}

/// Per-thread accumulation slots. Only the owning thread writes — and
/// because writes are single-owner, they are plain `Relaxed` load+store
/// pairs, not RMWs; `snapshot` reads from any thread and may observe a
/// span's tick/call update half-applied, which a profiler tolerates.
struct ThreadSlots {
    slots: [PhaseSlot; PHASES],
}

impl ThreadSlots {
    fn new() -> Self {
        ThreadSlots {
            slots: std::array::from_fn(|_| PhaseSlot::default()),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Vec<Arc<ThreadSlots>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadSlots>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<ThreadSlots> = {
        let slots = Arc::new(ThreadSlots::new());
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        reg.push(Arc::clone(&slots));
        slots
    };
}

/// Turns the profiler on or off process-wide. The harness flips this
/// from `--profile`; it is never derived from anything that enters a
/// cache key.
pub fn set_enabled(enabled: bool) {
    if enabled {
        set_anchor();
    }
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the profiler is currently collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every thread's accumulated phase totals (the threads
/// themselves stay registered).
pub fn reset() {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    for slots in reg.iter() {
        for slot in &slots.slots {
            slot.ticks.store(0, Ordering::Relaxed);
            slot.calls.store(0, Ordering::Relaxed);
        }
    }
    set_anchor();
}

/// An in-flight scoped phase timer. Billing happens on drop.
pub struct SpanGuard {
    // `None` when the profiler is disabled: the drop is then a no-op
    // and `enter` never touched the clock.
    armed: Option<(Phase, u64)>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((phase, start)) = self.armed.take() {
            let ticks = tick_now().wrapping_sub(start);
            LOCAL.with(|slots| {
                let slot = &slots.slots[phase as usize];
                let t = slot.ticks.load(Ordering::Relaxed);
                slot.ticks.store(t.wrapping_add(ticks), Ordering::Relaxed);
                let c = slot.calls.load(Ordering::Relaxed);
                slot.calls.store(c + 1, Ordering::Relaxed);
            });
        }
    }
}

/// Opens a scoped timer billing wall-clock to `phase` until the guard
/// drops. When the profiler is disabled this is one atomic load and a
/// branch — the returned guard is inert.
#[inline]
pub fn enter(phase: Phase) -> SpanGuard {
    if ENABLED.load(Ordering::Relaxed) {
        SpanGuard {
            armed: Some((phase, tick_now())),
        }
    } else {
        SpanGuard { armed: None }
    }
}

/// One phase's aggregated totals across all threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotal {
    /// Total wall-clock nanoseconds billed to the phase.
    pub ns: u64,
    /// Number of spans recorded.
    pub calls: u64,
}

/// Aggregated profile across every thread that ever recorded a span.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// Per-phase totals indexed by [`Phase::ALL`] order.
    pub phases: Vec<(Phase, PhaseTotal)>,
}

impl ProfileReport {
    /// Total nanoseconds across every phase (phases overlap when
    /// nested, so this can exceed elapsed wall-clock).
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|(_, t)| t.ns).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|(_, t)| t.calls == 0)
    }

    /// Renders the report as a JSON object mapping phase name to
    /// `{"ns": .., "calls": ..}` — the `report.json` "profile" section.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (phase, t)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"ns\":{},\"calls\":{}}}",
                phase.name(),
                t.ns,
                t.calls
            ));
        }
        out.push('}');
        out
    }
}

/// Folds every registered thread's slots into one report, in
/// [`Phase::ALL`] order. Phases with zero calls are included (stable
/// shape for report consumers).
pub fn snapshot() -> ProfileReport {
    let ratio = ns_per_tick();
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    let phases = Phase::ALL
        .iter()
        .map(|&phase| {
            let mut total = PhaseTotal::default();
            let mut ticks = 0u64;
            for slots in reg.iter() {
                let slot = &slots.slots[phase as usize];
                ticks = ticks.saturating_add(slot.ticks.load(Ordering::Relaxed));
                total.calls += slot.calls.load(Ordering::Relaxed);
            }
            total.ns = (ticks as f64 * ratio) as u64;
            (phase, total)
        })
        .collect();
    ProfileReport { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global state; tests that flip it must not
    // interleave. Serialize through one mutex.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_guard_records_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _span = enter(Phase::Execute);
            std::hint::black_box(1 + 1);
        }
        let report = snapshot();
        assert!(report.is_empty(), "disabled profiler must record nothing");
    }

    #[test]
    fn enabled_guard_bills_the_right_phase() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _span = enter(Phase::QueuePop);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _outer = enter(Phase::Execute);
            let _inner = enter(Phase::ArenaAlloc);
        }
        set_enabled(false);
        let report = snapshot();
        let get = |p: Phase| {
            report
                .phases
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, t)| *t)
                .expect("phase present")
        };
        assert_eq!(get(Phase::QueuePop).calls, 1);
        assert!(get(Phase::QueuePop).ns >= 1_000_000, "sleep must be billed");
        assert_eq!(get(Phase::Execute).calls, 1);
        assert_eq!(get(Phase::ArenaAlloc).calls, 1);
        assert_eq!(get(Phase::Chaos).calls, 0);
        assert!(!report.is_empty());
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn worker_threads_fold_into_one_snapshot() {
        let _g = lock();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _span = enter(Phase::WorkerIdle);
                });
            }
        });
        set_enabled(false);
        let report = snapshot();
        let idle = report
            .phases
            .iter()
            .find(|(p, _)| *p == Phase::WorkerIdle)
            .map(|(_, t)| *t)
            .expect("phase present");
        assert_eq!(idle.calls, 4);
        reset();
    }

    #[test]
    fn report_json_shape() {
        let report = ProfileReport {
            phases: vec![(Phase::Execute, PhaseTotal { ns: 5, calls: 2 })],
        };
        assert_eq!(report.to_json(), "{\"execute\":{\"ns\":5,\"calls\":2}}");
        assert_eq!(report.total_ns(), 5);
    }

    #[test]
    fn phase_names_are_stable() {
        for p in Phase::ALL {
            assert!(!p.name().is_empty());
            assert_eq!(p.name(), Phase::ALL[p as usize].name());
        }
    }
}
