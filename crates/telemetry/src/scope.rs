//! Ambient (thread-local) sessions and the leveled log facade.
//!
//! The harness runs each experiment cell inside [`Session::install`];
//! everything the cell constructs — simulations, NICs, event queues,
//! fault injectors — captures the ambient [`Tracer`] / [`Metrics`] via
//! [`tracer()`] / [`metrics()`] at construction time. No session
//! installed means both handles are disabled and instrumentation costs
//! one branch.

use std::cell::RefCell;
use std::sync::{Arc, Mutex, PoisonError};

use crate::collector::{Collector, NullCollector, RingCollector, RingState};
use crate::event::{ActorId, ArgValue, Event, Level, Target, TargetSet};
use crate::metrics::{Metrics, MetricsReport};
use crate::tracer::Tracer;

#[derive(Clone, Default)]
struct Ambient {
    tracer: Tracer,
    metrics: Metrics,
}

thread_local! {
    static CURRENT: RefCell<Ambient> = RefCell::new(Ambient::default());
}

/// The tracer installed on this thread (disabled when none is).
pub fn tracer() -> Tracer {
    CURRENT.with(|c| c.borrow().tracer.clone())
}

/// The metrics handle installed on this thread (disabled when none is).
pub fn metrics() -> Metrics {
    CURRENT.with(|c| c.borrow().metrics.clone())
}

/// Installs `tracer`/`metrics` as this thread's ambient session until
/// the returned guard drops (restoring whatever was installed before —
/// sessions nest).
#[must_use = "the session uninstalls when the guard drops"]
pub fn install(tracer: Tracer, metrics: Metrics) -> Installed {
    let next = Ambient { tracer, metrics };
    let prev = CURRENT.with(|c| c.replace(next));
    Installed { prev }
}

/// Guard returned by [`install`]; restores the previous ambient session
/// on drop. `!Send` by construction (holds thread-local state).
pub struct Installed {
    prev: Ambient,
}

impl Drop for Installed {
    fn drop(&mut self) {
        let prev = std::mem::take(&mut self.prev);
        CURRENT.with(|c| c.replace(prev));
    }
}

/// One configured tracing+metrics session: builds the handles, installs
/// them, and harvests a [`SessionReport`] at the end.
pub struct Session {
    tracer: Tracer,
    metrics: Metrics,
    ring: Option<Arc<Mutex<RingState>>>,
}

impl Session {
    /// A session buffering up to `capacity` filtered events in a ring,
    /// with metrics on or off.
    pub fn ring(filter: TargetSet, capacity: usize, with_metrics: bool) -> Session {
        let ring = RingCollector::new(capacity);
        let state = ring.state();
        Session {
            tracer: Tracer::new(filter, Box::new(ring)),
            metrics: if with_metrics {
                Metrics::new()
            } else {
                Metrics::disabled()
            },
            ring: Some(state),
        }
    }

    /// A session feeding a custom collector (e.g. a
    /// [`StreamCollector`](crate::StreamCollector)); events are not
    /// harvestable afterwards, metrics are.
    pub fn custom(filter: TargetSet, collector: Box<dyn Collector>, with_metrics: bool) -> Session {
        Session {
            tracer: Tracer::new(filter, collector),
            metrics: if with_metrics {
                Metrics::new()
            } else {
                Metrics::disabled()
            },
            ring: None,
        }
    }

    /// A metrics-only session (events discarded).
    pub fn metrics_only() -> Session {
        Session {
            tracer: Tracer::new(TargetSet::EMPTY, Box::new(NullCollector)),
            metrics: Metrics::new(),
            ring: None,
        }
    }

    /// This session's tracer handle.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// This session's metrics handle.
    pub fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }

    /// Installs the session on the current thread (see [`install`]).
    #[must_use = "the session uninstalls when the guard drops"]
    pub fn install(&self) -> Installed {
        install(self.tracer.clone(), self.metrics.clone())
    }

    /// Flushes and harvests: buffered events (ring sessions), drop and
    /// total counts, and the metrics report.
    pub fn finish(self) -> SessionReport {
        self.tracer.flush();
        let (events, dropped) = match &self.ring {
            Some(state) => {
                // Recover from poison so a panicked worker's session can
                // still be harvested after the fact.
                let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
                (state.events.drain(..).collect(), state.dropped)
            }
            None => (Vec::new(), 0),
        };
        SessionReport {
            total_events: self.tracer.events_recorded(),
            events,
            dropped_events: dropped,
            metrics: self.metrics.report(),
        }
    }
}

/// What one session observed.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Buffered events in record order (empty for non-ring sessions).
    pub events: Vec<Event>,
    /// Events evicted from the ring after it filled.
    pub dropped_events: u64,
    /// Events accepted by the filter (buffered + evicted + streamed).
    pub total_events: u64,
    /// The metrics snapshot, when the session had metrics enabled.
    pub metrics: Option<MetricsReport>,
}

/// The leveled log facade behind the [`warn!`](crate::warn) /
/// [`info!`](crate::info) macros. Warnings always reach stderr;
/// both levels additionally become `log` instant events when the
/// ambient tracer accepts [`Target::Harness`].
pub fn log(level: Level, message: String) {
    let t = tracer();
    if t.enabled(Target::Harness) {
        t.record(Event {
            target: Target::Harness,
            name: "log",
            actor: ActorId::GLOBAL,
            ts_ps: 0,
            kind: crate::event::EventKind::Instant,
            args: vec![
                ("level", ArgValue::Str(level.name())),
                ("message", ArgValue::Text(message.clone())),
            ],
        });
    }
    if level >= Level::Warn {
        eprintln!("warning: {message}");
    }
}

/// Writes a transient progress line to stderr. Unlike [`log`], progress
/// is never recorded as a trace event: it is wall-clock by nature
/// (rates, ETAs) and would break byte-identical trace determinism if it
/// entered a session.
pub fn progress(message: String) {
    eprintln!("progress: {message}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_nest_and_restore() {
        assert!(!tracer().enabled(Target::Harness));
        let outer = Session::ring(TargetSet::ALL, 64, true);
        {
            let _g1 = outer.install();
            tracer().instant(Target::Harness, "outer", ActorId::GLOBAL, 1, &[]);
            let inner = Session::ring(TargetSet::ALL, 64, false);
            {
                let _g2 = inner.install();
                tracer().instant(Target::Harness, "inner", ActorId::GLOBAL, 2, &[]);
                metrics().counter_add("x", 1);
            }
            let inner_report = inner.finish();
            assert_eq!(inner_report.events.len(), 1);
            assert_eq!(inner_report.events[0].name, "inner");
            assert!(inner_report.metrics.is_none());
            // Outer session restored after the inner guard dropped.
            tracer().instant(Target::Harness, "outer2", ActorId::GLOBAL, 3, &[]);
            metrics().counter_add("outer", 2);
        }
        assert!(!tracer().enabled(Target::Harness));
        let report = outer.finish();
        assert_eq!(
            report.events.iter().map(|e| e.name).collect::<Vec<_>>(),
            vec!["outer", "outer2"]
        );
        let m = report.metrics.expect("metrics");
        assert_eq!(m.counters, vec![("outer".to_string(), 2)]);
        assert_eq!(report.total_events, 2);
    }

    #[test]
    fn info_is_silent_without_session() {
        // Must not panic or print; just exercises the no-session path.
        crate::info!("nothing to see");
    }

    #[test]
    fn log_records_event_under_session() {
        let session = Session::ring(TargetSet::ALL, 8, false);
        {
            let _g = session.install();
            crate::info!("cell {} done", 3);
        }
        let report = session.finish();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].name, "log");
    }
}
