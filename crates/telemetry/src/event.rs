//! Event vocabulary: targets, actors, argument values, event kinds.

use std::fmt;

/// The crate (instrumentation layer) an event originates from.
///
/// Doubles as the unit of filtering: `--trace-filter sim-core,chaos`
/// keeps only those targets' events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Target {
    /// The discrete-event engine (`sim-core`): scheduler depth counters.
    SimCore = 0,
    /// The RNIC datapath model (`rnic-model`): pipeline and translation
    /// stages, QP state transitions, NAK/retransmit instants.
    RnicModel = 1,
    /// The verbs fabric (`rdma-verbs`): wire hops, WR completions.
    RdmaVerbs = 2,
    /// The fault injector (`chaos`): installed plans, injected faults.
    Chaos = 3,
    /// Measurement and attack layers (`core`): ULI samples, covert bits.
    Core = 4,
    /// Detection layers (`defense`): sweep diagnostics.
    Defense = 5,
    /// The experiment harness itself: cell lifecycle, log facade.
    Harness = 6,
    /// The parallel engine (`pdes`): lookahead-window lanes, supervisor
    /// activity.
    Pdes = 7,
}

impl Target {
    /// Every target, in stable order.
    pub const ALL: [Target; 8] = [
        Target::SimCore,
        Target::RnicModel,
        Target::RdmaVerbs,
        Target::Chaos,
        Target::Core,
        Target::Defense,
        Target::Harness,
        Target::Pdes,
    ];

    /// The target's canonical name (also the Chrome trace `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            Target::SimCore => "sim-core",
            Target::RnicModel => "rnic-model",
            Target::RdmaVerbs => "rdma-verbs",
            Target::Chaos => "chaos",
            Target::Core => "core",
            Target::Defense => "defense",
            Target::Harness => "harness",
            Target::Pdes => "pdes",
        }
    }

    /// Parses a canonical name back into a target.
    pub fn from_name(name: &str) -> Option<Target> {
        Target::ALL.into_iter().find(|t| t.name() == name)
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`Target`]s — the trace filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetSet(u8);

impl TargetSet {
    /// Every target enabled.
    pub const ALL: TargetSet = TargetSet(0xFF);
    /// No target enabled.
    pub const EMPTY: TargetSet = TargetSet(0);

    /// Adds a target to the set.
    pub fn with(self, target: Target) -> TargetSet {
        TargetSet(self.0 | target.bit())
    }

    /// Whether the set contains `target`.
    #[inline]
    pub fn contains(self, target: Target) -> bool {
        self.0 & target.bit() != 0
    }

    /// True when no target is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parses a comma-separated target list (`"sim-core,chaos"`).
    /// Rejects unknown names so typos fail loudly instead of producing
    /// an empty trace.
    pub fn parse(spec: &str) -> Result<TargetSet, String> {
        let mut set = TargetSet::EMPTY;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let target = Target::from_name(part).ok_or_else(|| {
                format!(
                    "unknown trace target '{part}' (expected one of: {})",
                    Target::ALL.map(Target::name).join(", ")
                )
            })?;
            set = set.with(target);
        }
        Ok(set)
    }
}

impl Default for TargetSet {
    fn default() -> Self {
        TargetSet::ALL
    }
}

/// A stable identity for the emitting entity: a host and a lane within
/// it (lane 0 is the device itself, lane `n` is QP number `n`). Maps to
/// the Perfetto process/thread tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId {
    /// Host index, or [`ActorId::GLOBAL_HOST`] for run-wide events.
    pub host: u32,
    /// Lane within the host: 0 = device, `n` = QP `n`.
    pub lane: u32,
}

impl ActorId {
    /// Sentinel host for events not tied to any simulated host (the
    /// scheduler, the harness, the log facade).
    pub const GLOBAL_HOST: u32 = u32::MAX;

    /// The run-wide actor.
    pub const GLOBAL: ActorId = ActorId {
        host: Self::GLOBAL_HOST,
        lane: 0,
    };

    /// The device-level actor of `host`.
    pub const fn device(host: u32) -> ActorId {
        ActorId { host, lane: 0 }
    }

    /// The actor for QP `qp` on `host`.
    pub const fn qp(host: u32, qp: u32) -> ActorId {
        ActorId { host, lane: qp }
    }
}

/// A typed event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A static string (opcode names, states, …).
    Str(&'static str),
    /// An owned string (log messages).
    Text(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Text(v)
    }
}

/// The shape of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: something started at `ts_ps` and took `dur_ps`.
    Span {
        /// Span length in picoseconds.
        dur_ps: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value (queue depth, …), rendered as a counter
    /// track in Perfetto.
    Counter {
        /// The sampled value. Stored as bits so events stay `Eq`.
        value_bits: u64,
    },
}

impl EventKind {
    /// Builds a counter kind from a float sample.
    pub fn counter(value: f64) -> EventKind {
        EventKind::Counter {
            value_bits: value.to_bits(),
        }
    }

    /// The counter sample, if this is a counter event.
    pub fn counter_value(self) -> Option<f64> {
        match self {
            EventKind::Counter { value_bits } => Some(f64::from_bits(value_bits)),
            _ => None,
        }
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Originating layer.
    pub target: Target,
    /// Event name (`"wire"`, `"qp_error"`, `"queue_depth"`, …).
    pub name: &'static str,
    /// Stable emitting entity.
    pub actor: ActorId,
    /// Sim-time timestamp in picoseconds.
    pub ts_ps: u64,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Typed key-value payload.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Log facade severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Recorded when a session is installed, dropped otherwise.
    Info,
    /// Always written to stderr; also recorded when a session is
    /// installed.
    Warn,
}

impl Level {
    /// The level's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_names_roundtrip() {
        for t in Target::ALL {
            assert_eq!(Target::from_name(t.name()), Some(t));
        }
        assert_eq!(Target::from_name("nope"), None);
    }

    #[test]
    fn target_set_parse() {
        let set = TargetSet::parse("sim-core, chaos").expect("parse");
        assert!(set.contains(Target::SimCore));
        assert!(set.contains(Target::Chaos));
        assert!(!set.contains(Target::RnicModel));
        assert!(TargetSet::parse("sim-core,bogus").is_err());
        assert!(TargetSet::parse("").expect("empty").is_empty());
        for t in Target::ALL {
            assert!(TargetSet::ALL.contains(t));
            assert!(!TargetSet::EMPTY.contains(t));
        }
    }

    #[test]
    fn counter_kind_roundtrips_value() {
        let k = EventKind::counter(12.5);
        assert_eq!(k.counter_value(), Some(12.5));
        assert_eq!(EventKind::Instant.counter_value(), None);
    }
}
