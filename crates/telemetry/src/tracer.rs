//! The cloneable [`Tracer`] handle instrumentation points hold.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::collector::Collector;
use crate::event::{ActorId, ArgValue, Event, EventKind, Target, TargetSet};

struct TracerShared {
    filter: TargetSet,
    collector: Mutex<Box<dyn Collector>>,
    recorded: AtomicU64,
}

/// A handle to one tracing session. Instrumented types capture a clone
/// at construction; a disabled handle (the default) makes every
/// operation a single branch on a `None`.
///
/// Callers building argument vectors should guard on
/// [`Tracer::enabled`] first so the disabled path allocates nothing:
///
/// ```
/// # use ragnar_telemetry::{Tracer, Target, ActorId};
/// let tracer = Tracer::disabled();
/// if tracer.enabled(Target::RdmaVerbs) {
///     tracer.span(Target::RdmaVerbs, "wire", ActorId::device(0), 0, 100,
///                 &[("bytes", 64u64.into())]);
/// }
/// ```
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<TracerShared>>,
}

impl Tracer {
    /// A handle that records nothing.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A handle feeding `collector`, keeping only `filter`'s targets.
    pub fn new(filter: TargetSet, collector: Box<dyn Collector>) -> Tracer {
        Tracer {
            shared: Some(Arc::new(TracerShared {
                filter,
                collector: Mutex::new(collector),
                recorded: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events for `target` are recorded — the hot-path guard.
    #[inline]
    pub fn enabled(&self, target: Target) -> bool {
        match &self.shared {
            Some(shared) => shared.filter.contains(target),
            None => false,
        }
    }

    /// Events accepted by the filter so far.
    pub fn events_recorded(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(0, |s| s.recorded.load(Ordering::Relaxed))
    }

    /// Records a raw event.
    pub fn record(&self, event: Event) {
        if let Some(shared) = &self.shared {
            if !shared.filter.contains(event.target) {
                return;
            }
            shared.recorded.fetch_add(1, Ordering::Relaxed);
            // Recover from poison: a panicking collector holder must not
            // turn every later record into a second panic.
            shared
                .collector
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record(event);
        }
    }

    /// Records a span: work on `actor` starting at `ts_ps` for `dur_ps`.
    pub fn span(
        &self,
        target: Target,
        name: &'static str,
        actor: ActorId,
        ts_ps: u64,
        dur_ps: u64,
        args: &[(&'static str, ArgValue)],
    ) {
        if self.enabled(target) {
            self.record(Event {
                target,
                name,
                actor,
                ts_ps,
                kind: EventKind::Span { dur_ps },
                args: args.to_vec(),
            });
        }
    }

    /// Records an instant marker.
    pub fn instant(
        &self,
        target: Target,
        name: &'static str,
        actor: ActorId,
        ts_ps: u64,
        args: &[(&'static str, ArgValue)],
    ) {
        if self.enabled(target) {
            self.record(Event {
                target,
                name,
                actor,
                ts_ps,
                kind: EventKind::Instant,
                args: args.to_vec(),
            });
        }
    }

    /// Records a sampled counter value (a Perfetto counter track).
    pub fn counter(
        &self,
        target: Target,
        name: &'static str,
        actor: ActorId,
        ts_ps: u64,
        value: f64,
    ) {
        if self.enabled(target) {
            self.record(Event {
                target,
                name,
                actor,
                ts_ps,
                kind: EventKind::counter(value),
                args: Vec::new(),
            });
        }
    }

    /// Flushes the underlying collector.
    pub fn flush(&self) {
        if let Some(shared) = &self.shared {
            shared
                .collector
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .flush();
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.shared {
            Some(shared) => f
                .debug_struct("Tracer")
                .field("filter", &shared.filter)
                .field("recorded", &shared.recorded.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::RingCollector;

    #[test]
    fn filter_drops_unselected_targets() {
        let ring = RingCollector::new(16);
        let tracer = Tracer::new(TargetSet::EMPTY.with(Target::Chaos), Box::new(ring.clone()));
        assert!(tracer.enabled(Target::Chaos));
        assert!(!tracer.enabled(Target::SimCore));
        tracer.instant(Target::Chaos, "fault", ActorId::GLOBAL, 1, &[]);
        tracer.instant(Target::SimCore, "depth", ActorId::GLOBAL, 2, &[]);
        assert_eq!(tracer.events_recorded(), 1);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        tracer.span(Target::Harness, "x", ActorId::GLOBAL, 0, 1, &[]);
        assert_eq!(tracer.events_recorded(), 0);
        assert!(!tracer.enabled(Target::Harness));
    }
}
