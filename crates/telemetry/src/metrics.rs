//! The metrics registry: named counters, gauges and latency histograms
//! behind a cloneable, disabled-by-default handle.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::histogram::{Histogram, HistogramSummary};
use crate::json;

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A cloneable handle to a metrics registry. A disabled handle (the
/// default) is a `None` inside: every operation is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    shared: Option<Arc<Mutex<Registry>>>,
}

impl Metrics {
    /// A handle that records nothing.
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// A fresh, enabled registry.
    pub fn new() -> Metrics {
        Metrics {
            shared: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Locks the registry, recovering from poison: counters and maps
    /// stay structurally valid even if a holder panicked mid-update, and
    /// telemetry must never turn one panic into a double panic.
    fn lock(shared: &Arc<Mutex<Registry>>) -> MutexGuard<'_, Registry> {
        shared.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(shared) = &self.shared {
            let mut reg = Metrics::lock(shared);
            match reg.counters.get_mut(name) {
                Some(slot) => *slot += delta,
                None => {
                    reg.counters.insert(name.to_string(), delta);
                }
            }
        }
    }

    /// Sets the named gauge to its latest observed value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(shared) = &self.shared {
            Metrics::lock(shared).gauges.insert(name.to_string(), value);
        }
    }

    /// Records a nanosecond latency sample into the named log-linear
    /// histogram (stored at picosecond resolution).
    pub fn record_ns(&self, name: &str, value_ns: f64) {
        if let Some(shared) = &self.shared {
            let ps = (value_ns * 1e3).max(0.0).round() as u64;
            let mut reg = Metrics::lock(shared);
            reg.histograms
                .entry(name.to_string())
                .or_default()
                .record(ps);
        }
    }

    /// Snapshots the registry into a report (`None` when disabled).
    pub fn report(&self) -> Option<MetricsReport> {
        let shared = self.shared.as_ref()?;
        let reg = Metrics::lock(shared);
        Some(MetricsReport {
            counters: reg.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: reg.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            hist_buckets: reg
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramBuckets::of(h)))
                .collect(),
        })
    }
}

/// The lossless wire form of one histogram: sparse `(index, count)`
/// bucket pairs plus the exact aggregates, enough to rebuild the
/// histogram bit-for-bit on the other side of a sidecar file (see
/// [`Histogram::from_parts`]). This is what makes cross-cell merging
/// exact instead of re-bucketing summary quantiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramBuckets {
    /// Non-empty buckets as `(bucket index, sample count)`.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of recorded picosecond values.
    pub sum_ps: u128,
    /// Exact minimum (picoseconds; 0 when empty).
    pub min_ps: u64,
    /// Exact maximum (picoseconds).
    pub max_ps: u64,
}

impl HistogramBuckets {
    /// Captures the wire form of a live histogram.
    pub fn of(h: &Histogram) -> HistogramBuckets {
        HistogramBuckets {
            buckets: h.sparse_buckets(),
            count: h.count(),
            sum_ps: h.sum(),
            min_ps: h.min(),
            max_ps: h.max(),
        }
    }

    /// Rebuilds the histogram this wire form was captured from.
    pub fn rebuild(&self) -> Histogram {
        Histogram::from_parts(
            &self.buckets,
            self.count,
            self.sum_ps,
            self.min_ps,
            self.max_ps,
        )
    }
}

/// A point-in-time snapshot of a metrics registry, ready for JSON
/// export. Keys are sorted (BTreeMap order), so the encoding is
/// deterministic and content-hashable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-value gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name. Values are picoseconds.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Lossless histogram bucket data, sorted by name (same order as
    /// `histograms`), for exact cross-cell merging.
    pub hist_buckets: Vec<(String, HistogramBuckets)>,
}

impl MetricsReport {
    /// Total events/samples recorded across all histograms.
    pub fn histogram_samples(&self) -> u64 {
        self.histograms.iter().map(|(_, h)| h.count).sum()
    }

    /// Encodes the report as compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_tagged(false)
    }

    /// Encodes the report as compact JSON, optionally tagging it
    /// `"incomplete": true` — the salvage-path marker for metrics
    /// harvested from timed-out or quarantined cells, whose counts only
    /// cover the portion of the cell that actually ran.
    pub fn to_json_tagged(&self, incomplete: bool) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        if incomplete {
            out.push_str("\"incomplete\":true,");
        }
        out.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::string(k, &mut out);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::string(k, &mut out);
            out.push(':');
            json::float(*v, &mut out);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::string(k, &mut out);
            out.push_str(&format!(
                ":{{\"count\":{},\"min_ps\":{},\"max_ps\":{},\"mean_ps\":",
                h.count, h.min, h.max
            ));
            json::float(h.mean, &mut out);
            out.push_str(&format!(
                ",\"p50_ps\":{},\"p90_ps\":{},\"p99_ps\":{}",
                h.p50, h.p90, h.p99
            ));
            // Lossless bucket data rides along (same-name entry; reports
            // assembled by hand may omit it).
            if let Some((_, b)) = self.hist_buckets.iter().find(|(name, _)| name == k) {
                out.push_str(&format!(",\"sum_ps\":{},\"buckets\":[", b.sum_ps));
                for (j, (idx, n)) in b.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{idx},{n}]"));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        m.counter_add("x", 1);
        m.gauge_set("g", 2.0);
        m.record_ns("h", 3.0);
        assert!(!m.enabled());
        assert!(m.report().is_none());
    }

    #[test]
    fn report_is_sorted_and_complete() {
        let m = Metrics::new();
        m.counter_add("z.count", 2);
        m.counter_add("a.count", 1);
        m.counter_add("z.count", 3);
        m.gauge_set("depth", 4.0);
        for i in 0..100 {
            m.record_ns("lat", 100.0 + i as f64);
        }
        let r = m.report().expect("enabled");
        assert_eq!(
            r.counters,
            vec![("a.count".to_string(), 1), ("z.count".to_string(), 5)]
        );
        assert_eq!(r.gauges, vec![("depth".to_string(), 4.0)]);
        assert_eq!(r.histograms.len(), 1);
        let (name, h) = &r.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(h.count, 100);
        assert_eq!(h.max, 199_000); // 199 ns in ps
        assert_eq!(r.histogram_samples(), 100);
        // Clones share the registry.
        let clone = m.clone();
        clone.counter_add("a.count", 1);
        assert_eq!(m.report().expect("enabled").counters[0].1, 2);
    }

    #[test]
    fn json_shape() {
        let m = Metrics::new();
        m.counter_add("c", 7);
        m.record_ns("h", 1.5);
        let text = m.report().expect("report").to_json();
        assert!(text.starts_with("{\"counters\":{\"c\":7}"));
        assert!(text.contains("\"h\":{\"count\":1,\"min_ps\":1500,\"max_ps\":1500"));
        // Lossless buckets ride along for cross-cell merging.
        assert!(text.contains("\"sum_ps\":1500,\"buckets\":[["), "{text}");
        assert!(!text.contains("\"incomplete\""));
    }

    #[test]
    fn incomplete_tag_marks_salvaged_sidecars() {
        let m = Metrics::new();
        m.counter_add("c", 1);
        let r = m.report().expect("report");
        let tagged = r.to_json_tagged(true);
        assert!(
            tagged.starts_with("{\"incomplete\":true,\"counters\":"),
            "{tagged}"
        );
        assert_eq!(r.to_json_tagged(false), r.to_json());
    }

    #[test]
    fn bucket_wire_form_roundtrips() {
        let m = Metrics::new();
        for i in 0..1000u64 {
            m.record_ns("lat", 50.0 + (i * i % 9973) as f64);
        }
        let r = m.report().expect("report");
        let (_, wire) = &r.hist_buckets[0];
        let rebuilt = wire.rebuild();
        let (_, summary) = &r.histograms[0];
        assert_eq!(rebuilt.summary(), *summary);
    }
}
