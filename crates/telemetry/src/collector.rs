//! Event sinks: the [`Collector`] trait and its three implementations.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::event::Event;
use crate::json;

/// An event sink. Implementations must be cheap per call — the tracer
/// serializes access, so `record` runs under a mutex.
pub trait Collector: Send {
    /// Accepts one event.
    fn record(&mut self, event: Event);
    /// Flushes buffered output (streaming sinks).
    fn flush(&mut self) {}
}

/// Discards everything — the explicit no-op sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn record(&mut self, _event: Event) {}
}

/// Shared state behind a [`RingCollector`], so the owning
/// [`Session`](crate::Session) can drain events after the run.
#[derive(Debug, Default)]
pub(crate) struct RingState {
    pub(crate) events: VecDeque<Event>,
    pub(crate) dropped: u64,
}

/// A bounded in-memory ring: keeps the most recent `capacity` events and
/// counts the overflow, so a pathological cell bounds its own memory
/// instead of the whole sweep's.
#[derive(Debug, Clone)]
pub struct RingCollector {
    state: Arc<Mutex<RingState>>,
    capacity: usize,
}

impl RingCollector {
    /// Creates a ring keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingCollector {
        RingCollector {
            state: Arc::new(Mutex::new(RingState::default())),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn state(&self) -> Arc<Mutex<RingState>> {
        Arc::clone(&self.state)
    }

    /// Locks the ring, recovering from poison: a panicking harness
    /// worker must report its own panic, not die again on an opaque
    /// `PoisonError` while draining telemetry. The ring's invariants
    /// hold under poison — every mutation leaves it consistent.
    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Removes and returns every buffered event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.lock().events.drain(..).collect()
    }
}

impl Collector for RingCollector {
    fn record(&mut self, event: Event) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.events.len() >= self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(event);
    }
}

/// Streams each event as one line of JSON (JSONL) to a writer — for
/// traces too large to buffer, or live tailing.
pub struct StreamCollector<W: Write + Send> {
    out: W,
    written: u64,
    errored: bool,
}

impl<W: Write + Send> StreamCollector<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> StreamCollector<W> {
        StreamCollector {
            out,
            written: 0,
            errored: false,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send> Collector for StreamCollector<W> {
    fn record(&mut self, event: Event) {
        if self.errored {
            return;
        }
        let mut line = String::with_capacity(128);
        json::event_object(&event, &mut line);
        line.push('\n');
        // A sink error disables the stream rather than failing the run:
        // telemetry must never change experiment outcomes.
        if self.out.write_all(line.as_bytes()).is_err() {
            self.errored = true;
        } else {
            self.written += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ActorId, EventKind, Target};

    fn ev(i: u64) -> Event {
        Event {
            target: Target::Harness,
            name: "t",
            actor: ActorId::GLOBAL,
            ts_ps: i,
            kind: EventKind::Instant,
            args: vec![],
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut ring = RingCollector::new(3);
        for i in 0..5 {
            ring.record(ev(i));
        }
        assert_eq!(ring.dropped(), 2);
        let events = ring.drain();
        assert_eq!(
            events.iter().map(|e| e.ts_ps).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(ring.is_empty());
    }

    #[test]
    fn poisoned_ring_still_records_and_drains() {
        let ring = RingCollector::new(8);
        ring.clone().record(ev(1));
        // Poison the mutex: a harness worker panics while holding the
        // ring lock (simulated by panicking under the guard).
        let poisoner = ring.clone();
        let result = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().expect("not yet poisoned");
            panic!("worker dies holding the ring");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread must have panicked");
        assert!(ring.state.lock().is_err(), "mutex is poisoned");
        // The ring must keep working: record, len, dropped, drain.
        ring.clone().record(ev(2));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        let events = ring.drain();
        assert_eq!(
            events.iter().map(|e| e.ts_ps).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(ring.is_empty());
    }

    #[test]
    fn stream_writes_one_line_per_event() {
        let mut sink = StreamCollector::new(Vec::new());
        sink.record(ev(7));
        sink.record(ev(8));
        assert_eq!(sink.written(), 2);
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"ts_ps\":7"));
    }
}
