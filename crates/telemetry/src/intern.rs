//! Decimal-string interning for the exporters' hot loops.
//!
//! A trace export renders the same handful of pid/tid integers once per
//! event — millions of `to_string` calls that each allocate, all
//! producing one of a few dozen distinct strings. The interner formats
//! each value the first time it appears and hands out borrowed slices
//! after that. Rendering is unchanged byte for byte; only the
//! allocation count drops.

use std::collections::HashMap;

/// Memoized decimal renderings of `u64` values.
#[derive(Debug, Default)]
pub struct DecimalInterner {
    cache: HashMap<u64, Box<str>>,
}

impl DecimalInterner {
    pub fn new() -> DecimalInterner {
        DecimalInterner::default()
    }

    /// The decimal form of `n`, formatted at most once per interner.
    pub fn get(&mut self, n: u64) -> &str {
        self.cache
            .entry(n)
            .or_insert_with(|| n.to_string().into_boxed_str())
    }
}

/// Memoized `"{prefix}{name}"` keys for metric flush loops.
///
/// A per-NIC counter flush renders the same few dozen static counter
/// names once per host — `format!("nic.{name}")` on every flush
/// allocates a fresh `String` each time. The interner formats each
/// distinct name once per process lifetime and hands out borrowed
/// slices after that; the rendered key is unchanged byte for byte.
#[derive(Debug)]
pub struct PrefixedInterner {
    prefix: &'static str,
    cache: HashMap<&'static str, Box<str>>,
}

impl PrefixedInterner {
    /// An interner producing `"{prefix}{name}"` keys.
    pub fn new(prefix: &'static str) -> PrefixedInterner {
        PrefixedInterner {
            prefix,
            cache: HashMap::new(),
        }
    }

    /// The `"{prefix}{name}"` form of `name`, formatted at most once
    /// per interner.
    pub fn get(&mut self, name: &'static str) -> &str {
        self.cache
            .entry(name)
            .or_insert_with(|| format!("{}{}", self.prefix, name).into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixed_keys_match_format_and_cache() {
        let mut interner = PrefixedInterner::new("nic.");
        assert_eq!(interner.get("tx_bytes"), "nic.tx_bytes");
        assert_eq!(interner.get("rx_bytes"), "nic.rx_bytes");
        // Repeat lookups reuse the first allocation.
        let first = interner.get("tx_bytes").as_ptr();
        assert_eq!(first, interner.get("tx_bytes").as_ptr());
    }

    #[test]
    fn matches_to_string_and_caches() {
        let mut interner = DecimalInterner::new();
        for n in [0u64, 1, 42, u64::MAX, 42, 0] {
            assert_eq!(interner.get(n), n.to_string());
        }
        // Repeat lookups hand back the same allocation, not a new one.
        let first = interner.get(42).as_ptr();
        assert_eq!(first, interner.get(42).as_ptr());
    }
}
