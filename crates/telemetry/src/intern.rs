//! Decimal-string interning for the exporters' hot loops.
//!
//! A trace export renders the same handful of pid/tid integers once per
//! event — millions of `to_string` calls that each allocate, all
//! producing one of a few dozen distinct strings. The interner formats
//! each value the first time it appears and hands out borrowed slices
//! after that. Rendering is unchanged byte for byte; only the
//! allocation count drops.

use std::collections::HashMap;

/// Memoized decimal renderings of `u64` values.
#[derive(Debug, Default)]
pub struct DecimalInterner {
    cache: HashMap<u64, Box<str>>,
}

impl DecimalInterner {
    pub fn new() -> DecimalInterner {
        DecimalInterner::default()
    }

    /// The decimal form of `n`, formatted at most once per interner.
    pub fn get(&mut self, n: u64) -> &str {
        self.cache
            .entry(n)
            .or_insert_with(|| n.to_string().into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_to_string_and_caches() {
        let mut interner = DecimalInterner::new();
        for n in [0u64, 1, 42, u64::MAX, 42, 0] {
            assert_eq!(interner.get(n), n.to_string());
        }
        // Repeat lookups hand back the same allocation, not a new one.
        let first = interner.get(42).as_ptr();
        assert_eq!(first, interner.get(42).as_ptr());
    }
}
