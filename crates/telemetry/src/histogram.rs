//! Log-linear HDR-style histograms.
//!
//! Values (non-negative integers; the metrics registry feeds it
//! picoseconds) land in buckets laid out like HdrHistogram's: exact
//! buckets below [`Histogram::SUB_BUCKETS`], then `SUB_BUCKETS` linear
//! sub-buckets per power-of-two magnitude. Relative quantile error is
//! bounded by `1 / SUB_BUCKETS` (~3.1%); min, max, count and sum are
//! tracked exactly.

/// A log-linear histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Linear sub-buckets per power-of-two magnitude; also the exact
    /// range floor. Controls the `1/SUB_BUCKETS` relative error bound.
    pub const SUB_BUCKETS: u64 = 32;
    const SUB_BITS: u32 = 5;
    /// Index space: magnitudes 5..=63 each contribute `SUB_BUCKETS`
    /// buckets on top of the exact low range.
    const BUCKETS: usize = (64 - Self::SUB_BITS as usize) * Self::SUB_BUCKETS as usize;

    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < Self::SUB_BUCKETS {
            value as usize
        } else {
            let mag = 63 - value.leading_zeros();
            let sub = (value >> (mag - Self::SUB_BITS)) - Self::SUB_BUCKETS;
            ((mag - Self::SUB_BITS + 1) as u64 * Self::SUB_BUCKETS + sub) as usize
        }
    }

    /// The lower edge of bucket `idx` — the value `index` maps back to.
    fn bucket_low(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < Self::SUB_BUCKETS {
            idx
        } else {
            let group = idx / Self::SUB_BUCKETS;
            let sub = idx % Self::SUB_BUCKETS;
            (Self::SUB_BUCKETS + sub) << (group - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Recorded sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, within the bucket error
    /// bound; exact at the extremes (clamped to the observed min/max).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_low(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Non-empty buckets as `(index, count)` pairs — the lossless wire
    /// form used by metrics sidecars so cross-cell merging can happen at
    /// bucket level instead of re-bucketing summary quantiles.
    pub fn sparse_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(idx, &n)| (idx as u32, n))
            .collect()
    }

    /// Rebuilds a histogram from its lossless wire form (see
    /// [`Histogram::sparse_buckets`]). Out-of-range bucket indices are
    /// ignored rather than panicking — a malformed sidecar should not
    /// take a report run down.
    pub fn from_parts(buckets: &[(u32, u64)], count: u64, sum: u128, min: u64, max: u64) -> Self {
        let mut h = Histogram::new();
        for &(idx, n) in buckets {
            if let Some(slot) = h.buckets.get_mut(idx as usize) {
                *slot += n;
            }
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }

    /// Merges another histogram into this one at **bucket level**: the
    /// merged quantiles are exactly what a single pass over the union of
    /// samples would have produced (bucket counts add; min/max/count/sum
    /// merge exactly).
    pub fn merge(&mut self, other: &Histogram) {
        for (slot, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Summary quantiles for the metrics report.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A point summary of one histogram: count, exact extremes and mean,
/// bounded-error p50/p90/p99.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// Median (bounded relative error).
    pub p50: u64,
    /// 90th percentile (bounded relative error).
    pub p90: u64,
    /// 99th percentile (bounded relative error).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_low_edge_inverts() {
        let mut prev = 0usize;
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 2, u64::MAX]) {
            let idx = Histogram::index(v);
            assert!(idx >= prev || v < 4096, "index not monotone at {v}");
            prev = idx.max(prev);
            let low = Histogram::bucket_low(idx);
            assert!(low <= v, "low edge {low} above value {v}");
            // The bucket's low edge maps back to the same bucket.
            assert_eq!(Histogram::index(low), idx);
        }
    }

    #[test]
    fn exact_below_sub_buckets() {
        let mut h = Histogram::new();
        for v in 0..Histogram::SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), Histogram::SUB_BUCKETS - 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), Histogram::SUB_BUCKETS - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Uniform ramp over a wide dynamic range: every quantile estimate
        // must land within 1/SUB_BUCKETS relative error of the true value.
        let mut h = Histogram::new();
        let n = 100_000u64;
        for i in 0..n {
            h.record(1_000 + i * 37); // ~1e3 .. ~3.7e6
        }
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let rank = ((q * n as f64).ceil() as u64).max(1);
            let truth = 1_000 + (rank - 1) * 37;
            let est = h.quantile(q);
            let rel = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(
                rel <= 1.0 / Histogram::SUB_BUCKETS as f64 + 1e-9,
                "q={q}: est {est} vs true {truth} (rel err {rel:.4})"
            );
        }
        assert_eq!(h.quantile(1.0), 1_000 + (n - 1) * 37);
        assert_eq!(h.count(), n);
    }

    #[test]
    fn bucket_merge_matches_single_pass_reference() {
        // The satellite-2 accuracy contract: merging per-cell histograms
        // at bucket level must reproduce the single-pass reference
        // *exactly* — same buckets, same quantiles — unlike the old
        // approach of re-bucketing per-cell summary quantiles, which
        // compounds the bucket error at p99.
        let mut reference = Histogram::new();
        let mut shards: Vec<Histogram> = (0..7).map(|_| Histogram::new()).collect();
        let mut x = 0x2545F4914F6CDD1Du64;
        for i in 0..50_000u64 {
            // xorshift* — deterministic, wide dynamic range.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let v = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 20) % 10_000_000;
            reference.record(v);
            shards[(i % 7) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for s in &shards {
            // Round-trip through the sidecar wire form on the way in.
            let rebuilt =
                Histogram::from_parts(&s.sparse_buckets(), s.count(), s.sum(), s.min(), s.max());
            merged.merge(&rebuilt);
        }
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.sum(), reference.sum());
        assert_eq!(merged.min(), reference.min());
        assert_eq!(merged.max(), reference.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), reference.quantile(q), "q={q}");
        }
        assert_eq!(merged.sparse_buckets(), reference.sparse_buckets());
    }

    #[test]
    fn merge_handles_empty_sides() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(42);
        a.merge(&b);
        assert_eq!((a.count(), a.min(), a.max()), (1, 42, 42));
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!((a.count(), a.min(), a.max()), (1, 42, 42));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.p50, s.p99), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }
}
