//! Chrome `trace_event` JSON export, loadable in `ui.perfetto.dev` or
//! `chrome://tracing`.
//!
//! Track layout: one *process* per (harness cell, simulated host) pair
//! — pid `cell_index * 256 + host + 1`, with the run-global/harness
//! track at `cell_index * 256` — and one *thread* per actor lane (tid 0
//! is the device, tid `n` is QP `n`). Timestamps are sim-time
//! microseconds (`ts_ps / 1e6`), durations likewise; `displayTimeUnit`
//! is ns so Perfetto renders at the scale the simulation lives at.
//!
//! The output is deterministic: metadata tracks are emitted in sorted
//! (pid, tid) order and events in record order, so a byte-level digest
//! of the JSON doubles as a trace digest.

use std::collections::BTreeSet;

use crate::event::{ActorId, Event, EventKind};
use crate::intern::DecimalInterner;
use crate::json;

/// One harness cell's slice of the trace.
#[derive(Debug, Clone)]
pub struct TraceCell<'a> {
    /// Human label for the cell (the config label).
    pub label: String,
    /// The cell's index in config order; spaces the pid ranges.
    pub index: usize,
    /// The cell's events, in record order.
    pub events: &'a [Event],
}

/// Hosts per cell in the pid space (lane tracks live under each).
const PID_STRIDE: usize = 256;

fn pid_of(cell_index: usize, actor: ActorId) -> u64 {
    let host_slot = if actor.host == ActorId::GLOBAL_HOST {
        0
    } else {
        (actor.host as usize % (PID_STRIDE - 1)) + 1
    };
    (cell_index * PID_STRIDE + host_slot) as u64
}

fn push_ts(ts_ps: u64, out: &mut String) {
    // Picoseconds → trace_event microseconds, shortest-roundtrip.
    json::float(ts_ps as f64 / 1e6, out);
}

/// Renders cells (in order) as one Chrome `trace_event` JSON document.
pub fn chrome_trace_json(cells: &[TraceCell<'_>]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |entry: &str, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(entry);
    };

    // Metadata: name every process/thread track that appears, sorted.
    let mut tracks: BTreeSet<(u64, u64, usize, ActorId)> = BTreeSet::new();
    for cell in cells {
        for event in cell.events {
            tracks.insert((
                pid_of(cell.index, event.actor),
                u64::from(event.actor.lane),
                cell.index,
                event.actor,
            ));
        }
    }
    // A trace has a handful of distinct pids/tids but emits each once
    // per event; render every integer once and reuse the bytes.
    let mut ids = DecimalInterner::new();
    let mut named_pids: BTreeSet<u64> = BTreeSet::new();
    for &(pid, tid, cell_index, actor) in &tracks {
        let label = &cells
            .iter()
            .find(|c| c.index == cell_index)
            .expect("track from a known cell")
            .label;
        if named_pids.insert(pid) {
            let mut entry = String::new();
            entry.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
            entry.push_str(ids.get(pid));
            entry.push_str(",\"args\":{\"name\":");
            let pname = if actor.host == ActorId::GLOBAL_HOST {
                format!("cell{cell_index} [{label}] run")
            } else {
                format!("cell{cell_index} [{label}] host{}", actor.host)
            };
            json::string(&pname, &mut entry);
            entry.push_str("}}");
            emit(&entry, &mut out);
        }
        let mut entry = String::new();
        entry.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":");
        entry.push_str(ids.get(pid));
        entry.push_str(",\"tid\":");
        entry.push_str(ids.get(tid));
        entry.push_str(",\"args\":{\"name\":");
        let tname = if actor.host == ActorId::GLOBAL_HOST {
            // Run-track lanes: 0 is the run itself, lane n+1 is port /
            // PDES-group lane n (PFC pause spans, worker-window lanes).
            if actor.lane == 0 {
                "run".to_string()
            } else {
                format!("lane{}", actor.lane - 1)
            }
        } else if actor.lane == 0 {
            "device".to_string()
        } else {
            format!("qp{}", actor.lane)
        };
        json::string(&tname, &mut entry);
        entry.push_str("}}");
        emit(&entry, &mut out);
    }

    // The events themselves, cell by cell in record order.
    for cell in cells {
        for event in cell.events {
            let mut entry = String::with_capacity(128);
            entry.push_str("{\"name\":");
            json::string(event.name, &mut entry);
            entry.push_str(",\"cat\":");
            json::string(event.target.name(), &mut entry);
            match event.kind {
                EventKind::Span { dur_ps } => {
                    entry.push_str(",\"ph\":\"X\",\"dur\":");
                    push_ts(dur_ps, &mut entry);
                }
                EventKind::Instant => {
                    entry.push_str(",\"ph\":\"i\",\"s\":\"t\"");
                }
                EventKind::Counter { .. } => {
                    entry.push_str(",\"ph\":\"C\"");
                }
            }
            entry.push_str(",\"ts\":");
            push_ts(event.ts_ps, &mut entry);
            entry.push_str(",\"pid\":");
            entry.push_str(ids.get(pid_of(cell.index, event.actor)));
            entry.push_str(",\"tid\":");
            entry.push_str(ids.get(u64::from(event.actor.lane)));
            if let Some(value) = event.kind.counter_value() {
                entry.push_str(",\"args\":{\"value\":");
                json::float(value, &mut entry);
                entry.push('}');
            } else if !event.args.is_empty() {
                entry.push_str(",\"args\":");
                json::args_object(&event.args, &mut entry);
            }
            entry.push('}');
            emit(&entry, &mut out);
        }
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArgValue, Target};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                target: Target::RdmaVerbs,
                name: "wire",
                actor: ActorId::qp(0, 1),
                ts_ps: 2_000_000,
                kind: EventKind::Span { dur_ps: 500_000 },
                args: vec![("bytes", ArgValue::U64(64))],
            },
            Event {
                target: Target::Chaos,
                name: "fault",
                actor: ActorId::device(1),
                ts_ps: 3_000_000,
                kind: EventKind::Instant,
                args: vec![("drop", ArgValue::Bool(true))],
            },
            Event {
                target: Target::SimCore,
                name: "queue_depth",
                actor: ActorId::GLOBAL,
                ts_ps: 4_000_000,
                kind: EventKind::counter(17.0),
                args: vec![],
            },
        ]
    }

    #[test]
    fn export_contains_tracks_and_all_phases() {
        let events = sample_events();
        let cells = [TraceCell {
            label: "device=cx4".to_string(),
            index: 0,
            events: &events,
        }];
        let text = chrome_trace_json(&cells);
        assert!(text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        for needle in [
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"process_name\"",
            "\"thread_name\"",
            "\"cat\":\"rdma-verbs\"",
            "\"cat\":\"chaos\"",
            "\"cat\":\"sim-core\"",
            // 2_000_000 ps = 2 µs.
            "\"ts\":2,",
            "\"dur\":0.5,",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        // Deterministic: same input, same bytes.
        assert_eq!(text, chrome_trace_json(&cells));
    }

    #[test]
    fn pid_space_separates_cells_hosts_and_run_track() {
        assert_eq!(pid_of(0, ActorId::GLOBAL), 0);
        assert_eq!(pid_of(0, ActorId::device(0)), 1);
        assert_eq!(pid_of(0, ActorId::device(1)), 2);
        assert_eq!(pid_of(1, ActorId::GLOBAL), 256);
        assert_eq!(pid_of(1, ActorId::qp(0, 5)), 257);
    }
}
