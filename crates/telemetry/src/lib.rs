//! Structured tracing and metrics for the Ragnar reproduction, keyed to
//! **simulated time**.
//!
//! Every layer of the stack — the event core, the RNIC datapath model,
//! the verbs fabric, the chaos injector, the measurement harness — emits
//! typed span/instant/counter events tagged with a [`Target`] (the
//! emitting crate), a stable [`ActorId`] (host + lane), and a
//! picosecond sim-time timestamp. Events flow into a [`Collector`]
//! ([`NullCollector`], [`RingCollector`], [`StreamCollector`]); scalar
//! observables flow into a [`Metrics`] registry of counters, gauges and
//! log-linear HDR-style latency [`Histogram`]s.
//!
//! # Zero overhead when disabled
//!
//! Instrumentation points hold a cloned [`Tracer`] / [`Metrics`] handle
//! captured at construction. A disabled handle is `None` inside; the
//! guard is a single branch, no allocation, no locking. All pinned
//! golden digests are bit-identical with telemetry on or off because
//! the subsystem only *observes* — it never draws randomness or
//! schedules events.
//!
//! # Determinism
//!
//! Events carry only sim-time and stable actor ids — no wall clock, no
//! thread ids — and each harness cell records into its own session, so
//! a merged trace (cells concatenated in config order) is byte-identical
//! at any `--threads` count for a fixed seed.
//!
//! # Ambient sessions
//!
//! The harness installs a per-cell [`Session`] into a thread-local; code
//! constructed inside the cell picks it up via [`tracer()`] /
//! [`metrics()`]. Outside the harness, [`Session::install`] does the
//! same for examples and tests:
//!
//! ```
//! use ragnar_telemetry::{Session, Target, TargetSet, ActorId};
//!
//! let session = Session::ring(TargetSet::ALL, 1024, true);
//! {
//!     let _guard = session.install();
//!     let t = ragnar_telemetry::tracer();
//!     t.instant(Target::Harness, "hello", ActorId::GLOBAL, 42_000, &[]);
//! }
//! let report = session.finish();
//! assert_eq!(report.events.len(), 1);
//! ```

#![warn(missing_docs)]

mod collector;
mod event;
mod histogram;
mod intern;
mod json;
mod metrics;
mod perfetto;
pub mod profile;
mod scope;
mod tracer;

pub use collector::{Collector, NullCollector, RingCollector, StreamCollector};
pub use event::{ActorId, ArgValue, Event, EventKind, Level, Target, TargetSet};
pub use histogram::{Histogram, HistogramSummary};
pub use intern::PrefixedInterner;
pub use metrics::{HistogramBuckets, Metrics, MetricsReport};
pub use perfetto::{chrome_trace_json, TraceCell};
pub use scope::{install, log, metrics, progress, tracer, Installed, Session, SessionReport};
pub use tracer::Tracer;

/// Logs a warning through the leveled facade: always written to stderr,
/// and additionally recorded as a `log` instant event when a tracing
/// session is installed on the current thread.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Warn, format!($($arg)*))
    };
}

/// Logs an informational message: recorded as a `log` instant event when
/// a session is installed, silently dropped otherwise (keeps `--quick`
/// runs clean on stdout/stderr).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Info, format!($($arg)*))
    };
}
