//! Work-request construction helpers.

use rnic_model::{MrKey, Opcode, Wqe};
use sim_core::SimTime;

/// A work request, the verbs-level description of one RDMA operation.
///
/// Use the constructors ([`WorkRequest::read`], [`WorkRequest::write`],
/// [`WorkRequest::send`], [`WorkRequest::fetch_add`],
/// [`WorkRequest::cmp_swap`]) rather than filling fields by hand.
///
/// # Examples
///
/// ```
/// use rdma_verbs::WorkRequest;
/// use rnic_model::MrKey;
///
/// let wr = WorkRequest::read(1, 0x10_0000, 0x20_0000, MrKey(3), 64);
/// assert_eq!(wr.len, 64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkRequest {
    /// Caller-chosen id echoed in the completion.
    pub wr_id: u64,
    /// Operation.
    pub opcode: Opcode,
    /// Message length in bytes.
    pub len: u64,
    /// Local buffer address.
    pub local_addr: u64,
    /// Remote address (unused for sends).
    pub remote_addr: u64,
    /// Remote key (unused for sends).
    pub rkey: MrKey,
    /// Atomic operands `(compare, swap_or_add)`.
    pub atomic_args: (u64, u64),
}

impl WorkRequest {
    /// RDMA Read of `len` bytes from `remote_addr` into `local_addr`.
    pub fn read(wr_id: u64, local_addr: u64, remote_addr: u64, rkey: MrKey, len: u64) -> Self {
        WorkRequest {
            wr_id,
            opcode: Opcode::Read,
            len,
            local_addr,
            remote_addr,
            rkey,
            atomic_args: (0, 0),
        }
    }

    /// RDMA Write of `len` bytes from `local_addr` to `remote_addr`.
    pub fn write(wr_id: u64, local_addr: u64, remote_addr: u64, rkey: MrKey, len: u64) -> Self {
        WorkRequest {
            wr_id,
            opcode: Opcode::Write,
            len,
            local_addr,
            remote_addr,
            rkey,
            atomic_args: (0, 0),
        }
    }

    /// Two-sided Send of `len` bytes from `local_addr`.
    pub fn send(wr_id: u64, local_addr: u64, len: u64) -> Self {
        WorkRequest {
            wr_id,
            opcode: Opcode::Send,
            len,
            local_addr,
            remote_addr: 0,
            rkey: MrKey(0),
            atomic_args: (0, 0),
        }
    }

    /// 8-byte fetch-and-add at `remote_addr`; the old value is returned in
    /// the completion.
    pub fn fetch_add(wr_id: u64, local_addr: u64, remote_addr: u64, rkey: MrKey, add: u64) -> Self {
        WorkRequest {
            wr_id,
            opcode: Opcode::AtomicFetchAdd,
            len: 8,
            local_addr,
            remote_addr,
            rkey,
            atomic_args: (0, add),
        }
    }

    /// 8-byte compare-and-swap at `remote_addr`.
    pub fn cmp_swap(
        wr_id: u64,
        local_addr: u64,
        remote_addr: u64,
        rkey: MrKey,
        compare: u64,
        swap: u64,
    ) -> Self {
        WorkRequest {
            wr_id,
            opcode: Opcode::AtomicCmpSwap,
            len: 8,
            local_addr,
            remote_addr,
            rkey,
            atomic_args: (compare, swap),
        }
    }

    /// Lowers the work request into the NIC's WQE format.
    pub fn into_wqe(self) -> Wqe {
        Wqe {
            wr_id: self.wr_id,
            opcode: self.opcode,
            len: self.len,
            local_addr: self.local_addr,
            remote_addr: self.remote_addr,
            rkey: self.rkey,
            atomic_args: self.atomic_args,
            posted_at: SimTime::ZERO,
            seq: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_opcodes() {
        assert_eq!(
            WorkRequest::read(1, 0, 0, MrKey(0), 64).opcode,
            Opcode::Read
        );
        assert_eq!(
            WorkRequest::write(1, 0, 0, MrKey(0), 64).opcode,
            Opcode::Write
        );
        assert_eq!(WorkRequest::send(1, 0, 64).opcode, Opcode::Send);
        let fa = WorkRequest::fetch_add(1, 0, 0, MrKey(0), 5);
        assert_eq!(fa.opcode, Opcode::AtomicFetchAdd);
        assert_eq!(fa.len, 8);
        assert_eq!(fa.atomic_args, (0, 5));
        let cs = WorkRequest::cmp_swap(1, 0, 0, MrKey(0), 3, 9);
        assert_eq!(cs.opcode, Opcode::AtomicCmpSwap);
        assert_eq!(cs.atomic_args, (3, 9));
    }

    #[test]
    fn wqe_lowering_copies_fields() {
        let wr = WorkRequest::read(42, 0x100, 0x200, MrKey(7), 128);
        let wqe = wr.into_wqe();
        assert_eq!(wqe.wr_id, 42);
        assert_eq!(wqe.local_addr, 0x100);
        assert_eq!(wqe.remote_addr, 0x200);
        assert_eq!(wqe.rkey, MrKey(7));
        assert_eq!(wqe.len, 128);
    }
}
