//! Online invariant monitors — continuous cross-checks of the fabric's
//! structural invariants *during* a run, not just at quiescence.
//!
//! The chaos oracles ([`ragnar_chaos::FabricStats::conserved`], the WR
//! ledger) validate end states; a corrupted intermediate state that
//! happens to re-balance by the end slips past them. Monitors close that
//! gap: installed via [`sim_core::set_ambient_monitors`] (the harness
//! `--monitors` flag), they ride the sequential event loop and evaluate
//!
//! * **time monotonicity** — event timestamps never move backwards
//!   (checked on every event; one comparison),
//! * **arena ledger** — the packet arena's alloc/free ledger agrees with
//!   a direct count of occupied slots ([`PacketArena::occupied_slots`]),
//! * **packet conservation** — the fabric ledger never has more packets
//!   leaving than entering (`delivered + dropped + icrc <= sent + dups`),
//! * **QP-state legality** — every QP satisfies
//!   [`Rnic::check_qp_invariants`] (outstanding within bounds, queues
//!   consistent),
//!
//! the last three on a configurable event cadence
//! ([`sim_core::MonitorConfig::every_events`]) because they are
//! O(capacity)/O(QPs), not O(1).
//!
//! Violations follow the configured [`sim_core::ViolationPolicy`]:
//! `Log` counts them (and bumps a `monitor.violations` telemetry
//! counter), `FailCell` panics with a `[monitor]` prefix so the harness
//! fails and retries the one cell, `AbortRun` panics with a
//! `[monitor-abort]` prefix the harness recognizes as "stop the whole
//! sweep — the simulator itself is broken".
//!
//! Monitors force the sequential engine (see `parallel_eligible`): the
//! checks want a single coherent world state per event, and a run whose
//! invariants are in question is exactly the run that should execute on
//! the oracle path.

use ragnar_chaos::FabricStats;
use ragnar_telemetry::Metrics;
use rnic_model::{PacketArena, Rnic};
use sim_core::{MonitorConfig, SimTime, ViolationPolicy};

/// Live state of the online monitors for one simulation.
#[derive(Debug, Clone)]
pub(crate) struct MonitorState {
    cfg: MonitorConfig,
    /// Events observed since the last cadence check.
    since_check: u64,
    /// Timestamp of the previous event (monotonicity check).
    last_at: SimTime,
    /// Violations observed (only reachable under `ViolationPolicy::Log`;
    /// the other policies panic on the first).
    violations: u64,
}

impl MonitorState {
    pub(crate) fn new(cfg: MonitorConfig) -> MonitorState {
        MonitorState {
            cfg,
            since_check: 0,
            last_at: SimTime::ZERO,
            violations: 0,
        }
    }

    /// Violations observed so far (non-zero only under the `Log` policy).
    pub(crate) fn violations(&self) -> u64 {
        self.violations
    }

    /// Per-event hook: monotonicity check plus cadence bookkeeping.
    /// Returns `true` when the caller should run the (costlier) state
    /// checks via [`MonitorState::check_state`].
    pub(crate) fn observe_event(&mut self, at: SimTime, metrics: &Metrics) {
        if at < self.last_at {
            self.raise(
                metrics,
                &format!(
                    "time ran backwards: event at {:?} after {:?}",
                    at, self.last_at
                ),
            );
        }
        self.last_at = at;
        self.since_check += 1;
    }

    /// Whether the cadence has elapsed since the last state check.
    pub(crate) fn cadence_due(&self) -> bool {
        self.since_check >= self.cfg.every_events.max(1)
    }

    /// The O(state) checks, run on cadence: arena ledger vs. slab
    /// occupancy, fabric packet conservation, QP-state legality.
    pub(crate) fn check_state(
        &mut self,
        arena: &PacketArena,
        fabric: &FabricStats,
        nics: &[Option<Rnic>],
        metrics: &Metrics,
    ) {
        self.since_check = 0;
        let ledger = arena.live();
        let occupied = arena.occupied_slots();
        if ledger != occupied {
            self.raise(
                metrics,
                &format!(
                    "arena ledger skew: stats say {ledger} live but {occupied} slots occupied"
                ),
            );
        }
        // Mid-run the ledger is allowed to be unbalanced (packets are in
        // flight) but never negative: more packets cannot leave the
        // fabric than entered it.
        let entered = fabric.sent + fabric.duplicates;
        let left = fabric.delivered + fabric.dropped + fabric.icrc_dropped;
        if left > entered {
            self.raise(
                metrics,
                &format!(
                    "packet conservation broken: {left} packets left the fabric, {entered} entered"
                ),
            );
        }
        for nic in nics.iter().flatten() {
            if let Some(msg) = nic.check_qp_invariants() {
                self.raise(
                    metrics,
                    &format!("illegal QP state on host {}: {msg}", nic.host().0),
                );
            }
        }
    }

    fn raise(&mut self, metrics: &Metrics, msg: &str) {
        match self.cfg.policy {
            ViolationPolicy::Log => {
                self.violations += 1;
                metrics.counter_add("monitor.violations", 1);
            }
            ViolationPolicy::FailCell => panic!("[monitor] {msg}"),
            ViolationPolicy::AbortRun => panic!("[monitor-abort] {msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: ViolationPolicy) -> MonitorConfig {
        MonitorConfig {
            policy,
            every_events: 4,
        }
    }

    #[test]
    fn monotonic_time_passes_and_regression_raises() {
        let metrics = Metrics::disabled();
        let mut m = MonitorState::new(cfg(ViolationPolicy::Log));
        m.observe_event(SimTime::from_nanos(10), &metrics);
        m.observe_event(SimTime::from_nanos(10), &metrics);
        m.observe_event(SimTime::from_nanos(20), &metrics);
        assert_eq!(m.violations(), 0);
        m.observe_event(SimTime::from_nanos(5), &metrics);
        assert_eq!(m.violations(), 1);
    }

    #[test]
    fn cadence_counts_events() {
        let metrics = Metrics::disabled();
        let mut m = MonitorState::new(cfg(ViolationPolicy::Log));
        for i in 0..3 {
            m.observe_event(SimTime::from_nanos(i), &metrics);
            assert!(!m.cadence_due());
        }
        m.observe_event(SimTime::from_nanos(9), &metrics);
        assert!(m.cadence_due());
        m.check_state(&PacketArena::new(), &FabricStats::default(), &[], &metrics);
        assert!(!m.cadence_due());
        assert_eq!(m.violations(), 0);
    }

    #[test]
    fn arena_skew_is_caught() {
        let metrics = Metrics::disabled();
        let mut m = MonitorState::new(cfg(ViolationPolicy::Log));
        let mut arena = PacketArena::new();
        arena.debug_skew_ledger();
        m.check_state(&arena, &FabricStats::default(), &[], &metrics);
        assert_eq!(m.violations(), 1);
    }

    #[test]
    fn conservation_deficit_is_caught() {
        let metrics = Metrics::disabled();
        let mut m = MonitorState::new(cfg(ViolationPolicy::Log));
        let fabric = FabricStats {
            sent: 1,
            duplicates: 0,
            delivered: 2,
            dropped: 0,
            icrc_dropped: 0,
        };
        m.check_state(&PacketArena::new(), &fabric, &[], &metrics);
        assert_eq!(m.violations(), 1);
    }

    #[test]
    fn fail_cell_policy_panics_with_monitor_prefix() {
        let metrics = Metrics::disabled();
        let mut m = MonitorState::new(cfg(ViolationPolicy::FailCell));
        let mut arena = PacketArena::new();
        arena.debug_skew_ledger();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.check_state(&arena, &FabricStats::default(), &[], &metrics);
        }))
        .unwrap_err();
        let msg = sim_core::panic_payload_message(err.as_ref());
        assert!(msg.starts_with("[monitor] "), "got: {msg}");
    }

    #[test]
    fn abort_policy_panics_with_abort_prefix() {
        let metrics = Metrics::disabled();
        let mut m = MonitorState::new(cfg(ViolationPolicy::AbortRun));
        m.observe_event(SimTime::from_nanos(10), &metrics);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.observe_event(SimTime::from_nanos(5), &metrics);
        }))
        .unwrap_err();
        let msg = sim_core::panic_payload_message(err.as_ref());
        assert!(msg.starts_with("[monitor-abort] "), "got: {msg}");
    }
}
