//! The simulated fabric: hosts, their RNICs, a switch, and the global
//! event loop that also dispatches application callbacks.

use crate::wr::WorkRequest;
use ragnar_chaos::{FabricStats, FaultInjector, FaultPlan, InjectorStats};
use ragnar_telemetry::profile::{self, Phase};
use ragnar_telemetry::{ActorId, ArgValue, Metrics, Target, Tracer};
use ragnar_topology::{
    FabricRuntime, FlowKey, LinkId, NodeId, PfcPortConfig, PortCounters, Route, Topology,
};
use rnic_model::{
    AccessFlags, ArenaStats, Cqe, DeviceProfile, HostMemory, MrEntry, MrKey, NicAction,
    NicCounters, NicEvent, PacketArena, PacketHandle, PdId, PostError, QpConfig, QpNum,
    QpTransport, RecvWqe, ResetError, Rnic, TrafficClass,
};
use sim_core::{
    CalendarQueue, EventHandle, FxHashMap, ReferenceQueue, SimDuration, SimRng, SimTime,
};
use std::collections::HashMap;

// Child module (not a sibling) so the conservative-sync machinery can
// reach the world's internals without widening their visibility.
#[path = "parallel.rs"]
mod parallel;

/// Typed error for the user-facing [`Simulation`] and [`Ctx`] verbs APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerbsError {
    /// The handle references a host that was never added to the fabric.
    UnknownHost(HostId),
    /// The handle references a QP the NIC does not know.
    UnknownQp,
    /// The QP is in the Error state; recover it with
    /// [`Simulation::recover_qp`] first.
    QpInError,
    /// The send queue is full (`max_send_queue` WQEs outstanding).
    SendQueueFull,
    /// An offset/length pair fell outside a memory region.
    MrOutOfBounds {
        /// Requested offset into the region.
        offset: u64,
        /// The region's registered length.
        len: u64,
    },
    /// [`Simulation::recover_qp`] called on a QP that is not in Error.
    NotInErrorState,
    /// Flushed completions are still draining; run the simulation and
    /// poll them before recovering the QP.
    CompletionsPending,
}

impl core::fmt::Display for VerbsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerbsError::UnknownHost(h) => write!(f, "unknown host {}", h.0),
            VerbsError::UnknownQp => f.write_str("unknown queue pair"),
            VerbsError::QpInError => f.write_str("queue pair is in the Error state"),
            VerbsError::SendQueueFull => f.write_str("send queue full"),
            VerbsError::MrOutOfBounds { offset, len } => {
                write!(f, "offset {offset} beyond MR length {len}")
            }
            VerbsError::NotInErrorState => f.write_str("queue pair is not in the Error state"),
            VerbsError::CompletionsPending => {
                f.write_str("flushed completions still pending; drain the CQ before recovery")
            }
        }
    }
}

impl std::error::Error for VerbsError {}

impl From<PostError> for VerbsError {
    fn from(e: PostError) -> Self {
        match e {
            PostError::UnknownQp => VerbsError::UnknownQp,
            PostError::SendQueueFull => VerbsError::SendQueueFull,
            PostError::QpInError => VerbsError::QpInError,
        }
    }
}

impl From<ResetError> for VerbsError {
    fn from(e: ResetError) -> Self {
        match e {
            ResetError::UnknownQp => VerbsError::UnknownQp,
            ResetError::NotInError => VerbsError::NotInErrorState,
            ResetError::CompletionsPending => VerbsError::CompletionsPending,
        }
    }
}

/// Selects the event-queue backend of a [`Simulation`].
///
/// Both backends are observationally equivalent (sim-core's differential
/// suite proves it); the calendar queue is the fast default, while the
/// reference heap remains available for A/B validation runs and
/// benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical calendar queue — the hot path (default).
    #[default]
    Calendar,
    /// `BinaryHeap`-based ordering oracle.
    Reference,
}

/// The world's event queue, dispatching to the selected backend.
///
/// An enum rather than a generic parameter so that [`Ctx`] and [`App`]
/// stay object-safe and non-generic for every experiment binary.
#[derive(Debug)]
enum WorldQueue {
    Calendar(CalendarQueue<WorldEvent>),
    Reference(ReferenceQueue<WorldEvent>),
}

impl WorldQueue {
    fn new(backend: QueueBackend) -> Self {
        match backend {
            QueueBackend::Calendar => WorldQueue::Calendar(CalendarQueue::new()),
            QueueBackend::Reference => WorldQueue::Reference(ReferenceQueue::new()),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            WorldQueue::Calendar(q) => q.now(),
            WorldQueue::Reference(q) => q.now(),
        }
    }

    fn schedule(&mut self, at: SimTime, event: WorldEvent) {
        match self {
            WorldQueue::Calendar(q) => {
                q.schedule(at, event);
            }
            WorldQueue::Reference(q) => {
                q.schedule(at, event);
            }
        }
    }

    /// Schedules and returns the handle when the backend supports
    /// in-place payload amendment (the calendar queue). The reference
    /// oracle deliberately returns `None` so hop batching never engages
    /// there — keeping it a batching-free differential baseline.
    fn schedule_tracked(&mut self, at: SimTime, event: WorldEvent) -> Option<EventHandle> {
        match self {
            WorldQueue::Calendar(q) => Some(q.schedule(at, event)),
            WorldQueue::Reference(q) => {
                q.schedule(at, event);
                None
            }
        }
    }

    /// In-place access to a still-pending event's payload (calendar
    /// backend only; `None` once fired/cancelled or on the reference
    /// oracle).
    fn event_mut(&mut self, handle: EventHandle) -> Option<&mut WorldEvent> {
        match self {
            WorldQueue::Calendar(q) => q.event_mut(handle),
            WorldQueue::Reference(_) => None,
        }
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, WorldEvent)> {
        match self {
            WorldQueue::Calendar(q) => q.pop_before(deadline),
            WorldQueue::Reference(q) => q.pop_before(deadline),
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            WorldQueue::Calendar(q) => q.peek_time(),
            WorldQueue::Reference(q) => q.peek_time(),
        }
    }

    fn pop_with_seq_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, WorldEvent)> {
        match self {
            WorldQueue::Calendar(q) => q.pop_with_seq_before(deadline),
            WorldQueue::Reference(q) => q.pop_with_seq_before(deadline),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            WorldQueue::Calendar(q) => q.events_processed(),
            WorldQueue::Reference(q) => q.events_processed(),
        }
    }
}

/// Identifies an application registered with the [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub usize);

/// Identifies a flow label allocator result.
pub use rnic_model::FlowId;
pub use rnic_model::HostId;

/// A registered memory region handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrHandle {
    /// Host owning the region.
    pub host: HostId,
    /// Remote key.
    pub key: MrKey,
    /// Base virtual address (2 MiB aligned, as with huge pages).
    pub base_va: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Owning protection domain.
    pub pd: PdId,
}

impl MrHandle {
    /// Address of `offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the region length.
    pub fn addr(&self, offset: u64) -> u64 {
        assert!(
            offset <= self.len,
            "offset {offset} beyond MR length {}",
            self.len
        );
        self.base_va + offset
    }

    /// Fallible variant of [`MrHandle::addr`].
    ///
    /// # Errors
    ///
    /// Returns [`VerbsError::MrOutOfBounds`] instead of panicking when
    /// `offset` exceeds the region length.
    pub fn try_addr(&self, offset: u64) -> Result<u64, VerbsError> {
        if offset > self.len {
            return Err(VerbsError::MrOutOfBounds {
                offset,
                len: self.len,
            });
        }
        Ok(self.base_va + offset)
    }
}

/// A connected queue-pair endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpHandle {
    /// Local host.
    pub host: HostId,
    /// Local QP number.
    pub qp: QpNum,
    /// Remote host.
    pub peer_host: HostId,
    /// Remote QP number.
    pub peer_qp: QpNum,
}

/// Options for [`Simulation::connect`].
#[derive(Debug, Clone, Copy)]
pub struct ConnectOptions {
    /// Traffic class for both directions.
    pub tc: TrafficClass,
    /// Flow label for both directions.
    pub flow: FlowId,
    /// Max outstanding send WQEs per endpoint.
    pub max_send_queue: usize,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            tc: TrafficClass::new(0),
            flow: FlowId(0),
            max_send_queue: 256,
        }
    }
}

/// Inline set of packets sharing one `Hop` event: same link, same
/// instant, same corruption verdict. Most hops carry exactly one packet
/// (link serialization spreads arrivals over distinct instants); the
/// batch exists so that when a burst *does* land on one `(link, tick)`
/// the world pays one queue cell for the whole burst instead of one per
/// packet. Capacity is fixed and small — a full batch simply spills
/// into a fresh event.
#[derive(Debug, Clone, Copy)]
struct HopBatch {
    pkts: [PacketHandle; HopBatch::CAP],
    len: u8,
}

impl HopBatch {
    const CAP: usize = 4;

    fn one(h: PacketHandle) -> HopBatch {
        let mut pkts = [PacketHandle::DANGLING; HopBatch::CAP];
        pkts[0] = h;
        HopBatch { pkts, len: 1 }
    }

    /// Appends a packet; `false` when the batch is full (caller starts a
    /// new event).
    fn push(&mut self, h: PacketHandle) -> bool {
        if usize::from(self.len) == HopBatch::CAP {
            return false;
        }
        self.pkts[usize::from(self.len)] = h;
        self.len += 1;
        true
    }

    fn len(&self) -> u8 {
        self.len
    }

    /// Handles in enqueue order — the order an unbatched run would have
    /// popped the separate events in.
    fn iter(&self) -> impl Iterator<Item = PacketHandle> + '_ {
        self.pkts[..usize::from(self.len)].iter().copied()
    }
}

/// Events of the global loop.
#[derive(Debug)]
enum WorldEvent {
    Nic(HostId, NicEvent),
    Deliver {
        host: HostId,
        pkt: PacketHandle,
        /// The fault injector flipped payload bits in flight; the
        /// receiver's ICRC check discards the packet on arrival.
        corrupt: bool,
    },
    /// Packets crossing one physical link of their ECMP route (only
    /// scheduled when a topology is installed; the point-to-point world
    /// keeps the single-hop `Deliver` path untouched).
    Hop {
        route: Route,
        hop: u8,
        pkts: HopBatch,
        corrupt: bool,
    },
    Timer {
        app: AppId,
        token: u64,
    },
    AppCqe {
        app: AppId,
        host: HostId,
        cqe: Cqe,
    },
}

/// An event-driven application (attacker, victim, or measurement driver).
///
/// Applications never block: they react to completions and timers through
/// the [`Ctx`] handle. Share results with the harness through
/// `Rc<RefCell<…>>` captured at construction.
pub trait App {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// Called when a completion arrives on a QP owned by this app.
    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, host: HostId, cqe: Cqe) {
        let _ = (ctx, host, cqe);
    }

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

/// The most recently scheduled `Hop` event, kept only while no other
/// enqueue has intervened — the one situation where appending another
/// packet to that event's batch is provably order-preserving (see
/// [`World::enqueue_hop`]).
#[derive(Debug, Clone, Copy)]
struct HopTail {
    handle: EventHandle,
    at: SimTime,
    route: Route,
    hop: u8,
    corrupt: bool,
}

/// State shared by the fabric: NICs, routing, allocators.
struct World {
    queue: WorldQueue,
    /// Slab arena every in-flight wire packet lives in. Events, egress
    /// queues and chaos injection pass [`PacketHandle`]s; the packet's
    /// bytes are written once at build time and read in place until the
    /// NIC that consumes it takes or frees the slot.
    arena: PacketArena,
    /// See [`HopTail`]; cleared by every non-coalescing enqueue.
    hop_tail: Option<HopTail>,
    /// Packets that rode an existing `Hop` event instead of costing
    /// their own queue cell. Counted back into
    /// [`Simulation::events_processed`] so batching never changes the
    /// reported event totals.
    coalesced_hops: u64,
    /// Reusable action buffer: NIC dispatches append into this instead
    /// of allocating a fresh `Vec` per event (the queue swap removed the
    /// per-event cell allocation; this removes the per-event action
    /// allocation).
    scratch: Vec<NicAction>,
    nics: Vec<Option<Rnic>>,
    qp_owner: FxHashMap<(HostId, QpNum), AppId>,
    switch_latency: SimDuration,
    next_qp: u32,
    next_mr: u32,
    next_pd: u32,
    next_flow: u32,
    next_va: Vec<u64>,
    orphan_cqes: Vec<(HostId, Cqe)>,
    stopped: bool,
    rng: SimRng,
    /// Probability that any wire packet is dropped by the fabric
    /// (deterministic given the seed). Zero by default.
    loss_rate: f64,
    dropped_packets: u64,
    /// Deterministic fault injector evaluated at the wire hop; `None`
    /// (the default) leaves the fabric untouched and every RNG stream
    /// bit-identical to a chaos-free run.
    injector: Option<FaultInjector>,
    /// Fabric-wide packet conservation ledger for the chaos oracles.
    fabric: FabricStats,
    /// Multi-hop fabric state when a [`Topology`] is installed. `None`
    /// (the default) keeps the legacy single-switch wire path — and its
    /// digests — bit-identical.
    fabric_rt: Option<FabricRuntime>,
    /// Ambient telemetry handles captured at construction; disabled
    /// handles cost one branch per use.
    tracer: Tracer,
    metrics: Metrics,
    /// Declared host footprint per app. Apps without an entry may touch
    /// any host — and force the parallel engine onto the sequential
    /// fallback, since worker partitioning needs the footprint.
    app_scopes: HashMap<AppId, Vec<HostId>>,
    /// `true` for apps registered via [`Simulation::add_send_app`]:
    /// they ship to workers under the parallel engine, and in exchange
    /// lose access to the world RNG and fabric-wide controls — on every
    /// engine, so the sequential oracle surfaces violations first.
    app_sendable: Vec<bool>,
    /// Minimum window-batch size (events) a partition group must reach
    /// before the parallel engine ships it to a worker; smaller groups
    /// execute coordinator-side through the post-barrier leftover path,
    /// which is bit-identical but skips the per-group shipping overhead
    /// (channel hop, NIC checkout, stream merge). Zero ships everything.
    ship_threshold: usize,
    /// Active conservative-round merge state; `None` outside
    /// `run_until_workers` apply phases (i.e. always, on the sequential
    /// path).
    round: Option<RoundCtl>,
    /// Events materialized and consumed inside merge rounds without ever
    /// touching the real queue; added to `queue.events_processed()` so
    /// both engines report identical totals.
    synthetic: u64,
    /// Order-sensitive digest folded over every processed event — the
    /// cross-engine fingerprint of the PDES differential suite.
    order: pdes::Digest64,
    /// Online invariant monitors, captured from
    /// [`sim_core::ambient_monitors`] at construction; `None` (the
    /// default) keeps the event loop's hot path monitor-free. Active
    /// monitors force the sequential engine (see `parallel_eligible`).
    monitors: Option<crate::monitors::MonitorState>,
    /// Shadow PDES window-lane tracker, built lazily when
    /// [`Target::Pdes`] tracing is enabled and the configuration has a
    /// positive lookahead. See [`LaneTracker`].
    lanes: Option<LaneTracker>,
}

/// Deterministic per-window PDES lane accounting for the trace timeline.
///
/// Real job→worker assignment is demand-driven and hence
/// scheduling-dependent, so worker-thread lanes can never appear in a
/// deterministic trace. The schedulable unit that *is* deterministic is
/// the host partition group: this tracker re-derives the same
/// `host_groups` partition and the same lookahead windows the parallel
/// engine uses, counts processed events per `(window, group)` in fold
/// order — which both engines replay identically — and emits one
/// `window` span per active group when the window closes. The resulting
/// lanes are byte-identical at any `--threads`/`--workers`, including on
/// the sequential engine (where they show what the parallel engine
/// *would* schedule).
struct LaneTracker {
    lookahead_ps: u64,
    host_group: Vec<u32>,
    window: u64,
    /// Events folded into the open window, per group (sorted for
    /// deterministic emission order).
    counts: std::collections::BTreeMap<u32, u64>,
}

/// Run-track lane ids (tids under the GLOBAL pid): lane 0 is the run
/// itself, `1 + link` carries per-port PFC pause spans, and the PDES
/// window lanes live in their own bands so port and group ids can never
/// collide.
pub(crate) const PFC_LANE_BASE: u32 = 1;
pub(crate) const PDES_LANE_BASE: u32 = 1_000_000;
pub(crate) const PDES_COORD_LANE: u32 = 2_000_000;

impl World {
    /// Builds the lane tracker on first use when `pdes` tracing is on.
    fn ensure_lane_tracker(&mut self) {
        if self.lanes.is_none() && self.tracer.enabled(Target::Pdes) {
            if let Some(lookahead) = self.lookahead() {
                self.lanes = Some(LaneTracker {
                    lookahead_ps: lookahead.as_picos(),
                    host_group: self.host_groups(),
                    window: 0,
                    counts: std::collections::BTreeMap::new(),
                });
            }
        }
    }

    /// Attributes `n` folded events to a window lane, closing (and
    /// emitting) the previous window when time crosses a boundary.
    /// Events with no single owning host bill the coordinator lane.
    /// Callers pass `n > 1` only for coalesced Hop batches, which must
    /// count per packet so lane totals are batching-invariant (the same
    /// discipline the order digest follows).
    fn note_lane(&mut self, at: SimTime, host: Option<HostId>, n: u64) {
        let Some(tr) = self.lanes.as_mut() else {
            return;
        };
        let w = at.as_picos() / tr.lookahead_ps;
        if w != tr.window {
            let start = tr.window * tr.lookahead_ps;
            for (&g, &n) in tr.counts.iter() {
                let lane = if g == u32::MAX {
                    PDES_COORD_LANE
                } else {
                    PDES_LANE_BASE + g
                };
                self.tracer.span(
                    Target::Pdes,
                    "window",
                    ActorId {
                        host: ActorId::GLOBAL_HOST,
                        lane,
                    },
                    start,
                    tr.lookahead_ps,
                    &[("events", ArgValue::U64(n))],
                );
            }
            tr.counts.clear();
            tr.window = w;
        }
        let g = host
            .and_then(|h| tr.host_group.get(h.0 as usize).copied())
            .unwrap_or(u32::MAX);
        *tr.counts.entry(g).or_insert(0) += n;
    }

    /// Emits the still-open window's lanes (end of a run entry point).
    fn flush_lanes(&mut self) {
        let Some(tr) = self.lanes.as_mut() else {
            return;
        };
        if tr.counts.is_empty() {
            return;
        }
        let start = tr.window * tr.lookahead_ps;
        for (&g, &n) in tr.counts.iter() {
            let lane = if g == u32::MAX {
                PDES_COORD_LANE
            } else {
                PDES_LANE_BASE + g
            };
            self.tracer.span(
                Target::Pdes,
                "window",
                ActorId {
                    host: ActorId::GLOBAL_HOST,
                    lane,
                },
                start,
                tr.lookahead_ps,
                &[("events", ArgValue::U64(n))],
            );
        }
        tr.counts.clear();
    }
}

/// Merge-phase state for one conservative round (see the `parallel`
/// module): events already inside the round's window live in this heap,
/// keyed by `(timestamp, virtual seq)`, exactly mirroring the global
/// queue's `(timestamp, insertion seq)` order.
struct RoundCtl {
    /// Inclusive upper bound of the round's window.
    limit: SimTime,
    /// Timestamp of the entry currently being applied; `World::now()`
    /// reports this while a round is active.
    now: SimTime,
    /// Next virtual sequence number; starts past every real seq the
    /// round's batch consumed and advances in merge order.
    vseq: u64,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<RoundKeyed>>,
}

struct RoundKeyed {
    at: SimTime,
    k2: u64,
    item: RoundItem,
}

enum RoundItem {
    /// A materialized world event, executed through the same
    /// `execute_event` as the sequential loop.
    Ev(WorldEvent),
    /// Head-of-stream marker for a worker group's cooked output.
    Marker(u32),
}

impl RoundKeyed {
    fn key(&self) -> (SimTime, u64, bool) {
        // Ev/Marker never share (at, k2) — batch seqs, virtual seqs and
        // marker heads are disjoint — but keep the order total anyway.
        (self.at, self.k2, matches!(self.item, RoundItem::Marker(_)))
    }
}

impl PartialEq for RoundKeyed {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for RoundKeyed {}
impl PartialOrd for RoundKeyed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RoundKeyed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

const HUGE_PAGE: u64 = 2 * 1024 * 1024;

impl World {
    fn now(&self) -> SimTime {
        match self.round.as_ref() {
            Some(r) => r.now,
            None => self.queue.now(),
        }
    }

    fn nic_ref(&self, host: HostId) -> &Rnic {
        self.nics[host.0 as usize]
            .as_ref()
            .expect("NIC checked out to a parallel worker")
    }

    fn nic_mut(&mut self, host: HostId) -> &mut Rnic {
        self.nics[host.0 as usize]
            .as_mut()
            .expect("NIC checked out to a parallel worker")
    }

    /// Schedules a world event, routing through the active merge round
    /// when one is open and `at` falls inside its window.
    fn enqueue(&mut self, at: SimTime, event: WorldEvent) {
        self.enqueue_in_round(at, event);
    }

    /// Like [`World::enqueue`], returning the virtual sequence number
    /// when the event landed in the round heap (the parallel coordinator
    /// needs it to translate worker emit ids into merge keys).
    fn enqueue_in_round(&mut self, at: SimTime, event: WorldEvent) -> Option<u64> {
        // Any enqueue other than a successful hop coalesce invalidates
        // the tail: a later packet appended to an older Hop event would
        // otherwise execute *before* this event despite having been
        // scheduled after it.
        self.hop_tail = None;
        if let Some(r) = self.round.as_mut() {
            if at <= r.limit {
                debug_assert!(at >= r.now, "round heap push into the past");
                let k2 = r.vseq;
                r.vseq += 1;
                r.heap.push(std::cmp::Reverse(RoundKeyed {
                    at,
                    k2,
                    item: RoundItem::Ev(event),
                }));
                return Some(k2);
            }
        }
        self.queue.schedule(at, event);
        None
    }

    /// Folds one processed event into the order digest. Both engines
    /// fold the same words in the same order; the digest is therefore a
    /// fingerprint of the execution order itself.
    ///
    /// A batched `Hop` folds once *per packet* — exactly the words an
    /// unbatched run folds for its separate Hop events — so coalescing
    /// is invisible to the digest by construction.
    fn fold_event(&mut self, at: SimTime, event: &WorldEvent) {
        if self.lanes.is_some() {
            let n = match event {
                WorldEvent::Hop { pkts, .. } => pkts.len() as u64,
                _ => 1,
            };
            self.note_lane(at, World::lane_host_of(event), n);
        }
        if let WorldEvent::Hop { hop, pkts, .. } = event {
            for h in pkts.iter() {
                let dst = u64::from(self.arena.hot(h).dst.0);
                let d = &mut self.order;
                d.fold(at.as_picos());
                d.fold(3);
                d.fold(u64::from(*hop));
                d.fold(dst);
            }
            return;
        }
        let d = &mut self.order;
        d.fold(at.as_picos());
        match event {
            WorldEvent::Nic(host, _) => {
                d.fold(1);
                d.fold(u64::from(host.0));
            }
            WorldEvent::Deliver { host, corrupt, .. } => {
                d.fold(2);
                d.fold(u64::from(host.0));
                d.fold(u64::from(*corrupt));
            }
            WorldEvent::Hop { .. } => unreachable!("folded above"),
            WorldEvent::Timer { app, token } => {
                d.fold(4);
                d.fold(app.0 as u64);
                d.fold(*token);
            }
            WorldEvent::AppCqe { app, host, .. } => {
                d.fold(5);
                d.fold(app.0 as u64);
                d.fold(u64::from(host.0));
            }
        }
    }

    /// The single owning host a processed event bills its window lane
    /// to, or `None` for events the coordinator always owns (fabric
    /// hops, app timers). Mirrors the worker-side attribution in
    /// `fold_worker_entry` exactly, so lanes are engine-invariant.
    fn lane_host_of(event: &WorldEvent) -> Option<HostId> {
        match event {
            WorldEvent::Nic(host, _) => Some(*host),
            WorldEvent::Deliver { host, .. } => Some(*host),
            WorldEvent::AppCqe { host, .. } => Some(*host),
            WorldEvent::Hop { .. } | WorldEvent::Timer { .. } => None,
        }
    }

    /// Schedules hop `hop` of `route` for one packet, coalescing into
    /// the immediately preceding `Hop` event when — and only when — that
    /// event is still pending, nothing else has been enqueued since, and
    /// `(at, route, hop, corrupt)` all match. Under those conditions the
    /// batch members occupy adjacent positions in the unbatched pop
    /// order, so executing them back-to-back from one event is
    /// bit-identical (same RNG draws, same digest words, same trace).
    ///
    /// In practice the fabric's link serialization spreads arrivals over
    /// distinct picosecond instants, so the coalesce path fires rarely;
    /// it exists for the bursts (duplicated packets, zero-latency test
    /// fabrics) where per-packet queue cells would be pure overhead.
    fn enqueue_hop(
        &mut self,
        at: SimTime,
        route: Route,
        hop: u8,
        pkt: PacketHandle,
        corrupt: bool,
    ) {
        if self.round.is_none() {
            if let Some(tail) = self.hop_tail {
                if tail.at == at
                    && tail.hop == hop
                    && tail.corrupt == corrupt
                    && tail.route == route
                {
                    if let Some(WorldEvent::Hop { pkts, .. }) = self.queue.event_mut(tail.handle) {
                        if pkts.push(pkt) {
                            // Counted into `coalesced_hops` when the
                            // batch executes, not here, so the ledger
                            // only ever reflects processed events.
                            return;
                        }
                    }
                }
            }
            let event = WorldEvent::Hop {
                route,
                hop,
                pkts: HopBatch::one(pkt),
                corrupt,
            };
            self.hop_tail = self
                .queue
                .schedule_tracked(at, event)
                .map(|handle| HopTail {
                    handle,
                    at,
                    route,
                    hop,
                    corrupt,
                });
            return;
        }
        // Inside a merge round events materialize in the round heap,
        // which has no stable handles — fall back to one event per
        // packet (clearing the tail via the shared path).
        self.enqueue_in_round(
            at,
            WorldEvent::Hop {
                route,
                hop,
                pkts: HopBatch::one(pkt),
                corrupt,
            },
        );
    }

    /// Routes a NIC event into the NIC and applies the resulting
    /// actions, reusing the world's scratch buffer.
    fn dispatch_nic(&mut self, host: HostId, event: NicEvent) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let now = self.now();
        // Split field borrows: the NIC slot and the packet arena are
        // disjoint parts of the world.
        let nic = self.nics[host.0 as usize]
            .as_mut()
            .expect("NIC checked out to a parallel worker");
        nic.handle_into(now, event, &mut self.arena, &mut scratch);
        self.apply_actions(host, &mut scratch);
        self.scratch = scratch;
    }

    fn apply_actions(&mut self, host: HostId, actions: &mut Vec<NicAction>) {
        for action in actions.drain(..) {
            match action {
                NicAction::Schedule { at, event } => {
                    self.enqueue(at, WorldEvent::Nic(host, event));
                }
                NicAction::Transmit { at, pkt } => self.transmit(host, at, pkt),
                NicAction::Complete { at, cqe } => {
                    if self.metrics.enabled() {
                        self.metrics
                            .record_ns("qp_completion_ns", cqe.latency().as_nanos_f64());
                        self.metrics.counter_add(
                            if cqe.status.is_ok() {
                                "cqe.success"
                            } else {
                                "cqe.failed"
                            },
                            1,
                        );
                    }
                    if self.tracer.enabled(Target::RdmaVerbs) {
                        self.tracer.instant(
                            Target::RdmaVerbs,
                            "cqe",
                            ActorId::qp(host.0, cqe.qp.0),
                            at.as_picos(),
                            &[
                                ("status", ArgValue::Str(cqe.status.name())),
                                ("opcode", ArgValue::Str(cqe.opcode.name())),
                            ],
                        );
                    }
                    match self.qp_owner.get(&(host, cqe.qp)) {
                        Some(&app) => {
                            self.enqueue(at, WorldEvent::AppCqe { app, host, cqe });
                        }
                        None => self.orphan_cqes.push((host, cqe)),
                    }
                }
            }
        }
    }

    /// Puts one packet on the wire at `at`: loss/chaos verdicts, then
    /// either the first fabric hop or the legacy single-switch delivery.
    ///
    /// Shared between `apply_actions` (sequential path) and the parallel
    /// coordinator, which replays worker-cooked transmits in merge order
    /// so every RNG draw happens in exactly the sequential sequence.
    fn transmit(&mut self, host: HostId, at: SimTime, pkt: PacketHandle) {
        self.fabric.sent += 1;
        let (src, dst, msg_id) = {
            let hot = self.arena.hot(pkt);
            (hot.src, hot.dst, hot.msg_id)
        };
        if self.fabric_rt.is_some() {
            // Fabric mode: ECMP-route the flow and walk the
            // links hop by hop. Loss/chaos verdicts happen
            // per hop, where the packet physically is.
            if self.loss_rate > 0.0 && self.rng.chance(self.loss_rate) {
                let rt = self.fabric_rt.as_ref().expect("fabric mode");
                let up = rt.topology().host_uplink(src);
                self.note_link_drop(up, src, dst);
                self.arena.free(pkt);
                return;
            }
            let (src_qp, dst_qp) = {
                let p = self.arena.get(pkt);
                (p.src_qp, p.dst_qp)
            };
            let rt = self.fabric_rt.as_ref().expect("fabric mode");
            let key = FlowKey::new(src, dst, src_qp.0, dst_qp.0);
            let route = rt.topology().route(src, dst, key);
            self.enqueue_hop(at, route, 0, pkt, false);
            return;
        }
        // Legacy uniform loss draws from the world RNG first so
        // that chaos-free runs keep their exact RNG stream.
        if self.loss_rate > 0.0 && self.rng.chance(self.loss_rate) {
            self.note_wire_drop(host, dst);
            self.arena.free(pkt);
            return;
        }
        let prop = self.nic_ref(host).profile().wire_propagation + self.switch_latency;
        let mut corrupt = false;
        let mut deliver_at = at + prop;
        if let Some(inj) = self.injector.as_mut() {
            let _p = profile::enter(Phase::Chaos);
            let v = inj.verdict(at, host, dst);
            if v.drop {
                self.note_wire_drop(host, dst);
                self.arena.free(pkt);
                return;
            }
            corrupt = v.corrupt;
            deliver_at += v.extra_delay;
            if v.duplicate {
                // The only copy a fault-free run never pays: duplication
                // clones the slot (payload bytes stay shared).
                self.fabric.duplicates += 1;
                let dup = self.arena.clone_entry(pkt);
                self.enqueue(
                    deliver_at + self.switch_latency,
                    WorldEvent::Deliver {
                        host: dst,
                        pkt: dup,
                        corrupt,
                    },
                );
            }
        }
        if self.tracer.enabled(Target::RdmaVerbs) {
            self.tracer.span(
                Target::RdmaVerbs,
                "wire_hop",
                ActorId::device(host.0),
                at.as_picos(),
                (deliver_at - at).as_picos(),
                &[("dst", u64::from(dst.0).into()), ("msg_id", msg_id.into())],
            );
        }
        self.enqueue(
            deliver_at,
            WorldEvent::Deliver {
                host: dst,
                pkt,
                corrupt,
            },
        );
    }

    /// Marks a successful QP Error → Ready transition in the trace.
    fn trace_qp_recover(&mut self, qp: QpHandle) {
        if self.tracer.enabled(Target::RdmaVerbs) {
            let now = self.now();
            self.tracer.instant(
                Target::RdmaVerbs,
                "qp_recover",
                ActorId::qp(qp.host.0, qp.qp.0),
                now.as_picos(),
                &[],
            );
        }
    }

    /// Records a wire drop with per-direction NIC attribution (legacy
    /// single-switch path, where the endpoint pair *is* the link).
    fn note_wire_drop(&mut self, src: HostId, dst: HostId) {
        self.dropped_packets += 1;
        self.fabric.dropped += 1;
        self.nic_mut(src).counters_mut().wire_tx_dropped += 1;
        if let Some(nic) = self.nics.get_mut(dst.0 as usize).and_then(Option::as_mut) {
            nic.counters_mut().wire_rx_dropped += 1;
        }
    }

    /// Records a drop at the physical link it happened on. The link's
    /// ledger always advances; the per-NIC wire counters only when the
    /// link actually touches that NIC — a drop three hops into the
    /// fabric is neither the sender's egress loss nor the receiver's
    /// ingress loss, so endpoint counters must not claim it.
    fn note_link_drop(&mut self, link: LinkId, src: HostId, dst: HostId) {
        self.dropped_packets += 1;
        self.fabric.dropped += 1;
        let rt = self.fabric_rt.as_mut().expect("fabric mode");
        rt.note_link_drop(link);
        let l = *rt.topology().link(link);
        if l.src == NodeId::Host(src.0) {
            self.nic_mut(src).counters_mut().wire_tx_dropped += 1;
        }
        if l.dst == NodeId::Host(dst.0) {
            if let Some(nic) = self.nics.get_mut(dst.0 as usize).and_then(Option::as_mut) {
                nic.counters_mut().wire_rx_dropped += 1;
            }
        }
    }

    /// Carries a packet across hop `hop` of its route: per-hop chaos
    /// verdict, serialization behind the link's queue and pause gate,
    /// then either the next hop or final delivery.
    fn hop_packet(&mut self, route: Route, hop: u8, pkt: PacketHandle, corrupt: bool) {
        let now = self.now();
        let link = route.hop(hop as usize).expect("hop within route");
        let (src, dst, tc, wire_bytes, msg_id) = {
            let hot = self.arena.hot(pkt);
            (hot.src, hot.dst, hot.tc, hot.wire_bytes, hot.msg_id)
        };
        let mut corrupt = corrupt;
        let mut start = now;
        let mut duplicate = false;
        if let Some(inj) = self.injector.as_mut() {
            let _p = profile::enter(Phase::Chaos);
            // The same endpoint-pair plan selectors as the legacy wire
            // apply, evaluated once per traversed link, so loss
            // compounds along the path the way real fabrics lose
            // packets.
            let v = inj.verdict(now, src, dst);
            if v.drop {
                self.note_link_drop(link, src, dst);
                self.arena.free(pkt);
                return;
            }
            corrupt |= v.corrupt;
            start += v.extra_delay;
            // Duplication happens where the packet enters the fabric;
            // honoring it at every hop would multiply copies.
            duplicate = v.duplicate && hop == 0;
        }
        let bytes = u64::from(wire_bytes);
        let rt = self.fabric_rt.as_mut().expect("fabric mode");
        let out = rt.traverse(start, &route, hop as usize, bytes, tc);
        // Capture the pause window while the runtime borrow is live:
        // the span below needs to know when the port resumes.
        let pause_win = out.paused_upstream.map(|up| (up, rt.paused_until(up, tc)));
        if let Some((up, until)) = pause_win {
            if self.metrics.enabled() {
                self.metrics.counter_add("fabric.pfc_xoff", 1);
            }
            if self.tracer.enabled(Target::RdmaVerbs) {
                self.tracer.instant(
                    Target::RdmaVerbs,
                    "pfc_xoff",
                    ActorId::device(src.0),
                    now.as_picos(),
                    &[
                        ("paused_link", u64::from(up.0).into()),
                        ("congested_link", u64::from(link.0).into()),
                        ("tc", u64::from(tc.0).into()),
                    ],
                );
                // Per-port pause/resume span on the run track: one
                // `pfc_pause` span per XOFF, lasting until the pause
                // gate reopens. Rendered as thread `port<link>` of the
                // run process.
                self.tracer.span(
                    Target::RdmaVerbs,
                    "pfc_pause",
                    ActorId {
                        host: ActorId::GLOBAL_HOST,
                        lane: PFC_LANE_BASE + up.0,
                    },
                    now.as_picos(),
                    until.as_picos().saturating_sub(now.as_picos()),
                    &[
                        ("congested_link", u64::from(link.0).into()),
                        ("tc", u64::from(tc.0).into()),
                    ],
                );
            }
        }
        if self.tracer.enabled(Target::RdmaVerbs) {
            self.tracer.span(
                Target::RdmaVerbs,
                "wire_hop",
                ActorId::device(src.0),
                start.as_picos(),
                (out.arrival - start).as_picos(),
                &[
                    ("link", u64::from(link.0).into()),
                    ("hop", u64::from(hop).into()),
                    ("dst", u64::from(dst.0).into()),
                    ("msg_id", msg_id.into()),
                ],
            );
        }
        if duplicate {
            // Copy-on-duplication: the slot is cloned (payload bytes
            // stay shared behind the refcount) only when chaos actually
            // forks the packet.
            self.fabric.duplicates += 1;
            let rt = self.fabric_rt.as_mut().expect("fabric mode");
            let dup_out = rt.traverse(start, &route, hop as usize, bytes, tc);
            let dup = self.arena.clone_entry(pkt);
            self.enqueue_hop(dup_out.arrival, route, hop + 1, dup, corrupt);
        }
        let next = hop + 1;
        if usize::from(next) == route.len() {
            self.enqueue(
                out.arrival,
                WorldEvent::Deliver {
                    host: dst,
                    pkt,
                    corrupt,
                },
            );
        } else {
            self.enqueue_hop(out.arrival, route, next, pkt, corrupt);
        }
    }

    fn post_send(&mut self, qp: QpHandle, wr: WorkRequest) -> Result<(), PostError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let now = self.now();
        let res = self
            .nic_mut(qp.host)
            .post_send_into(now, qp.qp, wr.into_wqe(), &mut scratch);
        if res.is_ok() {
            self.apply_actions(qp.host, &mut scratch);
        }
        scratch.clear();
        self.scratch = scratch;
        res
    }
}

/// The top-level simulation: fabric plus applications.
///
/// # Examples
///
/// One 64 B write between two CX-5 hosts, checked end to end:
///
/// ```
/// use rdma_verbs::{ConnectOptions, Simulation, WorkRequest};
/// use rnic_model::{AccessFlags, DeviceProfile};
/// use sim_core::SimTime;
///
/// let mut sim = Simulation::new(42);
/// let a = sim.add_host(DeviceProfile::connectx5());
/// let b = sim.add_host(DeviceProfile::connectx5());
/// let pd_a = sim.alloc_pd(a);
/// let pd_b = sim.alloc_pd(b);
/// let src = sim.register_mr(a, pd_a, 4096, AccessFlags::remote_all());
/// let dst = sim.register_mr(b, pd_b, 4096, AccessFlags::remote_all());
/// let (qa, _qb) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
///
/// sim.write_memory(a, src.addr(0), b"ping");
/// sim.post_send(qa, WorkRequest::write(1, src.addr(0), dst.addr(64), dst.key, 4))
///     .expect("post");
/// sim.run_until(SimTime::from_millis(1));
///
/// assert_eq!(sim.read_memory(b, dst.addr(64), 4), b"ping");
/// let done = sim.take_completions();
/// assert_eq!(done.len(), 1);
/// assert!(done[0].1.status.is_ok());
/// ```
pub struct Simulation {
    world: World,
    apps: Vec<Option<AppBox>>,
    started_count: usize,
    /// Supervisor activity recorded by the most recent
    /// `run_until_workers` call that ran under an ambient
    /// [`pdes::PoolPolicy`]; `None` on the unsupervised fast path.
    supervisor: Option<SupervisorStats>,
}

/// What the supervised worker pool survived during one
/// [`Simulation::run_until_workers`] call: the pool's health counters
/// plus how many shipped group batches were replayed inline on the
/// coordinator (the sequential oracle) after a worker fault returned
/// them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Pool health counters (panics, stalls, respawns, quarantines,
    /// jobs run inline because every worker slot died).
    pub health: pdes::HealthSnapshot,
    /// Group jobs replayed coordinator-side after a worker fault
    /// returned them unexecuted.
    pub replayed_jobs: u64,
}

/// App storage: whether the app may be shipped to a parallel worker.
enum AppBox {
    /// Coordinator-only app ([`Simulation::add_app`]): may draw from the
    /// world RNG and touch fabric-wide controls; under the parallel
    /// engine its callbacks barrier its host group and run on the
    /// coordinator in merge order.
    Local(Box<dyn App>),
    /// Send app ([`Simulation::add_send_app`]): checked out to the
    /// worker that owns its host group, so its callbacks execute in
    /// parallel instead of barriering.
    Send(Box<dyn App + Send>),
}

impl AppBox {
    fn as_dyn(&mut self) -> &mut dyn App {
        match self {
            AppBox::Local(a) => a.as_mut(),
            AppBox::Send(a) => a.as_mut(),
        }
    }
}

impl Simulation {
    /// Creates an empty fabric with a deterministic seed and the default
    /// (calendar) queue backend.
    pub fn new(seed: u64) -> Self {
        Self::with_backend(seed, QueueBackend::default())
    }

    /// Creates an empty fabric with an explicit queue backend — used by
    /// differential validation runs and the event-core benchmarks.
    /// Results are identical across backends for a given seed.
    pub fn with_backend(seed: u64, backend: QueueBackend) -> Self {
        Simulation {
            world: World {
                queue: WorldQueue::new(backend),
                arena: PacketArena::new(),
                hop_tail: None,
                coalesced_hops: 0,
                scratch: Vec::new(),
                nics: Vec::new(),
                qp_owner: FxHashMap::default(),
                switch_latency: SimDuration::from_nanos(200),
                next_qp: 1,
                next_mr: 1,
                next_pd: 1,
                next_flow: 1,
                next_va: Vec::new(),
                orphan_cqes: Vec::new(),
                stopped: false,
                rng: SimRng::derive(seed, "world"),
                loss_rate: 0.0,
                dropped_packets: 0,
                injector: None,
                fabric: FabricStats::default(),
                fabric_rt: None,
                tracer: ragnar_telemetry::tracer(),
                metrics: ragnar_telemetry::metrics(),
                app_scopes: HashMap::new(),
                app_sendable: Vec::new(),
                ship_threshold: parallel::DEFAULT_SHIP_THRESHOLD,
                round: None,
                synthetic: 0,
                order: pdes::Digest64::new(),
                monitors: sim_core::ambient_monitors().map(crate::monitors::MonitorState::new),
                lanes: None,
            },
            apps: Vec::new(),
            started_count: 0,
            supervisor: None,
        }
    }

    /// Creates a fabric routed over a multi-hop [`Topology`] instead of
    /// the hardcoded single switch: packets take ECMP-selected per-flow
    /// paths, serialize behind per-link queues, and (when `pfc` is set)
    /// generate PFC back-pressure at congested switch egresses.
    ///
    /// Host *n* added via [`Simulation::add_host`] occupies slot *n* of
    /// the topology; add no more hosts than the topology declares.
    pub fn with_topology(seed: u64, topo: Topology, pfc: Option<PfcPortConfig>) -> Self {
        let mut sim = Self::new(seed);
        sim.world.fabric_rt = Some(FabricRuntime::new(topo, pfc));
        sim
    }

    /// The installed topology, if this is a multi-hop fabric.
    pub fn topology(&self) -> Option<&Topology> {
        self.world.fabric_rt.as_ref().map(|rt| rt.topology())
    }

    /// Per-link ingress counters (`None` without a topology).
    pub fn link_counters(&self, link: LinkId) -> Option<&PortCounters> {
        self.world.fabric_rt.as_ref().map(|rt| rt.counters(link))
    }

    /// Silences one fabric link's transmitter for a traffic class — the
    /// per-port enforcement half of a PFC defense. No-op without a
    /// topology.
    pub fn pause_link(&mut self, link: LinkId, tc: TrafficClass, duration: SimDuration) {
        let until = self.world.now() + duration;
        if let Some(rt) = self.world.fabric_rt.as_mut() {
            rt.pause_link(link, tc, until);
        }
    }

    /// Adds a host with the given RNIC profile; hosts are numbered from 0.
    pub fn add_host(&mut self, profile: DeviceProfile) -> HostId {
        if let Some(rt) = &self.world.fabric_rt {
            assert!(
                self.world.nics.len() < rt.topology().num_hosts() as usize,
                "topology {} has no port for another host",
                rt.topology().spec().canonical()
            );
        }
        let id = HostId(self.world.nics.len() as u32);
        // Derive per-NIC seeds from the world RNG stream deterministically.
        let seed = self.world.rng.next_u64();
        self.world.nics.push(Some(Rnic::new(id, profile, seed)));
        self.world.next_va.push(HUGE_PAGE);
        id
    }

    /// Allocates a protection domain on `host`.
    pub fn alloc_pd(&mut self, host: HostId) -> PdId {
        let _ = host;
        let pd = PdId(self.world.next_pd);
        self.world.next_pd += 1;
        pd
    }

    /// Allocates a fresh flow label.
    pub fn alloc_flow(&mut self) -> FlowId {
        let f = FlowId(self.world.next_flow);
        self.world.next_flow += 1;
        f
    }

    /// Registers a 2 MiB-aligned MR of `len` bytes on `host` (the paper's
    /// setup pins MRs on 2 MB huge pages).
    pub fn register_mr(
        &mut self,
        host: HostId,
        pd: PdId,
        len: u64,
        access: AccessFlags,
    ) -> MrHandle {
        let key = MrKey(self.world.next_mr);
        self.world.next_mr += 1;
        let base = self.world.next_va[host.0 as usize];
        let span = len.div_ceil(HUGE_PAGE).max(1) * HUGE_PAGE;
        self.world.next_va[host.0 as usize] = base + span;
        let entry = MrEntry {
            key,
            pd,
            base_va: base,
            len,
            access,
        };
        self.world.nic_mut(host).register_mr(entry);
        MrHandle {
            host,
            key,
            base_va: base,
            len,
            pd,
        }
    }

    /// Deregisters an MR; returns whether it existed.
    pub fn deregister_mr(&mut self, mr: MrHandle) -> bool {
        self.world.nic_mut(mr.host).deregister_mr(mr.key)
    }

    /// Connects an RC queue pair between two hosts, returning both
    /// endpoints (`a` first).
    pub fn connect(
        &mut self,
        a: HostId,
        pd_a: PdId,
        b: HostId,
        pd_b: PdId,
        opts: ConnectOptions,
    ) -> (QpHandle, QpHandle) {
        let qa = QpNum(self.world.next_qp);
        let qb = QpNum(self.world.next_qp + 1);
        self.world.next_qp += 2;
        self.world.nic_mut(a).create_qp(
            qa,
            QpConfig {
                pd: pd_a,
                tc: opts.tc,
                flow: opts.flow,
                peer_host: b,
                peer_qp: qb,
                max_send_queue: opts.max_send_queue,
            },
        );
        self.world.nic_mut(b).create_qp(
            qb,
            QpConfig {
                pd: pd_b,
                tc: opts.tc,
                flow: opts.flow,
                peer_host: a,
                peer_qp: qa,
                max_send_queue: opts.max_send_queue,
            },
        );
        (
            QpHandle {
                host: a,
                qp: qa,
                peer_host: b,
                peer_qp: qb,
            },
            QpHandle {
                host: b,
                qp: qb,
                peer_host: a,
                peer_qp: qa,
            },
        )
    }

    /// Applies ETS weights on a host's egress scheduler (`mlnx_qos`).
    pub fn set_ets_weights(&mut self, host: HostId, weights: [u32; TrafficClass::COUNT]) {
        self.world.nic_mut(host).set_ets_weights(weights);
    }

    /// Registers an application; its `on_start` runs when the simulation
    /// first advances.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        let id = AppId(self.apps.len());
        self.apps.push(Some(AppBox::Local(app)));
        self.world.app_sendable.push(false);
        id
    }

    /// Registers a `Send` application that the parallel engine may check
    /// out to the worker owning its host group, so its `on_timer` /
    /// `on_cqe` callbacks execute worker-side instead of barriering the
    /// group (see `run_until_workers`). Sequential behavior is identical
    /// to [`Simulation::add_app`], with one restriction enforced on
    /// *every* engine so the sequential oracle stays a faithful
    /// differential reference: a send app must not call [`Ctx::rng`]
    /// (derive a private [`SimRng`] at construction instead) or the
    /// fabric-wide controls ([`Ctx::topology`], [`Ctx::link_counters`],
    /// [`Ctx::pause_link`], [`Ctx::stop`]) — those panic.
    pub fn add_send_app(&mut self, app: Box<dyn App + Send>) -> AppId {
        let id = AppId(self.apps.len());
        self.apps.push(Some(AppBox::Send(app)));
        self.world.app_sendable.push(true);
        id
    }

    /// Routes completions of `qp` to `app`.
    pub fn own_qp(&mut self, app: AppId, qp: QpHandle) {
        self.world.qp_owner.insert((qp.host, qp.qp), app);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Immutable access to a host's NIC (counters, TPU, profile).
    pub fn nic(&self, host: HostId) -> &Rnic {
        self.world.nic_ref(host)
    }

    /// Mutable access to a host's NIC (defense knobs, instrumentation).
    pub fn nic_mut(&mut self, host: HostId) -> &mut Rnic {
        self.world.nic_mut(host)
    }

    /// Shorthand for a host's counters.
    pub fn counters(&self, host: HostId) -> &NicCounters {
        self.world.nic_ref(host).counters()
    }

    /// Writes into a host's memory.
    pub fn write_memory(&mut self, host: HostId, addr: u64, data: &[u8]) {
        self.world.nic_mut(host).memory_mut().write(addr, data);
    }

    /// Reads from a host's memory.
    pub fn read_memory(&self, host: HostId, addr: u64, len: u64) -> Vec<u8> {
        self.world.nic_ref(host).memory().read(addr, len)
    }

    /// A host's memory handle.
    pub fn memory_mut(&mut self, host: HostId) -> &mut HostMemory {
        self.world.nic_mut(host).memory_mut()
    }

    /// Sets the fabric's packet-loss probability (0 disables; default).
    /// Lost messages are recovered by the NICs' retransmission timers;
    /// `1.0` (total loss) exercises retry exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn set_loss_rate(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "loss rate out of range");
        self.world.loss_rate = rate;
    }

    /// Packets dropped by the fabric so far (uniform loss plus injected
    /// faults; ICRC discards are counted separately).
    pub fn dropped_packets(&self) -> u64 {
        self.world.dropped_packets
    }

    /// Installs a deterministic fault plan, replacing any previous one.
    /// The injector draws from its own RNG stream, so installing (or
    /// not installing) a plan never perturbs workload randomness.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        self.world.injector = Some(FaultInjector::new(plan.clone()));
    }

    /// Removes the installed fault plan, if any.
    pub fn clear_fault_plan(&mut self) {
        self.world.injector = None;
    }

    /// Fabric-wide packet conservation ledger (sent, delivered, dropped,
    /// ICRC-discarded, duplicated). At quiescence
    /// `sent + duplicates == delivered + dropped + icrc_dropped`.
    pub fn fabric_stats(&self) -> FabricStats {
        self.world.fabric
    }

    /// Per-fault-kind injection counts, if a plan is installed.
    pub fn fault_stats(&self) -> Option<InjectorStats> {
        self.world.injector.as_ref().map(|inj| inj.stats())
    }

    /// Order-sensitive digest of every injection decision so far — equal
    /// digests mean bit-identical fault traces. `None` without a plan.
    pub fn fault_trace_digest(&self) -> Option<u64> {
        self.world.injector.as_ref().map(|inj| inj.trace_digest())
    }

    /// Whether `qp` sits in the Error state (fatal transport failure;
    /// posts are rejected until [`Simulation::recover_qp`]).
    pub fn qp_in_error(&self, qp: QpHandle) -> bool {
        self.world
            .nics
            .get(qp.host.0 as usize)
            .and_then(Option::as_ref)
            .and_then(|nic| nic.qp_transport(qp.qp))
            == Some(QpTransport::Error)
    }

    /// Resets an Error-state QP back to Ready — the simulator's stand-in
    /// for the verbs `ERR → RESET → INIT → RTR → RTS` modify-QP ladder.
    /// Flushed completions must be drained (run the simulation and poll
    /// the CQ) before recovery succeeds.
    ///
    /// # Errors
    ///
    /// [`VerbsError::UnknownHost`]/[`VerbsError::UnknownQp`] for stale
    /// handles, [`VerbsError::NotInErrorState`] for a healthy QP, and
    /// [`VerbsError::CompletionsPending`] while flushes are in flight.
    pub fn recover_qp(&mut self, qp: QpHandle) -> Result<(), VerbsError> {
        let nic = self
            .world
            .nics
            .get_mut(qp.host.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(VerbsError::UnknownHost(qp.host))?;
        nic.reset_qp(qp.qp)?;
        self.world.trace_qp_recover(qp);
        Ok(())
    }

    /// Posts a work request from outside any app (handy in tests and
    /// simple drivers).
    ///
    /// # Errors
    ///
    /// [`VerbsError::UnknownHost`] for a stale handle, otherwise the
    /// NIC's [`PostError`] mapped into [`VerbsError`].
    pub fn post_send(&mut self, qp: QpHandle, wr: WorkRequest) -> Result<(), VerbsError> {
        if qp.host.0 as usize >= self.world.nics.len() {
            return Err(VerbsError::UnknownHost(qp.host));
        }
        self.world.post_send(qp, wr).map_err(VerbsError::from)
    }

    /// Posts a receive WQE.
    ///
    /// # Errors
    ///
    /// [`VerbsError::UnknownHost`] for a stale handle, otherwise the
    /// NIC's [`PostError`] mapped into [`VerbsError`].
    pub fn post_recv(&mut self, qp: QpHandle, recv: RecvWqe) -> Result<(), VerbsError> {
        let nic = self
            .world
            .nics
            .get_mut(qp.host.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(VerbsError::UnknownHost(qp.host))?;
        nic.post_recv(qp.qp, recv).map_err(VerbsError::from)
    }

    /// Completions delivered on QPs not owned by any app, in delivery
    /// order. Draining.
    pub fn take_completions(&mut self) -> Vec<(HostId, Cqe)> {
        std::mem::take(&mut self.world.orphan_cqes)
    }

    /// Starts every app that has not yet run `on_start` (apps may be
    /// added mid-simulation; they start at the next `run_until`).
    fn start_apps(&mut self) {
        while self.started_count < self.apps.len() {
            let i = self.started_count;
            self.started_count += 1;
            self.with_app(AppId(i), |app, ctx| app.on_start(ctx));
        }
    }

    fn with_app(&mut self, id: AppId, f: impl FnOnce(&mut dyn App, &mut Ctx<'_>)) {
        let Some(mut app) = self.apps[id.0].take() else {
            return;
        };
        {
            let mut ctx = Ctx {
                world: CtxWorld::Direct(&mut self.world),
                app: id,
            };
            f(app.as_dyn(), &mut ctx);
        }
        self.apps[id.0] = Some(app);
    }

    /// Runs the event loop until `deadline` (inclusive), the stop flag, or
    /// queue exhaustion. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_apps();
        self.world.ensure_lane_tracker();
        let mut processed = 0;
        while !self.world.stopped {
            let Some((at, event)) = self.world.queue.pop_before(deadline) else {
                break;
            };
            // A batched Hop counts once per packet it carries, so the
            // processed total is identical with and without coalescing.
            processed += match &event {
                WorldEvent::Hop { pkts, .. } => u64::from(pkts.len()),
                _ => 1,
            };
            self.world.fold_event(at, &event);
            self.execute_event(event);
            if self.world.monitors.is_some() {
                self.observe_monitors(at);
            }
        }
        self.world.flush_lanes();
        processed
    }

    /// Runs the online invariant monitors after one event: the O(1)
    /// per-event checks always, the O(state) checks on cadence. Out of
    /// line so the monitor-free hot loop pays one branch.
    #[cold]
    fn observe_monitors(&mut self, at: SimTime) {
        let w = &mut self.world;
        let Some(mon) = w.monitors.as_mut() else {
            return;
        };
        mon.observe_event(at, &w.metrics);
        if mon.cadence_due() {
            mon.check_state(&w.arena, &w.fabric, &w.nics, &w.metrics);
        }
    }

    /// Monitor violations observed so far under the `Log` policy
    /// (`None` when monitors are not installed; the stricter policies
    /// panic on the first violation instead of counting).
    pub fn monitor_violations(&self) -> Option<u64> {
        self.world.monitors.as_ref().map(|m| m.violations())
    }

    /// Supervisor activity from the most recent supervised
    /// `run_until_workers` call (`None` when no ambient
    /// [`pdes::PoolPolicy`] was installed or the run fell back to the
    /// sequential engine).
    pub fn supervisor_stats(&self) -> Option<SupervisorStats> {
        self.supervisor
    }

    /// Skews the packet arena's allocation ledger without touching any
    /// slot — plants the exact inconsistency the arena monitor exists to
    /// catch. Test-only.
    #[doc(hidden)]
    pub fn debug_skew_arena_ledger(&mut self) {
        self.world.arena.debug_skew_ledger();
    }

    /// Records a phantom delivery in the fabric conservation ledger —
    /// more packets leaving than entered. Test-only.
    #[doc(hidden)]
    pub fn debug_skew_fabric_ledger(&mut self) {
        self.world.fabric.delivered += 1;
    }

    /// Forces a QP on `host` into an illegal state (`outstanding`
    /// past its configured bound). Test-only.
    #[doc(hidden)]
    pub fn debug_skew_qp(&mut self, host: HostId, qp: QpNum) {
        self.world.nic_mut(host).debug_skew_qp_outstanding(qp);
    }

    /// Dispatches one popped event — the single definition shared by the
    /// sequential loop above and the parallel coordinator's merge phase,
    /// so both engines execute events through identical code.
    fn execute_event(&mut self, event: WorldEvent) {
        let _p = profile::enter(Phase::Execute);
        match event {
            WorldEvent::Nic(host, ev) => {
                self.world.dispatch_nic(host, ev);
            }
            WorldEvent::Deliver { host, pkt, corrupt } => {
                if corrupt {
                    // The ICRC check rejects the mangled payload; the
                    // requester's retransmission timer recovers it —
                    // the slot is done the moment the check fails.
                    self.world.fabric.icrc_dropped += 1;
                    self.world.nic_mut(host).counters_mut().icrc_rx_dropped += 1;
                    self.world.arena.free(pkt);
                } else {
                    self.world.fabric.delivered += 1;
                    self.world
                        .dispatch_nic(host, NicEvent::IngressArrival { pkt });
                }
            }
            WorldEvent::Hop {
                route,
                hop,
                pkts,
                corrupt,
            } => {
                // Batch members execute back-to-back in enqueue order —
                // the exact order an unbatched run pops them in. The
                // extra members are folded into the processed-events
                // ledger so totals stay engine- and batching-invariant.
                self.world.coalesced_hops += u64::from(pkts.len()) - 1;
                for h in pkts.iter() {
                    self.world.hop_packet(route, hop, h, corrupt);
                }
            }
            WorldEvent::Timer { app, token } => {
                self.with_app(app, |a, ctx| a.on_timer(ctx, token));
            }
            WorldEvent::AppCqe { app, host, cqe } => {
                self.with_app(app, |a, ctx| a.on_cqe(ctx, host, cqe));
            }
        }
    }

    /// Runs until the queue drains or an app calls [`Ctx::stop`].
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Total events processed so far — real queue pops plus events the
    /// parallel engine materialized and consumed inside merge rounds.
    pub fn events_processed(&self) -> u64 {
        self.world.queue.events_processed() + self.world.synthetic + self.world.coalesced_hops
    }

    /// Packets that executed as extra members of a batched `Hop` event
    /// instead of costing their own queue cell (zero unless a burst
    /// landed on one `(link, tick)`). Already included in
    /// [`Simulation::events_processed`].
    pub fn coalesced_hops(&self) -> u64 {
        self.world.coalesced_hops
    }

    /// Allocation ledger of the packet arena: slots allocated and freed,
    /// chaos-driven duplications (the only packet copies a run ever
    /// pays), and the high-water mark of simultaneously live packets.
    pub fn packet_arena_stats(&self) -> ArenaStats {
        self.world.arena.stats()
    }

    /// Packets currently alive in the arena — zero at quiescence, when
    /// every transmitted packet has been consumed or dropped.
    pub fn packet_arena_live(&self) -> u64 {
        self.world.arena.live()
    }

    /// Order-sensitive digest over every processed event `(timestamp,
    /// kind, principal)`. Bit-equal digests across engines and worker
    /// counts mean the parallel engine replayed the sequential event
    /// order exactly — the property the PDES differential suite pins.
    pub fn order_digest(&self) -> u64 {
        self.world.order.value()
    }

    /// Events consumed inside parallel merge rounds (zero on the
    /// sequential engine). A positive count proves a
    /// [`Simulation::run_until_workers`] call actually took the
    /// parallel path rather than the sequential fallback — the
    /// differential suite asserts this so a silently-degraded engine
    /// can't fake equivalence.
    pub fn synthetic_events(&self) -> u64 {
        self.world.synthetic
    }

    /// Declares the set of hosts `app` may touch. The conservative
    /// parallel engine partitions hosts into independent groups from
    /// these footprints; apps that never declare one force the
    /// sequential fallback in [`Simulation::run_until_workers`].
    ///
    /// Scopes are enforced: once declared, a [`Ctx`] call referencing a
    /// host outside the footprint panics (on every engine, so the
    /// sequential oracle catches violations before a parallel run ever
    /// sees them).
    pub fn set_app_scope(&mut self, app: AppId, hosts: &[HostId]) {
        self.world.app_scopes.insert(app, hosts.to_vec());
    }

    /// Overrides the adaptive-granularity ship threshold of the parallel
    /// engine: a partition group whose window batch holds fewer events
    /// executes coordinator-side (bit-identically) instead of paying the
    /// per-group shipping overhead. Zero forces every group onto a
    /// worker — the differential suite uses that to keep the worker path
    /// fully exercised regardless of workload size.
    pub fn set_parallel_ship_threshold(&mut self, events: usize) {
        self.world.ship_threshold = events;
    }
}

impl Drop for Simulation {
    /// Folds this fabric's NIC counters into the ambient metrics
    /// registry, so every experiment — including ones that build their
    /// `Simulation` internally — contributes per-direction drop
    /// attribution and event-core churn without explicit plumbing.
    fn drop(&mut self) {
        let m = &self.world.metrics;
        if !m.enabled() {
            return;
        }
        m.counter_add(
            "sim.events_processed",
            self.world.queue.events_processed() + self.world.synthetic + self.world.coalesced_hops,
        );
        m.counter_add("wire.dropped_packets", self.world.dropped_packets);
        if let Some(rt) = &self.world.fabric_rt {
            let (mut drops, mut pauses) = (0, 0);
            for c in rt.all_counters() {
                drops += c.dropped;
                pauses += c.pauses_taken;
            }
            m.counter_add("fabric.link_dropped", drops);
            m.counter_add("fabric.pfc_pauses", pauses);
        }
        // One interned `nic.*` key per counter name for the whole
        // fabric, instead of a fresh format! per (host, counter) pair.
        let mut nic_keys = ragnar_telemetry::PrefixedInterner::new("nic.");
        for nic in self.world.nics.iter().flatten() {
            for (name, v) in nic.counters().snapshot().metric_entries() {
                if v != 0 {
                    m.counter_add(nic_keys.get(name), v);
                }
            }
        }
    }
}

/// The capability handle passed to application callbacks.
pub struct Ctx<'a> {
    world: CtxWorld<'a>,
    app: AppId,
}

/// What a [`Ctx`] is backed by: the world itself (sequential engine and
/// parallel-coordinator callbacks) or a worker's checked-out slice of it
/// (send apps executing inside a conservative round).
enum CtxWorld<'a> {
    Direct(&'a mut World),
    Worker(&'a mut (dyn WorkerBackend + 'a)),
}

/// The subset of world operations a parallel worker can honor for a
/// shipped send app: time, timers, verbs on checked-out NICs. Side
/// effects are *cooked* into the worker's output stream, not applied.
/// Implemented by the `parallel` module.
trait WorkerBackend {
    fn now(&self) -> SimTime;
    /// The shipped app's declared scope (exact, so enforcement matches
    /// the sequential engine's `check_scope`).
    fn scope(&self) -> &[HostId];
    fn set_timer(&mut self, app: AppId, delay: SimDuration, token: u64);
    fn post_send(&mut self, qp: QpHandle, wr: WorkRequest) -> Result<(), VerbsError>;
    fn nic(&self, host: HostId) -> &Rnic;
    fn nic_mut(&mut self, host: HostId) -> &mut Rnic;
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        match &self.world {
            CtxWorld::Direct(w) => w.now(),
            CtxWorld::Worker(b) => b.now(),
        }
    }

    /// This app's id.
    pub fn app_id(&self) -> AppId {
        self.app
    }

    /// Enforces the app's declared host footprint (see
    /// [`Simulation::set_app_scope`]). Apps without a declared scope are
    /// unrestricted (and never run worker-side).
    fn check_scope(&self, host: HostId) {
        let in_scope = match &self.world {
            CtxWorld::Direct(w) => w
                .app_scopes
                .get(&self.app)
                .is_none_or(|scope| scope.contains(&host)),
            CtxWorld::Worker(b) => b.scope().contains(&host),
        };
        assert!(
            in_scope,
            "app {} touched host {} outside its declared scope",
            self.app.0, host.0
        );
    }

    /// Panics if this app was registered via
    /// [`Simulation::add_send_app`] — used by the world-RNG and
    /// fabric-wide capabilities that cannot ship to a worker. Enforced
    /// on the sequential engine too, so the oracle and the parallel
    /// engine agree on which programs are valid.
    fn deny_to_send_apps(&self, what: &str) {
        let sendable = match &self.world {
            CtxWorld::Direct(w) => w.app_sendable.get(self.app.0).copied().unwrap_or(false),
            CtxWorld::Worker(_) => true,
        };
        assert!(
            !sendable,
            "app {}: {what} is not available to send apps (add_send_app); \
             register via add_app to keep coordinator-side semantics",
            self.app.0
        );
    }

    /// Posts a work request.
    ///
    /// # Errors
    ///
    /// The NIC's [`PostError`] mapped into [`VerbsError`] (notably
    /// [`VerbsError::SendQueueFull`], which attack loops use for pacing,
    /// and [`VerbsError::QpInError`] after a fatal transport failure).
    pub fn post_send(&mut self, qp: QpHandle, wr: WorkRequest) -> Result<(), VerbsError> {
        self.check_scope(qp.host);
        match &mut self.world {
            CtxWorld::Direct(w) => {
                if qp.host.0 as usize >= w.nics.len() {
                    return Err(VerbsError::UnknownHost(qp.host));
                }
                w.post_send(qp, wr).map_err(VerbsError::from)
            }
            CtxWorld::Worker(b) => b.post_send(qp, wr),
        }
    }

    /// Posts a receive WQE.
    ///
    /// # Errors
    ///
    /// The NIC's [`PostError`] mapped into [`VerbsError`].
    pub fn post_recv(&mut self, qp: QpHandle, recv: RecvWqe) -> Result<(), VerbsError> {
        self.check_scope(qp.host);
        match &mut self.world {
            CtxWorld::Direct(w) => {
                let nic = w
                    .nics
                    .get_mut(qp.host.0 as usize)
                    .and_then(Option::as_mut)
                    .ok_or(VerbsError::UnknownHost(qp.host))?;
                nic.post_recv(qp.qp, recv).map_err(VerbsError::from)
            }
            CtxWorld::Worker(b) => b
                .nic_mut(qp.host)
                .post_recv(qp.qp, recv)
                .map_err(VerbsError::from),
        }
    }

    /// Whether `qp` sits in the Error state.
    pub fn qp_in_error(&self, qp: QpHandle) -> bool {
        self.check_scope(qp.host);
        let state = match &self.world {
            CtxWorld::Direct(w) => w
                .nics
                .get(qp.host.0 as usize)
                .and_then(Option::as_ref)
                .and_then(|nic| nic.qp_transport(qp.qp)),
            CtxWorld::Worker(b) => b.nic(qp.host).qp_transport(qp.qp),
        };
        state == Some(QpTransport::Error)
    }

    /// Resets an Error-state QP back to Ready (see
    /// [`Simulation::recover_qp`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::recover_qp`].
    pub fn recover_qp(&mut self, qp: QpHandle) -> Result<(), VerbsError> {
        self.check_scope(qp.host);
        match &mut self.world {
            CtxWorld::Direct(w) => {
                let nic = w
                    .nics
                    .get_mut(qp.host.0 as usize)
                    .and_then(Option::as_mut)
                    .ok_or(VerbsError::UnknownHost(qp.host))?;
                nic.reset_qp(qp.qp)?;
                w.trace_qp_recover(qp);
                Ok(())
            }
            // Worker-side recovery skips the trace hook: parallel
            // eligibility already requires the tracer disabled.
            CtxWorld::Worker(b) => b.nic_mut(qp.host).reset_qp(qp.qp).map_err(VerbsError::from),
        }
    }

    /// Fires `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let app = self.app;
        match &mut self.world {
            CtxWorld::Direct(w) => {
                let at = w.now() + delay;
                w.enqueue(at, WorldEvent::Timer { app, token });
            }
            CtxWorld::Worker(b) => b.set_timer(app, delay, token),
        }
    }

    /// Stops the event loop after the current callback returns.
    ///
    /// # Panics
    ///
    /// Unsupported inside a parallel merge round (a global stop is not a
    /// per-host action); run such workloads with `workers = 1`.
    pub fn stop(&mut self) {
        match &mut self.world {
            CtxWorld::Direct(w) => {
                assert!(
                    w.round.is_none(),
                    "Ctx::stop is not supported under run_until_workers"
                );
                w.stopped = true;
            }
            CtxWorld::Worker(_) => {
                panic!("Ctx::stop is not supported under run_until_workers")
            }
        }
    }

    /// A host's counters.
    pub fn counters(&self, host: HostId) -> &NicCounters {
        self.check_scope(host);
        match &self.world {
            CtxWorld::Direct(w) => w.nic_ref(host).counters(),
            CtxWorld::Worker(b) => b.nic(host).counters(),
        }
    }

    /// A host's NIC.
    pub fn nic(&self, host: HostId) -> &Rnic {
        self.check_scope(host);
        match &self.world {
            CtxWorld::Direct(w) => w.nic_ref(host),
            CtxWorld::Worker(b) => b.nic(host),
        }
    }

    /// Writes into a host's memory.
    pub fn write_memory(&mut self, host: HostId, addr: u64, data: &[u8]) {
        self.check_scope(host);
        match &mut self.world {
            CtxWorld::Direct(w) => w.nic_mut(host).memory_mut().write(addr, data),
            CtxWorld::Worker(b) => b.nic_mut(host).memory_mut().write(addr, data),
        }
    }

    /// Reads from a host's memory.
    pub fn read_memory(&self, host: HostId, addr: u64, len: u64) -> Vec<u8> {
        self.check_scope(host);
        match &self.world {
            CtxWorld::Direct(w) => w.nic_ref(host).memory().read(addr, len),
            CtxWorld::Worker(b) => b.nic(host).memory().read(addr, len),
        }
    }

    /// Deterministic app-level randomness, drawn from the world stream.
    ///
    /// # Panics
    ///
    /// Panics for send apps on every engine: a worker cannot draw from
    /// the world RNG without changing the sequential draw order. Send
    /// apps derive a private [`SimRng`] at construction instead.
    pub fn rng(&mut self) -> &mut SimRng {
        self.deny_to_send_apps("Ctx::rng");
        match &mut self.world {
            CtxWorld::Direct(w) => &mut w.rng,
            CtxWorld::Worker(_) => unreachable!("denied above"),
        }
    }

    /// Pauses a traffic class on a host's egress for `duration` — the
    /// enforcement half of a PFC defense app.
    pub fn pause_traffic_class(&mut self, host: HostId, tc: TrafficClass, duration: SimDuration) {
        self.check_scope(host);
        let until = self.now() + duration;
        match &mut self.world {
            CtxWorld::Direct(w) => w.nic_mut(host).pause_tc(tc, until),
            CtxWorld::Worker(b) => b.nic_mut(host).pause_tc(tc, until),
        }
    }

    /// The installed topology, if this is a multi-hop fabric.
    ///
    /// # Panics
    ///
    /// Panics for send apps (fabric-wide state does not ship to
    /// workers); keep topology-aware apps on [`Simulation::add_app`].
    pub fn topology(&self) -> Option<&Topology> {
        self.deny_to_send_apps("Ctx::topology");
        match &self.world {
            CtxWorld::Direct(w) => w.fabric_rt.as_ref().map(|rt| rt.topology()),
            CtxWorld::Worker(_) => unreachable!("denied above"),
        }
    }

    /// Per-link ingress counters (`None` without a topology) — what a
    /// per-port watchdog app samples.
    ///
    /// # Panics
    ///
    /// Panics for send apps (fabric-wide state does not ship to
    /// workers); keep watchdog apps on [`Simulation::add_app`].
    pub fn link_counters(&self, link: LinkId) -> Option<&PortCounters> {
        self.deny_to_send_apps("Ctx::link_counters");
        match &self.world {
            CtxWorld::Direct(w) => w.fabric_rt.as_ref().map(|rt| rt.counters(link)),
            CtxWorld::Worker(_) => unreachable!("denied above"),
        }
    }

    /// Silences one fabric link's transmitter for a traffic class — the
    /// per-port enforcement half of a PFC defense app. No-op without a
    /// topology.
    ///
    /// # Panics
    ///
    /// Panics for send apps (fabric-wide state does not ship to
    /// workers); keep defense apps on [`Simulation::add_app`].
    pub fn pause_link(&mut self, link: LinkId, tc: TrafficClass, duration: SimDuration) {
        self.deny_to_send_apps("Ctx::pause_link");
        let until = self.now() + duration;
        match &mut self.world {
            CtxWorld::Direct(w) => {
                if let Some(rt) = w.fabric_rt.as_mut() {
                    rt.pause_link(link, tc, until);
                }
            }
            CtxWorld::Worker(_) => unreachable!("denied above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnic_model::{CqeStatus, NakReason, Opcode};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn two_hosts(
        kind: fn() -> DeviceProfile,
    ) -> (Simulation, QpHandle, QpHandle, MrHandle, MrHandle) {
        let mut sim = Simulation::new(7);
        let a = sim.add_host(kind());
        let b = sim.add_host(kind());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let mr_a = sim.register_mr(a, pd_a, 2 * 1024 * 1024, AccessFlags::remote_all());
        let mr_b = sim.register_mr(b, pd_b, 2 * 1024 * 1024, AccessFlags::remote_all());
        let (qa, qb) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
        (sim, qa, qb, mr_a, mr_b)
    }

    #[test]
    fn read_round_trip_returns_completion() {
        let (mut sim, qa, _qb, _mr_a, mr_b) = two_hosts(DeviceProfile::connectx5);
        sim.write_memory(mr_b.host, mr_b.addr(128), b"secret-data");
        sim.post_send(
            qa,
            WorkRequest::read(9, 0x100000, mr_b.addr(128), mr_b.key, 11),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        let done = sim.take_completions();
        assert_eq!(done.len(), 1);
        let (host, cqe) = done[0];
        assert_eq!(host, qa.host);
        assert_eq!(cqe.wr_id, 9);
        assert_eq!(cqe.opcode, Opcode::Read);
        assert!(cqe.status.is_ok());
        assert!(cqe.latency() > SimDuration::ZERO);
    }

    #[test]
    fn read_places_data_in_local_buffer() {
        let (mut sim, qa, _qb, mr_a, mr_b) = two_hosts(DeviceProfile::connectx5);
        sim.write_memory(mr_b.host, mr_b.addr(100), b"remote-bytes");
        sim.post_send(
            qa,
            WorkRequest::read(1, mr_a.addr(0), mr_b.addr(100), mr_b.key, 12),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(
            sim.read_memory(mr_a.host, mr_a.addr(0), 12),
            b"remote-bytes"
        );
    }

    #[test]
    fn multi_segment_read_places_all_data() {
        let (mut sim, qa, _qb, mr_a, mr_b) = two_hosts(DeviceProfile::connectx6);
        let payload: Vec<u8> = (0..12_000u32).map(|i| (i % 241) as u8).collect();
        sim.write_memory(mr_b.host, mr_b.addr(0), &payload);
        sim.post_send(
            qa,
            WorkRequest::read(
                1,
                mr_a.addr(0),
                mr_b.addr(0),
                mr_b.key,
                payload.len() as u64,
            ),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(
            sim.read_memory(mr_a.host, mr_a.addr(0), payload.len() as u64),
            payload
        );
    }

    #[test]
    fn write_moves_data() {
        let (mut sim, qa, _qb, mr_a, mr_b) = two_hosts(DeviceProfile::connectx4);
        sim.write_memory(mr_a.host, mr_a.addr(0), b"hello rdma");
        sim.post_send(
            qa,
            WorkRequest::write(1, mr_a.addr(0), mr_b.addr(4096), mr_b.key, 10),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(
            sim.read_memory(mr_b.host, mr_b.addr(4096), 10),
            b"hello rdma"
        );
        assert!(sim.take_completions()[0].1.status.is_ok());
    }

    #[test]
    fn multi_segment_write_round_trip() {
        let (mut sim, qa, _qb, mr_a, mr_b) = two_hosts(DeviceProfile::connectx6);
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        sim.write_memory(mr_a.host, mr_a.addr(0), &payload);
        sim.post_send(
            qa,
            WorkRequest::write(
                2,
                mr_a.addr(0),
                mr_b.addr(0),
                mr_b.key,
                payload.len() as u64,
            ),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(2));
        assert_eq!(
            sim.read_memory(mr_b.host, mr_b.addr(0), payload.len() as u64),
            payload
        );
        let done = sim.take_completions();
        assert_eq!(done.len(), 1, "one completion for the whole message");
    }

    #[test]
    fn protection_violation_yields_remote_error() {
        let (mut sim, qa, _qb, _mr_a, mr_b) = two_hosts(DeviceProfile::connectx5);
        // Read beyond the MR bounds.
        sim.post_send(
            qa,
            WorkRequest::read(3, 0x100000, mr_b.addr(0) + mr_b.len - 4, mr_b.key, 64),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        let done = sim.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(
            done[0].1.status,
            CqeStatus::RemoteError(NakReason::OutOfBounds)
        );
        assert_eq!(sim.nic(mr_b.host).counters().naks_sent, 1);
    }

    #[test]
    fn send_queue_capacity_enforced() {
        let mut sim = Simulation::new(1);
        let a = sim.add_host(DeviceProfile::connectx5());
        let b = sim.add_host(DeviceProfile::connectx5());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let mr_b = sim.register_mr(b, pd_b, 1 << 20, AccessFlags::remote_all());
        let (qa, _qb) = sim.connect(
            a,
            pd_a,
            b,
            pd_b,
            ConnectOptions {
                max_send_queue: 4,
                ..ConnectOptions::default()
            },
        );
        for i in 0..4 {
            sim.post_send(qa, WorkRequest::read(i, 0x1000, mr_b.addr(0), mr_b.key, 64))
                .expect("within capacity");
        }
        let err = sim
            .post_send(qa, WorkRequest::read(9, 0x1000, mr_b.addr(0), mr_b.key, 64))
            .expect_err("queue is full");
        assert_eq!(err, VerbsError::SendQueueFull);
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.take_completions().len(), 4);
        // After completion there is room again.
        sim.post_send(
            qa,
            WorkRequest::read(10, 0x1000, mr_b.addr(0), mr_b.key, 64),
        )
        .expect("capacity restored");
    }

    #[test]
    fn atomic_fetch_add_returns_old_value() {
        let (mut sim, qa, _qb, _mr_a, mr_b) = two_hosts(DeviceProfile::connectx5);
        sim.memory_mut(mr_b.host).write_u64(mr_b.addr(256), 41);
        sim.post_send(
            qa,
            WorkRequest::fetch_add(4, 0x1000, mr_b.addr(256), mr_b.key, 1),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        let done = sim.take_completions();
        assert_eq!(done[0].1.atomic_old_value, 41);
        assert_eq!(sim.nic(mr_b.host).memory().read_u64(mr_b.addr(256)), 42);
    }

    #[test]
    fn atomic_cmp_swap_behaviour() {
        let (mut sim, qa, _qb, _mr_a, mr_b) = two_hosts(DeviceProfile::connectx6);
        sim.memory_mut(mr_b.host).write_u64(mr_b.addr(0), 7);
        sim.post_send(
            qa,
            WorkRequest::cmp_swap(5, 0x1000, mr_b.addr(0), mr_b.key, 7, 100),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.take_completions()[0].1.atomic_old_value, 7);
        assert_eq!(sim.nic(mr_b.host).memory().read_u64(mr_b.addr(0)), 100);
    }

    #[test]
    fn send_recv_round_trip() {
        let (mut sim, qa, qb, mr_a, mr_b) = two_hosts(DeviceProfile::connectx5);
        sim.write_memory(mr_a.host, mr_a.addr(0), b"two-sided");
        sim.post_recv(
            qb,
            RecvWqe {
                wr_id: 77,
                local_addr: mr_b.addr(512),
                len: 64,
            },
        )
        .expect("post recv");
        sim.post_send(qa, WorkRequest::send(6, mr_a.addr(0), 9))
            .expect("post send");
        sim.run_until(SimTime::from_millis(1));
        let done = sim.take_completions();
        // Send completion at requester + receive completion at responder.
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|(_, c)| c.is_recv && c.wr_id == 77));
        assert_eq!(sim.read_memory(mr_b.host, mr_b.addr(512), 9), b"two-sided");
    }

    #[test]
    fn send_without_recv_naks() {
        let (mut sim, qa, _qb, mr_a, _mr_b) = two_hosts(DeviceProfile::connectx5);
        sim.post_send(qa, WorkRequest::send(8, mr_a.addr(0), 16))
            .expect("post send");
        sim.run_until(SimTime::from_millis(1));
        let done = sim.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(
            done[0].1.status,
            CqeStatus::RemoteError(NakReason::ReceiveNotPosted)
        );
    }

    #[test]
    fn pd_mismatch_rejected() {
        let mut sim = Simulation::new(3);
        let a = sim.add_host(DeviceProfile::connectx5());
        let b = sim.add_host(DeviceProfile::connectx5());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let pd_other = sim.alloc_pd(b);
        // MR in a different PD than the QP.
        let mr_b = sim.register_mr(b, pd_other, 1 << 20, AccessFlags::remote_all());
        let (qa, _qb) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
        sim.post_send(qa, WorkRequest::read(1, 0x1000, mr_b.addr(0), mr_b.key, 8))
            .expect("post");
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(
            sim.take_completions()[0].1.status,
            CqeStatus::RemoteError(NakReason::PdMismatch)
        );
    }

    struct PingPong {
        qp: QpHandle,
        remote: MrHandle,
        remaining: u32,
        latencies: Rc<RefCell<Vec<f64>>>,
    }

    impl App for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.post_send(
                self.qp,
                WorkRequest::read(0, 0x1000, self.remote.addr(0), self.remote.key, 64),
            )
            .expect("post");
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: Cqe) {
            self.latencies
                .borrow_mut()
                .push(cqe.latency().as_nanos_f64());
            self.remaining -= 1;
            if self.remaining == 0 {
                ctx.stop();
            } else {
                ctx.post_send(
                    self.qp,
                    WorkRequest::read(0, 0x1000, self.remote.addr(0), self.remote.key, 64),
                )
                .expect("post");
            }
        }
    }

    #[test]
    fn app_driven_ping_pong() {
        let (mut sim, qa, _qb, _mr_a, mr_b) = two_hosts(DeviceProfile::connectx5);
        let latencies = Rc::new(RefCell::new(Vec::new()));
        let app = sim.add_app(Box::new(PingPong {
            qp: qa,
            remote: mr_b,
            remaining: 50,
            latencies: Rc::clone(&latencies),
        }));
        sim.own_qp(app, qa);
        sim.run();
        let lat = latencies.borrow();
        assert_eq!(lat.len(), 50);
        // Steady-state unloaded latency must be stable: skip the cold-start
        // samples (MPT miss, row open, MR context load), then the spread
        // stays within jitter range.
        let warm = &lat[5..];
        let min = warm.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = warm.iter().cloned().fold(0.0, f64::max);
        assert!(min > 0.0);
        assert!(
            max - min < 500.0,
            "unloaded latency spread too wide: {min}..{max}"
        );
        // And the cold first access is visibly more expensive.
        assert!(lat[0] > min, "cold start should exceed steady state");
    }

    #[test]
    fn timer_delivery() {
        struct TimerApp {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl App for TimerApp {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_micros(5), 1);
                ctx.set_timer(SimDuration::from_micros(2), 2);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                self.fired.borrow_mut().push(token);
                if token == 1 {
                    ctx.stop();
                }
            }
        }
        let mut sim = Simulation::new(5);
        sim.add_host(DeviceProfile::connectx4());
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(Box::new(TimerApp {
            fired: Rc::clone(&fired),
        }));
        sim.run();
        assert_eq!(*fired.borrow(), vec![2, 1]);
    }

    #[test]
    fn backends_agree_end_to_end() {
        // The same workload on both queue backends must produce
        // bit-identical completion timestamps and event counts — the
        // whole-simulation corollary of sim-core's differential suite.
        let run = |backend: QueueBackend| {
            let mut sim = Simulation::with_backend(7, backend);
            let a = sim.add_host(DeviceProfile::connectx5());
            let b = sim.add_host(DeviceProfile::connectx5());
            let pd_a = sim.alloc_pd(a);
            let pd_b = sim.alloc_pd(b);
            let mr_b = sim.register_mr(b, pd_b, 2 * 1024 * 1024, AccessFlags::remote_all());
            let (qa, _qb) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
            for i in 0..40 {
                sim.post_send(
                    qa,
                    WorkRequest::read(i, 0x1000, mr_b.addr(64 * (i % 16)), mr_b.key, 64 + 8 * i),
                )
                .expect("post");
            }
            sim.run_until(SimTime::from_millis(2));
            let stamps: Vec<(u64, u64)> = sim
                .take_completions()
                .iter()
                .map(|(_, c)| (c.wr_id, c.completed_at.as_picos()))
                .collect();
            (stamps, sim.events_processed())
        };
        assert_eq!(run(QueueBackend::Calendar), run(QueueBackend::Reference));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, qa, _qb, _mr_a, mr_b) = two_hosts(DeviceProfile::connectx4);
            for i in 0..20 {
                sim.post_send(
                    qa,
                    WorkRequest::read(i, 0x1000, mr_b.addr(64 * i), mr_b.key, 64),
                )
                .expect("post");
            }
            sim.run_until(SimTime::from_millis(1));
            sim.take_completions()
                .iter()
                .map(|(_, c)| c.completed_at.as_picos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// A leaf-spine fabric with one connected QP pair between hosts in
    /// different leaves (the cross-fabric case: 4-hop routes).
    fn fabric_pair(
        seed: u64,
        pfc: Option<ragnar_topology::PfcPortConfig>,
    ) -> (Simulation, QpHandle, MrHandle) {
        let topo = Topology::from_spec("leaf-spine:hosts=8,leaves=2,spines=2").expect("build");
        let mut sim = Simulation::with_topology(seed, topo, pfc);
        let hosts: Vec<HostId> = (0..8)
            .map(|_| sim.add_host(DeviceProfile::connectx5()))
            .collect();
        let (a, b) = (hosts[0], hosts[7]);
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let mr_b = sim.register_mr(b, pd_b, 2 * 1024 * 1024, AccessFlags::remote_all());
        let (qa, _qb) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
        (sim, qa, mr_b)
    }

    #[test]
    fn fabric_read_round_trip() {
        let (mut sim, qa, mr_b) = fabric_pair(11, None);
        sim.write_memory(mr_b.host, mr_b.addr(0), b"cross-fabric");
        sim.post_send(
            qa,
            WorkRequest::read(1, 0x100000, mr_b.addr(0), mr_b.key, 12),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        let done = sim.take_completions();
        assert_eq!(done.len(), 1);
        assert!(done[0].1.status.is_ok());
        assert_eq!(sim.read_memory(qa.host, 0x100000, 12), b"cross-fabric");
        // The route's links carried traffic; counters prove the packets
        // crossed the spine tier rather than a magic direct wire.
        let topo = sim.topology().expect("topology installed");
        let route = topo.route(
            qa.host,
            mr_b.host,
            FlowKey::new(qa.host, mr_b.host, qa.qp.0, qa.peer_qp.0),
        );
        assert_eq!(route.len(), 4);
        for link in route.links() {
            assert!(
                sim.link_counters(*link).expect("counters").rx_packets > 0,
                "link {link:?} saw no packets"
            );
        }
    }

    #[test]
    fn fabric_runs_are_deterministic() {
        let run = |seed| {
            let (mut sim, qa, mr_b) = fabric_pair(seed, None);
            for i in 0..20 {
                sim.post_send(
                    qa,
                    WorkRequest::read(i, 0x100000, mr_b.addr(64 * i), mr_b.key, 64),
                )
                .expect("post");
            }
            sim.run_until(SimTime::from_millis(1));
            sim.take_completions()
                .iter()
                .map(|(_, c)| c.completed_at.as_picos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "per-NIC jitter must still vary by seed");
    }

    #[test]
    fn fabric_loss_attributes_to_the_dropping_link() {
        let (mut sim, qa, mr_b) = fabric_pair(5, None);
        sim.set_loss_rate(1.0);
        sim.post_send(
            qa,
            WorkRequest::read(1, 0x100000, mr_b.addr(0), mr_b.key, 64),
        )
        .expect("post");
        sim.run_until(SimTime::from_micros(200));
        assert!(sim.dropped_packets() > 0);
        // Total loss fires at transmit: every drop happens on the
        // sender's uplink and is attributed there — and to the sender's
        // NIC, but never to the receiver, which the packets never reached.
        let uplink = sim.topology().expect("topo").host_uplink(qa.host);
        assert_eq!(
            sim.link_counters(uplink).expect("counters").dropped,
            sim.dropped_packets()
        );
        assert_eq!(sim.counters(qa.host).wire_tx_dropped, sim.dropped_packets());
        assert_eq!(sim.counters(mr_b.host).wire_rx_dropped, 0);
    }

    #[test]
    fn fabric_mid_path_chaos_drops_skip_endpoint_counters() {
        use ragnar_chaos::{FaultEvent, FaultKind, LinkSelector};
        let (mut sim, qa, mr_b) = fabric_pair(5, None);
        let mut plan = FaultPlan::empty(9);
        plan.events.push(FaultEvent {
            link: LinkSelector::Any,
            from: SimTime::ZERO,
            until: SimTime::from_secs(1),
            kind: FaultKind::LossBurst { rate: 0.4 },
        });
        sim.install_fault_plan(&plan);
        for i in 0..50 {
            sim.post_send(
                qa,
                WorkRequest::read(i, 0x100000, mr_b.addr(0), mr_b.key, 64),
            )
            .expect("post");
        }
        sim.run_until(SimTime::from_millis(5));
        let topo_links = sim.topology().expect("topo").links().len();
        let ledger: u64 = (0..topo_links)
            .map(|l| {
                sim.link_counters(LinkId(l as u32))
                    .expect("counters")
                    .dropped
            })
            .sum();
        assert_eq!(
            ledger,
            sim.dropped_packets(),
            "every drop must land on exactly one physical link"
        );
        // Per-hop verdicts mean some drops occur mid-fabric; those are
        // visible in the ledger but charged to neither endpoint NIC.
        let endpoint_attributed = sim.counters(qa.host).wire_tx_dropped
            + sim.counters(mr_b.host).wire_tx_dropped
            + sim.counters(qa.host).wire_rx_dropped
            + sim.counters(mr_b.host).wire_rx_dropped;
        assert!(
            endpoint_attributed < ledger,
            "mid-path drops leaked into endpoint counters: {endpoint_attributed} vs {ledger}"
        );
    }

    #[test]
    fn fabric_pfc_backpressure_pauses_and_still_completes() {
        let pfc = ragnar_topology::PfcPortConfig {
            xoff_bytes: 4096,
            pause: SimDuration::from_micros(1),
        };
        let (mut sim, qa, mr_b) = fabric_pair(13, Some(pfc));
        // Saturate the shared path: large reads stream responses
        // through the spine toward host 0.
        for i in 0..64 {
            sim.post_send(
                qa,
                WorkRequest::read(i, 0x100000, mr_b.addr(0), mr_b.key, 16 * 1024),
            )
            .expect("post");
        }
        sim.run_until(SimTime::from_millis(20));
        let done = sim.take_completions();
        assert_eq!(done.len(), 64, "PFC must stall, not lose, traffic");
        assert!(done.iter().all(|(_, c)| c.status.is_ok()));
        let topo_links = sim.topology().expect("topo").links().len();
        let pauses: u64 = (0..topo_links)
            .map(|l| {
                sim.link_counters(LinkId(l as u32))
                    .expect("counters")
                    .pauses_taken
            })
            .sum();
        assert!(pauses > 0, "saturated fabric should emit XOFF");
        assert_eq!(sim.dropped_packets(), 0);
    }

    #[test]
    fn counters_track_traffic() {
        let (mut sim, qa, _qb, _mr_a, mr_b) = two_hosts(DeviceProfile::connectx5);
        sim.post_send(
            qa,
            WorkRequest::read(1, 0x1000, mr_b.addr(0), mr_b.key, 1024),
        )
        .expect("post");
        sim.run_until(SimTime::from_millis(1));
        let a = sim.counters(qa.host);
        assert_eq!(a.requests_per_opcode[Opcode::Read.index()], 1);
        assert!(a.tx_packets >= 1);
        assert!(a.rx_bytes >= 1024);
        let b = sim.counters(mr_b.host);
        assert_eq!(b.responder_ops_per_opcode[Opcode::Read.index()], 1);
        assert_eq!(b.tpu_lookups, 1);
        assert!(b.snapshot().tx_bytes > 0);
    }
}
